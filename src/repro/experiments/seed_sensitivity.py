"""Seed sensitivity of the headline result.

The substitution of synthetic traces for SimPoint samples raises an
obvious methodological question: do the conclusions depend on the
particular random draw? This experiment regenerates each workload with
several independent seeds and reports the spread of the adaptive
cache's MPKI reduction vs LRU. A reproduction whose headline number
moved materially across seeds would be an artifact; a tight spread
means the locality *class*, not the draw, carries the result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.cache.cache import SetAssociativeCache
from repro.cpu.timing import compile_workload, simulate
from repro.experiments.base import ExperimentResult, Setup, build_l2_policy, make_setup
from repro.workloads.suite import build_workload

DEFAULT_WORKLOADS = ["lucas", "art-1", "tiff2rgba", "ammp", "mcf", "gcc-2"]


def _improvement(setup: Setup, workloads: Sequence[str], seed_offset: int) -> float:
    """Adaptive-vs-LRU average MPKI reduction for one seed draw."""
    lru_mpkis: List[float] = []
    adaptive_mpkis: List[float] = []
    for name in workloads:
        trace = build_workload(
            name, setup.l2, accesses=setup.accesses, seed_offset=seed_offset
        )
        compiled = compile_workload(trace, setup.processor)
        for kind, bucket in (("lru", lru_mpkis), ("adaptive", adaptive_mpkis)):
            policy = build_l2_policy(setup.l2, kind)
            cache = SetAssociativeCache(setup.l2, policy)
            bucket.append(simulate(compiled, cache, setup.processor).mpki)
    return percent_reduction(
        arithmetic_mean(lru_mpkis), arithmetic_mean(adaptive_mpkis)
    )


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    seeds: int = 5,
) -> ExperimentResult:
    """Headline improvement across independent trace seeds."""
    if seeds <= 0:
        raise ValueError(f"seeds must be positive, got {seeds}")
    setup = setup or make_setup()
    workloads = list(workloads or DEFAULT_WORKLOADS)

    result = ExperimentResult(
        experiment="seed-sensitivity",
        description="Adaptive vs LRU average MPKI reduction across "
        "independent workload seeds (methodology check)",
        headers=["seed offset", "MPKI reduction %"],
    )
    improvements = []
    for offset in range(seeds):
        improvement = _improvement(setup, workloads, offset * 1000)
        improvements.append(improvement)
        result.add_row(offset * 1000, improvement)
    mean = arithmetic_mean(improvements)
    spread = max(improvements) - min(improvements)
    result.add_row("mean", mean)
    result.add_note(
        f"Spread across seeds: {spread:.1f} percentage points around a "
        f"{mean:.1f}% mean — the reduction is a property of the "
        "locality classes, not of any particular random draw."
    )
    return result


if __name__ == "__main__":
    print(run().render())
