"""Ablations over the adaptive cache's design choices.

DESIGN.md Section 5 calls out the mechanism parameters the paper fixes
by fiat; this experiment varies each in isolation around the default
configuration (LRU/LFU, bit-vector history with m = associativity, LRU
fallback, low-order partial tags):

* miss-history kind — bit-vector (paper's choice) vs unbounded counters
  (the provable variant) vs saturating counters;
* history window m — the paper sets m to the associativity "or a small
  multiple of it";
* aliasing-fallback victim — recency order (Section 3.3's shortcut) vs
  random;
* partial-tag function — low-order bits (paper default) vs XOR fold;
* SBAR leader-set count.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.core.history import make_history_factory
from repro.core.multi import make_adaptive
from repro.core.partial import PartialTagScheme
from repro.cpu.timing import simulate
from repro.cache.cache import SetAssociativeCache
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    build_l2_policy,
    make_setup,
)

DEFAULT_WORKLOADS = ["lucas", "gcc-2", "art-1", "tiff2rgba", "ammp",
                     "mcf", "unepic"]


def _average_metrics(cache_ws, workloads, policy_factory):
    mpkis, cpis = [], []
    for name in workloads:
        policy = policy_factory()
        cache = SetAssociativeCache(cache_ws.setup.l2, policy)
        result = simulate(cache_ws.compiled(name), cache,
                          cache_ws.setup.processor)
        mpkis.append(result.mpki)
        cpis.append(result.cpi)
    return arithmetic_mean(mpkis), arithmetic_mean(cpis)


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Sweep each design choice, one at a time."""
    setup = setup or make_setup()
    cache_ws = WorkloadCache(setup)
    workloads = list(workloads or DEFAULT_WORKLOADS)
    num_sets, ways = setup.l2.num_sets, setup.l2.ways

    variants = []

    def add(group, label, factory):
        variants.append((group, label, factory))

    add("baseline", "paper default",
        lambda: make_adaptive(num_sets, ways))

    for kind in ("counter", "saturating"):
        add("history kind", kind,
            lambda kind=kind: make_adaptive(
                num_sets, ways,
                history_factory=make_history_factory(kind),
            ))
    for window in (ways // 2, 2 * ways, 4 * ways):
        add("history window", f"m={window}",
            lambda window=window: make_adaptive(
                num_sets, ways,
                history_factory=make_history_factory("bitvector",
                                                     window=window),
            ))
    add("fallback", "random",
        lambda: make_adaptive(num_sets, ways, fallback="random"))
    for method in ("low", "xor"):
        add("partial tags (8-bit)", method,
            lambda method=method: make_adaptive(
                num_sets, ways,
                tag_transform=PartialTagScheme(8, method),
            ))
    for leaders in (4, 16, min(64, num_sets)):
        add("sbar leaders", f"{leaders} leaders",
            lambda leaders=leaders: build_l2_policy(
                setup.l2, "sbar", ("lru", "lfu"), num_leaders=leaders
            ))

    result = ExperimentResult(
        experiment="ablations",
        description="Design-choice ablations around the default "
        "adaptive configuration (averages over a primary-set slice)",
        headers=["group", "variant", "avg MPKI", "avg CPI"],
    )
    baseline_mpki = None
    for group, label, factory in variants:
        mpki, cpi = _average_metrics(cache_ws, workloads, factory)
        if group == "baseline":
            baseline_mpki = mpki
        result.add_row(group, label, mpki, cpi)
    result.add_note(
        "The paper's defaults are deliberately un-tuned; robustness "
        "across these variants (MPKI near the baseline "
        f"{baseline_mpki:.2f}) is the claim being checked."
    )
    return result


if __name__ == "__main__":
    print(run().render())
