"""Figure 9: adaptive benefit vs set associativity.

Paper result: with capacity fixed at 512 KB, the adaptive policy's
benefit (average CPI improvement and miss reduction vs LRU) holds from
4-way through 32-way and *increases slightly* at high associativities
(16/32-way), suggesting effectiveness for future highly-associative
last-level caches.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
)

ASSOCIATIVITIES = (4, 8, 16, 32)


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    associativities: Sequence[int] = ASSOCIATIVITIES,
) -> ExperimentResult:
    """Reproduce Figure 9's benefit-vs-associativity series.

    Capacity stays fixed, so doubling the ways halves the sets, exactly
    as in the paper ("the 16-way cache has only half as many sets as the
    baseline 8-way cache"). Workload traces are generated once against
    the baseline geometry and replayed against every variant.
    """
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))

    result = ExperimentResult(
        experiment="fig9",
        description="Adaptive benefit vs associativity "
        "(capacity fixed; higher is better)",
        headers=["ways", "CPI improvement %", "miss reduction %"],
    )
    for ways in associativities:
        l2_config = setup.l2.scaled(ways=ways)
        lru_cpis, adp_cpis = [], []
        lru_misses, adp_misses = [], []
        for name in workloads:
            lru = cache.simulate_policy(name, "lru", l2_config=l2_config)
            adp = cache.simulate_policy(name, "adaptive", l2_config=l2_config)
            lru_cpis.append(lru.cpi)
            adp_cpis.append(adp.cpi)
            lru_misses.append(lru.l2_misses)
            adp_misses.append(adp.l2_misses)
        result.add_row(
            ways,
            percent_reduction(
                arithmetic_mean(lru_cpis), arithmetic_mean(adp_cpis)
            ),
            percent_reduction(
                arithmetic_mean(lru_misses), arithmetic_mean(adp_misses)
            ),
        )
    result.add_note(
        "Paper: benefit is robust across 4..32 ways and increases "
        "slightly for 16- and 32-way caches."
    )
    return result


if __name__ == "__main__":
    print(run().render())
