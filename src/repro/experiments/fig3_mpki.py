"""Figure 3: L2 MPKI per benchmark — Adaptive vs LFU vs LRU.

Paper result: the LRU/LFU adaptive cache tracks the better component on
every benchmark (lucas follows LRU, art follows LFU) and reduces the
average MPKI of the 26-program primary set by 19.0% versus LRU (18.6%
over all 100 programs).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
    run_policy_sweep,
)

POLICY_SPECS = {
    "Adaptive": {"policy_kind": "adaptive", "components": ("lru", "lfu")},
    "LFU": {"policy_kind": "lfu"},
    "LRU": {"policy_kind": "lru"},
}


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    primary_only: bool = True,
) -> ExperimentResult:
    """Reproduce Figure 3's per-benchmark MPKI series."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only))
    sweep = run_policy_sweep(cache, workloads, POLICY_SPECS)

    result = ExperimentResult(
        experiment="fig3",
        description="L2 misses per thousand instructions (lower is better)",
        headers=["benchmark"] + list(POLICY_SPECS),
    )
    for name in workloads:
        result.add_row(name, *(sweep[name][p].mpki for p in POLICY_SPECS))
    averages = {
        p: arithmetic_mean([sweep[name][p].mpki for name in workloads])
        for p in POLICY_SPECS
    }
    result.add_row("Average", *(averages[p] for p in POLICY_SPECS))
    result.add_note(
        "Adaptive reduces average MPKI vs LRU by "
        f"{percent_reduction(averages['LRU'], averages['Adaptive']):.1f}% "
        "(paper: 19.0% on the primary set)"
    )
    result.add_note(
        "Adaptive reduces average MPKI vs LFU by "
        f"{percent_reduction(averages['LFU'], averages['Adaptive']):.1f}%"
    )
    return result


if __name__ == "__main__":
    print(run().render())
