"""Cross-model validation of the timing substitution.

DESIGN.md's boldest substitution replaces MASE with an aggregate
event-driven timing model. This experiment runs the same workloads and
L2 policies through **two structurally different processor models** —
the aggregate model (`repro.cpu.timing`) and the per-instruction
scoreboard (`repro.cpu.scoreboard`) — and compares the *conclusions*:
the per-workload adaptive-vs-LRU CPI improvement. If the improvement
agrees in sign and rough magnitude across models, the paper-shape
results do not hinge on either model's simplifications.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.cache.cache import SetAssociativeCache
from repro.cpu.scoreboard import scoreboard_simulate
from repro.cpu.timing import simulate
from repro.experiments.base import ExperimentResult, Setup, build_l2_policy, make_setup

DEFAULT_WORKLOADS = ["lucas", "art-1", "tiff2rgba", "ammp", "mcf", "swim"]


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Adaptive-vs-LRU improvement under both processor models."""
    setup = setup or make_setup()
    from repro.experiments.base import WorkloadCache

    cache_ws = WorkloadCache(setup)
    workloads = list(workloads or DEFAULT_WORKLOADS)

    result = ExperimentResult(
        experiment="ext-validate",
        description="Adaptive vs LRU CPI improvement under the "
        "aggregate timing model and the per-instruction scoreboard "
        "reference model (methodology cross-check)",
        headers=["benchmark", "aggregate %", "scoreboard %"],
    )
    aggregate_improvements = []
    scoreboard_improvements = []
    for name in workloads:
        trace = cache_ws.trace(name)
        compiled = cache_ws.compiled(name)
        cpis = {}
        for model in ("aggregate", "scoreboard"):
            for policy_kind in ("lru", "adaptive"):
                policy = build_l2_policy(setup.l2, policy_kind)
                l2 = SetAssociativeCache(setup.l2, policy)
                if model == "aggregate":
                    cpis[(model, policy_kind)] = simulate(
                        compiled, l2, setup.processor
                    ).cpi
                else:
                    cpis[(model, policy_kind)] = scoreboard_simulate(
                        trace, l2, setup.processor
                    ).cpi
        aggregate = percent_reduction(
            cpis[("aggregate", "lru")], cpis[("aggregate", "adaptive")]
        )
        scoreboard = percent_reduction(
            cpis[("scoreboard", "lru")], cpis[("scoreboard", "adaptive")]
        )
        aggregate_improvements.append(aggregate)
        scoreboard_improvements.append(scoreboard)
        result.add_row(name, aggregate, scoreboard)
    result.add_row(
        "Average",
        arithmetic_mean(aggregate_improvements),
        arithmetic_mean(scoreboard_improvements),
    )
    agreements = sum(
        1
        for a, s in zip(aggregate_improvements, scoreboard_improvements)
        if (a > 1.0) == (s > 1.0) or abs(a - s) < 2.0
    )
    result.add_note(
        f"Sign/magnitude agreement on {agreements}/{len(workloads)} "
        "workloads: the adaptive benefit is a property of the cache "
        "behaviour, not of the timing model's accounting structure."
    )
    return result


if __name__ == "__main__":
    print(run().render())
