"""Extension: skewed associativity is orthogonal to adaptive replacement.

Section 5 of the paper argues that advanced *indexing* schemes (Seznec
& Bodin's skewed associativity, Hallnor & Reinhardt's fully-associative
cache) attack a different miss category — conflicts — than adaptive
*replacement* does, and that the techniques are therefore orthogonal.
This experiment measures all three failure modes:

* a conflict-heavy workload (a large stride equal to the set count, so
  a conventional cache funnels everything into a few sets) — skewing
  should win, adaptivity should not help;
* a policy-sensitive workload (hot set + scan) — adaptivity should
  win, skewing should not help;
* fully-associative LRU (sets=1) as the conflict-free reference point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.skewed import SkewedAssociativeCache
from repro.experiments.base import ExperimentResult, Setup, build_l2_policy, make_setup
from repro.policies.lru import LRUPolicy
from repro.workloads.synth import scan_with_hot, strided_sweep
from repro.workloads.phases import interleave_streams


def _conflict_stream(config: CacheConfig, accesses: int) -> List[int]:
    """A working set striding by the set count: every block maps to the
    same set of a conventional cache (pure conflict misses), while the
    total footprint is a fraction of capacity."""
    hot_blocks = 4 * config.ways  # 4x over-subscribes one set
    return strided_sweep(
        hot_blocks * config.num_sets, config.num_sets, accesses
    )


def _policy_stream(config: CacheConfig, accesses: int, seed: int) -> List[int]:
    """Hot set + one-pass scan: the LFU-friendly media pattern."""
    return scan_with_hot(
        max(config.ways, int(0.4 * config.num_lines)),
        8 * config.num_lines,
        accesses,
        seed=seed,
    )


def _miss_ratio_conventional(config, stream, policy_kind) -> float:
    cache = SetAssociativeCache(
        config, build_l2_policy(config, policy_kind)
    )
    for line in stream:
        cache.access(line * config.line_bytes)
    return cache.stats.miss_ratio


def _miss_ratio_skewed(config, stream) -> float:
    cache = SkewedAssociativeCache(config)
    for line in stream:
        cache.access(line * config.line_bytes)
    return cache.stats.miss_ratio


def _miss_ratio_fully_associative(config, stream) -> float:
    fa_config = config.scaled(ways=config.num_lines)
    cache = SetAssociativeCache(
        fa_config, LRUPolicy(fa_config.num_sets, fa_config.ways)
    )
    for line in stream:
        cache.access(line * fa_config.line_bytes)
    return cache.stats.miss_ratio


def run(
    setup: Optional[Setup] = None,
    accesses: Optional[int] = None,
) -> ExperimentResult:
    """Miss ratios of indexing vs replacement techniques per miss class."""
    setup = setup or make_setup()
    config = setup.l2
    accesses = accesses or setup.accesses

    streams = {
        "conflict (stride=sets)": _conflict_stream(config, accesses),
        "policy (hot+scan)": _policy_stream(config, accesses, seed=3),
        "mixed": interleave_streams(
            [
                _conflict_stream(config, accesses // 2),
                _policy_stream(config, accesses - accesses // 2, seed=4),
            ],
            seed=5,
        ),
    }

    result = ExperimentResult(
        experiment="ext-skew",
        description="Miss ratios: skewed indexing vs adaptive "
        "replacement per miss class (Section 5 orthogonality)",
        headers=["workload", "LRU", "Adaptive", "Skewed",
                 "Fully-assoc LRU"],
    )
    for label, stream in streams.items():
        result.add_row(
            label,
            _miss_ratio_conventional(config, stream, "lru"),
            _miss_ratio_conventional(config, stream, "adaptive"),
            _miss_ratio_skewed(config, stream),
            _miss_ratio_fully_associative(config, stream),
        )
    result.add_note(
        "Expected shape: on the conflict stream, skewing (and full "
        "associativity) win while adaptive replacement cannot help; on "
        "the policy stream, adaptive replacement wins while skewing "
        "cannot help — the techniques compose rather than compete, as "
        "the paper's related-work section argues."
    )
    return result


if __name__ == "__main__":
    print(run().render())
