"""Extension: adaptive replacement for shared caches (Section 6).

The paper's first future-work item: dissimilar co-running applications
should give the adaptive mechanism *more* opportunity, because the
shared cache simultaneously sees LRU-friendly and LFU-friendly traffic
in different sets. This experiment interleaves pairs of dissimilar
primary-set workloads over one shared L2 and compares the adaptive
cache against its components on the combined stream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.cache.cache import SetAssociativeCache
from repro.experiments.base import ExperimentResult, Setup, build_l2_policy, make_setup
from repro.workloads.multicore import build_shared_workload

# Dissimilar pairs: one recency-friendly core + one frequency/loop core.
DEFAULT_PAIRS: List[Tuple[str, str]] = [
    ("lucas", "tiff2rgba"),
    ("gcc-2", "art-1"),
    ("bzip2", "xanim"),
    ("parser", "x11quake-1"),
    ("vpr-1", "mcf"),
]


def _misses(trace, config, policy_kind: str) -> int:
    policy = build_l2_policy(config, policy_kind)
    cache = SetAssociativeCache(config, policy)
    addresses, writes = trace.memory_stream()
    cache.access_many(addresses, writes)
    return cache.stats.misses


def run(
    setup: Optional[Setup] = None,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> ExperimentResult:
    """Compare policies on two-core shared-cache mixes."""
    setup = setup or make_setup()
    pairs = list(pairs or DEFAULT_PAIRS)
    accesses_per_core = setup.accesses // 2

    result = ExperimentResult(
        experiment="ext-shared",
        description="Shared-L2 two-core mixes: misses per policy "
        "(lower is better; Section 6 future work)",
        headers=["mix", "Adaptive", "LFU", "LRU",
                 "vs LRU %", "vs best fixed %"],
    )
    lru_gains = []
    best_gains = []
    for pair in pairs:
        trace = build_shared_workload(pair, setup.l2, accesses_per_core)
        misses = {
            kind: _misses(trace, setup.l2, kind)
            for kind in ("adaptive", "lfu", "lru")
        }
        best_fixed = min(misses["lfu"], misses["lru"])
        lru_gain = percent_reduction(misses["lru"], misses["adaptive"])
        best_gain = percent_reduction(best_fixed, misses["adaptive"])
        lru_gains.append(lru_gain)
        best_gains.append(best_gain)
        result.add_row(
            "+".join(pair), misses["adaptive"], misses["lfu"],
            misses["lru"], lru_gain, best_gain,
        )
    result.add_note(
        "The adaptive shared cache beats the LRU default by "
        f"{arithmetic_mean(lru_gains):+.1f}% on average and stays within "
        f"{-min(best_gains):.1f}% of the best fixed policy on every mix — "
        "without anyone knowing, at design time, which fixed policy each "
        "mix would need."
    )
    return result


if __name__ == "__main__":
    print(run().render())
