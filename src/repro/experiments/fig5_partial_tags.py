"""Figure 5: effect of partial-tag width on average MPKI and CPI.

Paper result: partial tags of 6 bits or more change average MPKI/CPI by
under 1% relative to full tags; 4-bit tags visibly degrade. With 8-bit
tags the CPI improvement is 12.7% vs 12.9% for full tags.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
)

TAG_WIDTHS = (None, 12, 10, 8, 6, 4)  # None = full tags


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    tag_widths: Sequence[Optional[int]] = TAG_WIDTHS,
) -> ExperimentResult:
    """Reproduce Figure 5's percent-increase-vs-full-tags series."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))

    averages = {}
    for bits in tag_widths:
        mpkis = []
        cpis = []
        for name in workloads:
            res = cache.simulate_policy(
                name, "adaptive", components=("lru", "lfu"), partial_bits=bits
            )
            mpkis.append(res.mpki)
            cpis.append(res.cpi)
        averages[bits] = (arithmetic_mean(mpkis), arithmetic_mean(cpis))

    full_mpki, full_cpi = averages[None]
    result = ExperimentResult(
        experiment="fig5",
        description="Impact of partial tags on average MPKI/CPI "
        "(percent increase vs full tags; lower is better)",
        headers=["tag width", "avg MPKI", "avg CPI",
                 "MPKI increase %", "CPI increase %"],
    )
    for bits in tag_widths:
        mpki, cpi = averages[bits]
        label = "full" if bits is None else f"{bits}-bit"
        result.add_row(
            label,
            mpki,
            cpi,
            100.0 * (mpki - full_mpki) / full_mpki,
            100.0 * (cpi - full_cpi) / full_cpi,
        )
    result.add_note(
        "Paper: <1% difference for 6-bit or wider partial tags; 8-bit "
        "tags give 12.7% CPI improvement vs full tags' 12.9%."
    )
    return result


if __name__ == "__main__":
    print(run().render())
