"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments fig3                 # scaled-down default
    repro-experiments fig4 --scale paper   # Table 1 geometry (slow)
    repro-experiments all --scale mini     # everything, quickly
    repro-experiments fig7 --render-map    # ASCII Figure 7 maps
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import base
from repro.experiments import (
    ablations,
    ext_dip,
    ext_prefetch,
    ext_skew,
    ext_validate,
    ext_shared,
    fig3_mpki,
    fig4_cpi,
    fig5_partial_tags,
    fig6_capacity,
    fig7_setmaps,
    fig8_fifo_mru,
    fig9_associativity,
    fig10_store_buffer,
    sec44_five_policy,
    sec46_l1,
    seed_sensitivity,
    sec47_sbar,
    storage,
    theory,
)

EXPERIMENTS = {
    "fig3": fig3_mpki,
    "fig4": fig4_cpi,
    "fig5": fig5_partial_tags,
    "fig6": fig6_capacity,
    "fig7": fig7_setmaps,
    "fig8": fig8_fifo_mru,
    "fig9": fig9_associativity,
    "fig10": fig10_store_buffer,
    "sec44": sec44_five_policy,
    "sec46": sec46_l1,
    "sec47": sec47_sbar,
    "storage": storage,
    "theory": theory,
    "ablations": ablations,
    "ext-shared": ext_shared,
    "ext-prefetch": ext_prefetch,
    "ext-dip": ext_dip,
    "ext-skew": ext_skew,
    "ext-validate": ext_validate,
    "seeds": seed_sensitivity,
}

# Experiments whose run() does not take a Setup.
_SETUP_FREE = {"storage", "theory"}


def _run_result(name: str, args: argparse.Namespace):
    module = EXPERIMENTS[name]
    if name in _SETUP_FREE:
        return module.run()
    setup = base.make_setup(args.scale, accesses=args.accesses)
    kwargs = {}
    if args.workloads and name not in ("fig7", "ext-shared", "ext-skew"):
        kwargs["workloads"] = args.workloads
    return module.run(setup=setup, **kwargs)


def _run_one(name: str, args: argparse.Namespace) -> str:
    result = _run_result(name, args)
    text = result.render()
    if name == "fig7" and args.render_map:
        for workload in ("ammp", "mgrid"):
            setup = base.make_setup(args.scale, accesses=args.accesses)
            setmap, _policy = fig7_setmaps.collect(workload, setup)
            text += (
                f"\n\n{workload} per-set map "
                "('#'=LRU-majority, '.'=LFU-majority):\n"
            )
            text += setmap.render()
    return text


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Adaptive "
        "Caches: Effective Shaping of Cache Behavior to Workloads' "
        "(MICRO 2006).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="which table/figure to regenerate ('report' writes a "
        "markdown report of everything)",
    )
    parser.add_argument(
        "--out",
        default="reproduction-report.md",
        help="output path for the 'report' command",
    )
    parser.add_argument(
        "--scale",
        choices=["mini", "scaled", "paper"],
        default="scaled",
        help="cache geometry and trace length (default: scaled)",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="memory references per workload (default: per-scale)",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="restrict to these suite workloads",
    )
    parser.add_argument(
        "--render-map",
        action="store_true",
        help="with fig7: also print the ASCII per-set maps",
    )
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from repro.analysis.report import build_report

        results = [
            _run_result(name, args) for name in sorted(EXPERIMENTS)
        ]
        text = build_report(
            results,
            title="Adaptive Caches (MICRO 2006) — reproduction report",
            preamble=[
                f"Scale: `{args.scale}`"
                + (f", {args.accesses} references/workload"
                   if args.accesses else ""),
                "Regenerate with `repro-experiments report --scale "
                f"{args.scale}`.",
            ],
        )
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({len(text.splitlines())} lines)")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_one(name, args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
