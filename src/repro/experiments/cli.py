"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments fig3                 # scaled-down default
    repro-experiments fig4 --scale paper   # Table 1 geometry (slow)
    repro-experiments all --scale mini     # everything, quickly
    repro-experiments fig7 --render-map    # ASCII Figure 7 maps
    repro-experiments all --keep-going --resume
                                           # survive crashes, checkpoint
                                           # progress, resume after ^C

Robustness (see docs/robustness.md): each experiment runs crash-
isolated with optional retries (exponential backoff, jittered, capped)
and a wall-clock timeout; with ``--resume``/``--checkpoint`` the sweep
records every completed (experiment, workload, policy) cell in an
atomically-written JSON file and a re-invocation skips finished work.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.experiments import base
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import runner as runner_mod
from repro.experiments import (
    ablations,
    ext_cluster,
    ext_dip,
    ext_faults,
    ext_online,
    ext_prefetch,
    ext_serve,
    ext_skew,
    ext_tiers,
    ext_validate,
    ext_shared,
    fig3_mpki,
    fig4_cpi,
    fig5_partial_tags,
    fig6_capacity,
    fig7_setmaps,
    fig8_fifo_mru,
    fig9_associativity,
    fig10_store_buffer,
    sec44_five_policy,
    sec46_l1,
    seed_sensitivity,
    sec47_sbar,
    storage,
    theory,
)

EXPERIMENTS = {
    "fig3": fig3_mpki,
    "fig4": fig4_cpi,
    "fig5": fig5_partial_tags,
    "fig6": fig6_capacity,
    "fig7": fig7_setmaps,
    "fig8": fig8_fifo_mru,
    "fig9": fig9_associativity,
    "fig10": fig10_store_buffer,
    "sec44": sec44_five_policy,
    "sec46": sec46_l1,
    "sec47": sec47_sbar,
    "storage": storage,
    "theory": theory,
    "ablations": ablations,
    "ext-shared": ext_shared,
    "ext-prefetch": ext_prefetch,
    "ext-dip": ext_dip,
    "ext-skew": ext_skew,
    "ext-validate": ext_validate,
    "ext-faults": ext_faults,
    "ext-online": ext_online,
    "ext-serve": ext_serve,
    "ext-cluster": ext_cluster,
    "ext-tiers": ext_tiers,
    "seeds": seed_sensitivity,
}

# Experiments whose run() does not take a Setup.
_SETUP_FREE = {"storage", "theory"}

DEFAULT_CHECKPOINT = ".repro-checkpoint.json"


def _run_result(name: str, args: argparse.Namespace):
    module = EXPERIMENTS[name]
    if name in _SETUP_FREE:
        return module.run()
    setup = base.make_setup(args.scale, accesses=args.accesses)
    kwargs = {}
    # ext-online takes key-stream names, not suite workload names, so the
    # suite-wide --workloads restriction does not apply to it either.
    if args.workloads and name not in ("fig7", "ext-shared", "ext-skew",
                                       "ext-online", "ext-cluster",
                                       "ext-tiers", "ext-serve"):
        kwargs["workloads"] = args.workloads
    if name == "ext-online" and getattr(args, "snapshot_dir", None):
        kwargs["snapshot_dir"] = args.snapshot_dir
    if name == "ext-serve":
        kwargs["seed"] = args.seed
        if args.quick:
            kwargs["quick"] = True
    return module.run(setup=setup, **kwargs)


def _run_one(name: str, args: argparse.Namespace) -> str:
    result = _run_result(name, args)
    text = result.render()
    if name == "fig7" and args.render_map:
        for workload in ("ammp", "mgrid"):
            setup = base.make_setup(args.scale, accesses=args.accesses)
            setmap, _policy = fig7_setmaps.collect(workload, setup)
            text += (
                f"\n\n{workload} per-set map "
                "('#'=LRU-majority, '.'=LFU-majority):\n"
            )
            text += setmap.render()
    return text


def _non_negative_int(text: str) -> int:
    """argparse type for ``--retries``: an integer >= 0."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type for ``--timeout``: a number of seconds > 0."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    """argparse type for ``--workers``: an integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The repro-experiments argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of 'Adaptive "
        "Caches: Effective Shaping of Cache Behavior to Workloads' "
        "(MICRO 2006).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "report", "policies", "golden", "perf", "recover",
           "cluster", "serve"],
        help="which table/figure to regenerate ('report' writes a "
        "markdown report of everything; 'policies' lists the "
        "registered replacement policies; 'golden' checks or "
        "regenerates the pinned golden-trace digests; 'perf' "
        "benchmarks the hot path and sweep and writes BENCH_perf.json; "
        "'recover' rebuilds a persisted online cache from --snapshot-dir "
        "and prints its stats digest; 'cluster' streams a replicated "
        "durable cluster under --cluster-dir with an acked-write "
        "ledger, or with --verify recovers every member from disk and "
        "asserts zero acked-write loss; 'serve' runs the open-loop "
        "serving harness across the five regimes — steady, overload, "
        "degraded, live recovery under traffic, tiered front — "
        "and writes BENCH_serve.json)",
    )
    parser.add_argument(
        "--out",
        default="reproduction-report.md",
        help="output path for the 'report' command",
    )
    parser.add_argument(
        "--scale",
        choices=["mini", "scaled", "paper"],
        default="scaled",
        help="cache geometry and trace length (default: scaled)",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="memory references per workload (default: per-scale)",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="restrict to these suite workloads",
    )
    parser.add_argument(
        "--render-map",
        action="store_true",
        help="with fig7: also print the ASCII per-set maps",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="with 'all': keep running after an experiment fails; a "
        "failure summary is printed and the exit status is non-zero",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="record completed cells in a checkpoint file and skip "
        f"them on re-invocation (default file: {DEFAULT_CHECKPOINT})",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint file to use (implies --resume semantics)",
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=0,
        help="retry a crashed experiment up to N times with jittered "
        "exponential backoff (default: 0)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock timeout (POSIX main thread only)",
    )
    golden_group = parser.add_mutually_exclusive_group()
    golden_group.add_argument(
        "--check",
        action="store_true",
        help="with 'golden': verify the pinned digests (the default)",
    )
    golden_group.add_argument(
        "--regen",
        action="store_true",
        help="with 'golden': recompute and rewrite the pinned digests",
    )
    parser.add_argument(
        "--golden-path",
        default=None,
        metavar="PATH",
        help="with 'golden': digest file to check/regen "
        "(default: tests/golden/golden.json)",
    )
    parser.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="cache built traces as .npz files in DIR; corrupt or "
        "truncated entries are detected and regenerated",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for policy sweeps (default 1 = serial; "
        "results are byte-identical at any worker count)",
    )
    parser.add_argument(
        "--kernel",
        choices=["scalar", "columnar", "auto"],
        default="auto",
        help="batch simulation kernel for adaptive caches (default "
        "auto): 'columnar' forces the vectorized shadow-directory "
        "kernel, 'scalar' the per-access loop; decisions are "
        "byte-identical either way, so regressions bisect cleanly",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="with 'ext-online': run the adaptive cells through the "
        "crash-safe persistent engine, state under DIR/<workload>; "
        "with 'recover': the persistence directory to rebuild from",
    )
    parser.add_argument(
        "--finish",
        action="store_true",
        help="with 'recover': after recovery, resume the key stream "
        "recorded in the directory and run it to completion (a fresh "
        "directory starts the stream from scratch), so the printed "
        "digest is comparable to an uninterrupted run's",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="with 'recover': recover by live (chunked, serve-through) "
        "WAL replay instead of stop-the-world; the printed digest must "
        "be identical either way",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with 'perf', 'serve' and 'ext-serve': shorter streams "
        "and a smaller sweep (CI mode)",
    )
    parser.add_argument(
        "--cluster-dir",
        default=None,
        metavar="DIR",
        help="with 'cluster': directory holding the member state "
        "directories and the ACKS.jsonl acked-write ledger",
    )
    parser.add_argument(
        "--cluster-nodes",
        type=_positive_int,
        default=5,
        metavar="N",
        help="with 'cluster': cluster membership (default 5)",
    )
    parser.add_argument(
        "--replication",
        type=_positive_int,
        default=3,
        metavar="N",
        help="with 'cluster': replicas per key (default 3; the write "
        "quorum is the majority)",
    )
    parser.add_argument(
        "--cluster-ops",
        type=_positive_int,
        default=2000,
        metavar="N",
        help="with 'cluster': operations to stream (default 2000)",
    )
    parser.add_argument(
        "--cluster-keys",
        type=_positive_int,
        default=48,
        metavar="N",
        help="with 'cluster': closed key-space size; member capacity "
        "is sized above it so acked writes cannot be evicted "
        "(default 48)",
    )
    parser.add_argument(
        "--kill-node",
        default=None,
        metavar="ID",
        help="with 'cluster': crash this member (WAL buffer dropped "
        "un-flushed) at the stream midpoint and leave it down",
    )
    parser.add_argument(
        "--partition-node",
        default=None,
        metavar="ID",
        help="with 'cluster': partition this member at the 1/3 mark "
        "and heal it at the 2/3 mark",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="with 'cluster': recover every member directory from its "
        "snapshot+WAL chain and assert every ledger entry survives "
        "(exit 1 on any acked-write loss)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="with 'cluster', 'serve' and 'ext-serve': stream and "
        "placement seed (default 0)",
    )
    parser.add_argument(
        "--perf-out",
        default="BENCH_perf.json",
        metavar="PATH",
        help="with 'perf': where to write the benchmark report JSON",
    )
    parser.add_argument(
        "--serve-out",
        default="BENCH_serve.json",
        metavar="PATH",
        help="with 'serve': where to write the SLO report JSON",
    )
    return parser


def _open_checkpoint(
    args: argparse.Namespace,
) -> Optional[checkpoint_mod.SweepCheckpoint]:
    """The sweep checkpoint implied by the flags, or None."""
    if not (args.resume or args.checkpoint):
        return None
    path = args.checkpoint or DEFAULT_CHECKPOINT
    # A damaged checkpoint must not kill the sweep it exists to
    # protect: open_or_reset sets it aside and starts a fresh one.
    return checkpoint_mod.SweepCheckpoint.open_or_reset(path)


def _failure_summary(failures: List[runner_mod.CellOutcome]) -> str:
    """Render the per-experiment failure table for ``all --keep-going``."""
    rows = [
        [
            outcome.name,
            outcome.attempts,
            f"{type(outcome.error).__name__}: {outcome.error}",
        ]
        for outcome in failures
    ]
    return render_table(
        ["experiment", "attempts", "error"],
        rows,
        title=f"{len(failures)} experiment(s) failed",
    )


def _run_policies() -> int:
    """Print the registered policies and the composite kinds."""
    from repro.policies.registry import policy_summaries

    rows = [list(row) for row in policy_summaries()]
    print(render_table(["name", "class", "summary"], rows,
                       title="registered replacement policies"))
    print(
        "\nComposite kinds (built on the above): 'adaptive' "
        "(Algorithm 1 over any two components), 'adaptive5' "
        "(five-component variant), 'sbar' (leader sets + global "
        "selector). The online engine (ext-online) accepts any "
        "registered name plus 'adaptive' and 'sampled'."
    )
    return 0


def _run_golden(args: argparse.Namespace) -> int:
    """Check (default) or regenerate the pinned golden-trace digests."""
    from repro.oracle import golden

    if args.regen:
        path = golden.regen_golden(args.golden_path)
        print(f"wrote golden digests to {path}")
        return 0
    ok, message = golden.check_golden(args.golden_path)
    print(message, file=sys.stdout if ok else sys.stderr)
    return 0 if ok else 1


def _run_perf(args: argparse.Namespace) -> int:
    """Benchmark the hot path and sweep; write the report JSON."""
    from repro.perf.bench import render_perf, run_perf

    workers_counts = (1, args.workers) if args.workers > 1 else (1, 4)
    report = run_perf(
        path=args.perf_out, quick=args.quick, workers_counts=workers_counts
    )
    print(render_perf(report))
    print(f"wrote {args.perf_out}")
    return 0


def _run_recover(args: argparse.Namespace) -> int:
    """Rebuild a persisted online cache; print its stats and digest.

    With ``--finish`` the key stream recorded in the directory is
    resumed to completion first (see
    :func:`repro.experiments.ext_online.persistent_replay`), so after
    a SIGKILL the printed digest must equal an uninterrupted run's —
    the CI kill-and-recover smoke compares exactly these two lines.
    """
    from repro.experiments import ext_online
    from repro.online.persistence import kv_stats_digest, recover

    if not args.snapshot_dir:
        print("recover requires --snapshot-dir DIR", file=sys.stderr)
        return 2
    try:
        if args.finish:
            stats = ext_online.persistent_replay(
                args.snapshot_dir,
                setup=base.make_setup(args.scale, accesses=args.accesses),
                live=args.live,
            )
            verb = ("recovered+finished (live)" if args.live
                    else "recovered+finished")
        elif args.live:
            from repro.online.liverecovery import live_recover

            cache = live_recover(args.snapshot_dir)
            cache.finish()
            stats = cache.stats()
            cache.close()
            verb = "recovered (live)"
        else:
            cache = recover(args.snapshot_dir)
            stats = cache.stats()
            cache.close()
            verb = "recovered"
    except FileNotFoundError as exc:
        print(
            f"recover: no persisted state in {args.snapshot_dir} ({exc})",
            file=sys.stderr,
        )
        return 1
    print(
        f"{verb}: gets={stats.gets} hits={stats.hits} "
        f"misses={stats.misses} switches={stats.policy_switches}"
    )
    print(f"digest: {kv_stats_digest(stats)}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Run the open-loop serving harness; write BENCH_serve.json."""
    from repro.experiments.ext_serve import to_result
    from repro.serve.harness import run_serve
    from repro.utils.atomicio import atomic_write_text

    report = run_serve(quick=args.quick, seed=args.seed)
    print(to_result(report).render())
    atomic_write_text(args.serve_out, report.to_json())
    print(f"wrote {args.serve_out}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report
    from repro.utils.atomicio import atomic_write_text

    results = [_run_result(name, args) for name in sorted(EXPERIMENTS)]
    text = build_report(
        results,
        title="Adaptive Caches (MICRO 2006) — reproduction report",
        preamble=[
            f"Scale: `{args.scale}`"
            + (f", {args.accesses} references/workload"
               if args.accesses else ""),
            "Regenerate with `repro-experiments report --scale "
            f"{args.scale}`.",
        ],
    )
    atomic_write_text(args.out, text)
    print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.trace_cache:
        base.set_default_trace_dir(args.trace_cache)
    if args.workers > 1:
        from repro.perf.parallel import set_default_workers

        set_default_workers(args.workers)
    if args.kernel != "auto":
        from repro.perf.kernel import set_default_kernel

        set_default_kernel(args.kernel)
    try:
        if args.experiment == "policies":
            return _run_policies()
        if args.experiment == "report":
            return _run_report(args)
        if args.experiment == "golden":
            return _run_golden(args)
        if args.experiment == "perf":
            return _run_perf(args)
        if args.experiment == "recover":
            return _run_recover(args)
        if args.experiment == "serve":
            return _run_serve(args)
        if args.experiment == "cluster":
            from repro.experiments.cluster_cli import run_cluster

            return run_cluster(args)
        return _run_experiments(args)
    finally:
        if args.trace_cache:
            base.set_default_trace_dir(None)
        if args.workers > 1:
            from repro.perf.parallel import set_default_workers

            set_default_workers(1)
        if args.kernel != "auto":
            from repro.perf.kernel import set_default_kernel

            set_default_kernel("auto")


def _run_experiments(args: argparse.Namespace) -> int:
    """Run one experiment or the whole sweep with crash isolation."""
    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    ckpt = _open_checkpoint(args)
    retry = runner_mod.RetryPolicy(attempts=args.retries + 1)
    failures: List[runner_mod.CellOutcome] = []

    for index, name in enumerate(names):
        done_key = checkpoint_mod.SweepCheckpoint.cell_key(
            "done", name, args.scale
        )
        if ckpt is not None:
            restored = ckpt.get(done_key)
            if restored is not None:
                print(f"[checkpoint] {name}: already complete, skipping")
                print(restored)
                print()
                continue

        def compute(name=name):
            with checkpoint_mod.active_checkpoint(ckpt, experiment=name):
                return _run_one(name, args)

        try:
            outcome = runner_mod.run_cell(
                compute,
                name=name,
                retry=retry,
                timeout=args.timeout,
                seed=index,
            )
        except KeyboardInterrupt:
            if ckpt is not None:
                print(
                    f"\n[checkpoint] interrupted during {name!r}; "
                    f"{len(ckpt)} completed cell(s) saved in {ckpt.path} — "
                    "re-run with --resume to continue",
                    file=sys.stderr,
                )
            else:
                print(
                    f"\ninterrupted during {name!r} (run with --resume to "
                    "make interruptions recoverable)",
                    file=sys.stderr,
                )
            return 130

        if outcome.failed:
            if args.experiment == "all" and args.keep_going:
                print(
                    f"[failed] {name}: {type(outcome.error).__name__}: "
                    f"{outcome.error} (after {outcome.attempts} attempt(s))",
                    file=sys.stderr,
                )
                failures.append(outcome)
                continue
            print(
                f"experiment {name!r} failed after {outcome.attempts} "
                f"attempt(s): {type(outcome.error).__name__}: "
                f"{outcome.error}",
                file=sys.stderr,
            )
            return 1

        print(outcome.value)
        print()
        if ckpt is not None:
            ckpt.put(done_key, outcome.value)

    if failures:
        print(_failure_summary(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
