"""The ``repro-experiments cluster`` verb: durable ledger run + verify.

The run mode streams a seeded get/put mix against a persistent
:class:`~repro.cluster.cache.ClusterKVCache` and appends a line to
``ACKS.jsonl`` *after* each write reaches its quorum (members run
``wal_flush_ops=1``, so an acked write is on >= quorum disks before
its ledger line exists). The verify mode is the other half of the CI
chaos smoke: after the run was SIGKILLed — and possibly had a member
crashed and another partitioned mid-stream — it recovers every member
directory and asserts no acked write was lost.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def run_cluster(args: argparse.Namespace) -> int:
    """Stream a durable replicated cluster, or verify one (--verify)."""
    from repro.cluster.cache import ClusterKVCache, WriteQuorumError
    from repro.utils.atomicio import atomic_write_text
    from repro.utils.rng import DeterministicRNG

    if not args.cluster_dir:
        print("cluster requires --cluster-dir DIR", file=sys.stderr)
        return 2
    if args.verify:
        return verify_cluster(args)
    if args.kill_node and args.kill_node == args.partition_node:
        print("cannot kill and partition the same member", file=sys.stderr)
        return 2

    cluster = ClusterKVCache(
        num_nodes=args.cluster_nodes,
        replication=args.replication,
        # A closed key space below capacity: acked writes cannot be
        # evicted, so the ledger invariant is pure durability.
        capacity_per_node=args.cluster_keys + 8,
        seed=args.seed,
        directory=args.cluster_dir,
        snapshot_every=200,
        wal_flush_ops=1,
        hedge_after=0.01,
    )
    for node_id in (args.kill_node, args.partition_node):
        if node_id is not None and node_id not in cluster.nodes:
            print(
                f"no member {node_id!r} (members: "
                f"{', '.join(cluster.view.node_ids())})",
                file=sys.stderr,
            )
            cluster.close()
            return 2
    atomic_write_text(
        os.path.join(args.cluster_dir, "META.json"),
        json.dumps(
            dict(
                nodes=args.cluster_nodes,
                replication=args.replication,
                keys=args.cluster_keys,
                ops=args.cluster_ops,
                seed=args.seed,
            ),
            indent=1,
        ),
    )

    kill_at = args.cluster_ops // 2 if args.kill_node else None
    partition_at = args.cluster_ops // 3 if args.partition_node else None
    heal_at = (2 * args.cluster_ops) // 3 if args.partition_node else None
    rng = DeterministicRNG(args.seed).fork(29)
    acked = failed = 0
    ledger_path = os.path.join(args.cluster_dir, "ACKS.jsonl")
    with open(ledger_path, "a") as ledger:
        for index in range(args.cluster_ops):
            if index == kill_at:
                cluster.controller.kill(args.kill_node)
                print(f"[{index}] killed {args.kill_node}")
            if index == partition_at:
                cluster.controller.partition(args.partition_node)
                print(f"[{index}] partitioned {args.partition_node}")
            if index == heal_at:
                cluster.controller.heal(args.partition_node)
                print(f"[{index}] healed {args.partition_node}")
            key = f"k{rng.choice_index(args.cluster_keys)}"
            if rng.random() < 0.5:
                value = f"v{index}"
                try:
                    version = cluster.put(key, value)
                except WriteQuorumError:
                    failed += 1
                else:
                    ledger.write(json.dumps(
                        {"key": key, "version": version, "value": value}
                    ) + "\n")
                    # The ledger must never claim durability the WALs
                    # don't have; it is fsynced per line, after the acks.
                    ledger.flush()
                    os.fsync(ledger.fileno())
                    acked += 1
            else:
                cluster.get(key)
    stats = cluster.stats()
    statuses = " ".join(
        f"{nid}={cluster.view.status(nid)}"
        for nid in cluster.view.node_ids()
    )
    cluster.close()
    print(
        f"cluster: ops={args.cluster_ops} acked={acked} failed={failed} "
        f"hedged={stats.hedged_reads} repairs={stats.read_repairs} "
        f"availability={100.0 * stats.availability:.2f}%"
    )
    print(f"members: {statuses}")
    print(f"ledger: {ledger_path} ({acked} acked writes)")
    return 0


def verify_cluster(args: argparse.Namespace) -> int:
    """Recover all member directories; assert the ledger survives."""
    from repro.online.persistence import recover

    ledger_path = os.path.join(args.cluster_dir, "ACKS.jsonl")
    if not os.path.exists(ledger_path):
        print(f"verify: no ledger at {ledger_path}", file=sys.stderr)
        return 1
    latest = {}
    acked = 0
    with open(ledger_path) as handle:
        for line in handle:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from a SIGKILL; the prefix is intact
            latest[entry["key"]] = (entry["version"], entry["value"])
            acked += 1

    # Highest version of each key across every recoverable member.
    best = {}
    members = 0
    for name in sorted(os.listdir(args.cluster_dir)):
        node_dir = os.path.join(args.cluster_dir, name)
        if not os.path.isdir(node_dir):
            continue
        try:
            store = recover(node_dir, wal_flush_ops=1)
        except Exception as exc:  # noqa: BLE001 - a dead replica is data
            print(f"verify: member {name}: unrecoverable ({exc})",
                  file=sys.stderr)
            continue
        members += 1
        for shard in store.cache.shards:
            for key in shard.resident_keys():
                found, record = shard.peek_stale(key)
                if found and (key not in best or record[0] > best[key][0]):
                    best[key] = record
        store.close()

    lost = []
    for key, (version, value) in sorted(latest.items()):
        record = best.get(key)
        if (record is None or record[0] < version
                or (record[0] == version and record[1] != value)):
            lost.append(key)
    print(
        f"verified: members={members} acked={acked} keys={len(latest)} "
        f"lost={len(lost)}"
    )
    if lost:
        print("lost acked writes: " + ", ".join(lost[:10]), file=sys.stderr)
        return 1
    return 0
