"""Section 4.7: eliminating the overheads with set sampling (SBAR).

Paper result: an SBAR-like cache (leader sets + global selector, no
duplicate tags for followers) achieves a 12.5% average CPI improvement
vs the regular adaptive cache's 12.9%, at 0.16% hardware overhead
(0.09% when the leaders use 8-bit partial tags) — a little less robust
(9% worse than regular adaptivity on ammp, 4% on xanim) but very
competitive.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.cache.overhead import StorageModel
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
    run_policy_sweep,
)

POLICY_SPECS = {
    "Adaptive": {"policy_kind": "adaptive", "components": ("lru", "lfu")},
    "SBAR": {"policy_kind": "sbar", "components": ("lru", "lfu")},
    "SBAR (8-bit leaders)": {"policy_kind": "sbar",
                             "components": ("lru", "lfu"),
                             "partial_bits": 8},
    "LRU": {"policy_kind": "lru"},
}


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    num_leaders: int = 16,
) -> ExperimentResult:
    """Reproduce the SBAR comparison of Section 4.7."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))
    specs = {
        label: dict(kwargs, num_leaders=num_leaders)
        if kwargs["policy_kind"] == "sbar" else kwargs
        for label, kwargs in POLICY_SPECS.items()
    }
    sweep = run_policy_sweep(cache, workloads, specs)

    result = ExperimentResult(
        experiment="sec47",
        description="SBAR-like set sampling vs full adaptivity "
        "(CPI, lower is better)",
        headers=["benchmark"] + list(POLICY_SPECS),
    )
    for name in workloads:
        result.add_row(name, *(sweep[name][p].cpi for p in POLICY_SPECS))
    averages = {
        p: arithmetic_mean([sweep[name][p].cpi for name in workloads])
        for p in POLICY_SPECS
    }
    result.add_row("Average", *(averages[p] for p in POLICY_SPECS))

    for label in ("Adaptive", "SBAR", "SBAR (8-bit leaders)"):
        result.add_note(
            f"{label}: {percent_reduction(averages['LRU'], averages[label]):.1f}% "
            "average CPI improvement vs LRU"
        )
    storage = StorageModel(setup.l2)
    result.add_note(
        "Hardware overhead — adaptive full tags "
        f"{storage.adaptive_overhead_percent():.1f}%, 8-bit partial "
        f"{storage.adaptive_overhead_percent(8):.1f}%, SBAR "
        f"{storage.sbar_overhead_percent(num_leaders):.2f}%, SBAR 8-bit "
        f"{storage.sbar_overhead_percent(num_leaders, 8):.2f}% "
        "(paper at 512 KB: 9.9%/4.0%/0.16%/0.09%)"
    )
    return result


if __name__ == "__main__":
    print(run().render())
