"""Extension: a DIP-like design inside the paper's framework.

The paper's set-sampling experiment (Section 4.7, after Qureshi et
al.'s SBAR) is the direct ancestor of DIP (Qureshi et al., ISCA 2007):
set dueling between LRU and the thrash-resistant Bimodal Insertion
Policy. Because our adaptivity machinery is policy-agnostic, DIP falls
out of it: :class:`~repro.core.sbar.SbarPolicy` over (LRU, BIP) *is* a
DIP-like cache. This experiment compares it against plain LRU, plain
BIP, the paper's LRU/LFU adaptive cache, and full-shadow LRU/BIP
adaptivity, on the thrash-prone and recency-friendly halves of the
suite.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
    run_policy_sweep,
)

# Loop-thrashing programs (where BIP shines) + recency-friendly ones
# (where naive BIP loses and the duel must pick LRU).
DEFAULT_WORKLOADS = ["art-1", "art-2", "gcc-1", "equake", "lucas",
                     "gcc-2", "parser", "bzip2"]

POLICY_SPECS = {
    "DIP-like (sbar lru+bip)": {"policy_kind": "sbar",
                                "components": ("lru", "bip")},
    "Adaptive (lru+bip)": {"policy_kind": "adaptive",
                           "components": ("lru", "bip")},
    "Adaptive (lru+lfu)": {"policy_kind": "adaptive",
                           "components": ("lru", "lfu")},
    "BIP": {"policy_kind": "bip"},
    "LRU": {"policy_kind": "lru"},
}


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """MPKI of DIP-like set dueling vs this paper's adaptivity."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or DEFAULT_WORKLOADS)
    sweep = run_policy_sweep(cache, workloads, POLICY_SPECS)

    result = ExperimentResult(
        experiment="ext-dip",
        description="DIP-style set dueling expressed in this paper's "
        "framework (MPKI, lower is better)",
        headers=["benchmark"] + list(POLICY_SPECS),
    )
    for name in workloads:
        result.add_row(name, *(sweep[name][p].mpki for p in POLICY_SPECS))
    averages = {
        p: arithmetic_mean([sweep[name][p].mpki for name in workloads])
        for p in POLICY_SPECS
    }
    result.add_row("Average", *(averages[p] for p in POLICY_SPECS))
    result.add_note(
        "DIP-like vs LRU: "
        f"{percent_reduction(averages['LRU'], averages['DIP-like (sbar lru+bip)']):+.1f}% "
        "average MPKI — set dueling over (LRU, BIP) emerges from the "
        "paper's machinery with zero new mechanism."
    )
    return result


if __name__ == "__main__":
    print(run().render())
