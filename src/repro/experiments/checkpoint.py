"""JSON checkpoint/resume for experiment sweeps.

A :class:`SweepCheckpoint` is a flat key/value store persisted as JSON
with an atomic write after every update, so killing a sweep at any
point (SIGINT, OOM, power loss) leaves a loadable file recording every
*completed* cell. Keys are slash-joined cell coordinates — e.g.
``cell/fig3/scaled/60000/lucas/Adaptive`` for one (experiment,
workload, policy) simulation, or ``done/fig3/scaled`` for a whole
experiment — and values are JSON data (serialized
:class:`~repro.cpu.timing.TimingResult` cells, rendered report text).

The module also carries the *active checkpoint context*: the CLI arms a
checkpoint around each experiment it runs, and shared infrastructure
(``run_policy_sweep``) transparently skips cells the checkpoint already
holds. Experiments themselves stay checkpoint-oblivious.
"""

from __future__ import annotations

import contextlib
import json
import os
import sys
from typing import Iterator, List, Optional, Tuple, Union

from repro.cpu.timing import TimingResult
from repro.utils.atomicio import atomic_write_text

CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be used (corrupt/wrong version)."""


class SweepCheckpoint:
    """Crash-safe store of completed sweep cells.

    Args:
        path: the JSON file; loaded if it exists, created on first
            :meth:`put`.

    Raises:
        CheckpointError: when the existing file is not valid JSON or
            declares an incompatible version.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self._cells = {}
        if os.path.exists(self.path):
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint file {self.path} is unreadable: {exc}"
                ) from exc
            version = payload.get("version")
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint file {self.path} has version {version!r}; "
                    f"this build reads {CHECKPOINT_VERSION}"
                )
            cells = payload.get("cells")
            if not isinstance(cells, dict):
                raise CheckpointError(
                    f"checkpoint file {self.path} has no 'cells' mapping"
                )
            self._cells = cells

    @classmethod
    def open_or_reset(cls, path: Union[str, os.PathLike]
                      ) -> "SweepCheckpoint":
        """Open ``path``, quarantining a damaged file instead of raising.

        A checkpoint exists to protect a sweep from crashes; a torn or
        corrupt checkpoint killing the resume it was meant to enable
        would be absurd. On :class:`CheckpointError` the file is moved
        aside to ``<path>.corrupt`` (a later run can inspect it), a
        warning goes to stderr, and a fresh empty checkpoint is
        returned — the sweep recomputes from scratch, which is always
        safe.
        """
        try:
            return cls(path)
        except CheckpointError as exc:
            target = os.fspath(path)
            quarantine = target + ".corrupt"
            os.replace(target, quarantine)
            print(
                f"[checkpoint] {exc}; moved aside to {quarantine}, "
                "starting fresh",
                file=sys.stderr,
            )
            return cls(path)

    @staticmethod
    def cell_key(*parts) -> str:
        """Join cell coordinates into a stable key string."""
        return "/".join(str(p) for p in parts)

    def __len__(self) -> int:
        return len(self._cells)

    def has(self, key: str) -> bool:
        """Whether ``key`` records a completed cell."""
        return key in self._cells

    def get(self, key: str, default=None):
        """The recorded value for ``key``, or ``default``."""
        return self._cells.get(key, default)

    def put(self, key: str, value) -> None:
        """Record a completed cell and persist the file atomically."""
        self._cells[key] = value
        self._save()

    def keys(self) -> List[str]:
        """All recorded cell keys."""
        return list(self._cells)

    def discard(self, key: str) -> None:
        """Forget a cell (e.g. to force recomputation); persists."""
        if key in self._cells:
            del self._cells[key]
            self._save()

    def _save(self) -> None:
        payload = {"version": CHECKPOINT_VERSION, "cells": self._cells}
        atomic_write_text(self.path, json.dumps(payload, indent=1))


# ---------------------------------------------------------------------------
# Active checkpoint context
# ---------------------------------------------------------------------------

_ACTIVE: List[Tuple[SweepCheckpoint, str]] = []


@contextlib.contextmanager
def active_checkpoint(
    checkpoint: Optional[SweepCheckpoint], experiment: str
) -> Iterator[None]:
    """Make ``checkpoint`` visible to nested sweep infrastructure.

    ``run_policy_sweep`` consults :func:`active` to cache/skip
    per-(workload, policy) cells under the given experiment name. A
    None checkpoint is a no-op, so callers need no special-casing.
    """
    if checkpoint is None:
        yield
        return
    _ACTIVE.append((checkpoint, experiment))
    try:
        yield
    finally:
        _ACTIVE.pop()


def active() -> Optional[Tuple[SweepCheckpoint, str]]:
    """The innermost active (checkpoint, experiment) pair, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


# ---------------------------------------------------------------------------
# TimingResult cell serialization
# ---------------------------------------------------------------------------


def timing_to_dict(result: TimingResult) -> dict:
    """JSON-serializable form of one simulation cell."""
    return {
        "name": result.name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "l2_accesses": result.l2_accesses,
        "l2_misses": result.l2_misses,
        "breakdown": dict(result.breakdown),
    }


def timing_from_dict(payload: dict) -> TimingResult:
    """Rebuild a :class:`TimingResult` recorded by :func:`timing_to_dict`."""
    return TimingResult(
        name=payload["name"],
        instructions=int(payload["instructions"]),
        cycles=float(payload["cycles"]),
        l2_accesses=int(payload["l2_accesses"]),
        l2_misses=int(payload["l2_misses"]),
        breakdown={k: float(v) for k, v in payload["breakdown"].items()},
    )


def restore_timing_cell(payload, key: str) -> Optional[TimingResult]:
    """A corruption-tolerant :func:`timing_from_dict` for resume paths.

    A checkpoint file can be valid JSON while an individual cell's
    payload is damaged (hand-edited, produced by an older build, or
    hit by partial corruption the outer framing survived). A resume
    must treat such a cell exactly like a missing one: warn, discard,
    resimulate — never crash the sweep.

    Returns:
        The restored cell, or None when the payload is unusable.
    """
    try:
        return timing_from_dict(payload)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        print(
            f"[checkpoint] cell {key} is corrupt ({exc!r}); "
            "discarding and resimulating",
            file=sys.stderr,
        )
        return None
