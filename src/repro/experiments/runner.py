"""Crash isolation for experiment cells: retry, backoff, timeouts.

A multi-hour ``--scale paper`` sweep must not die wholesale because one
workload crashed or one cached trace was truncated. :func:`run_cell`
wraps one unit of work (an experiment, or a single workload simulation)
with:

* **crash isolation** — any ``Exception`` is captured into a
  :class:`CellOutcome` instead of propagating (``KeyboardInterrupt`` and
  ``SystemExit`` always propagate, so Ctrl-C still stops the sweep);
* **retry with exponential backoff** — transient failures are retried
  with jittered, capped delays, optionally preceded by a ``recover``
  callback (e.g. deleting a corrupt trace file);
* **a wall-clock timeout** — enforced with ``SIGALRM`` where available
  (POSIX main thread); elsewhere the timeout is silently skipped rather
  than unsupported platforms crashing.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.utils.rng import DeterministicRNG


class CellTimeout(RuntimeError):
    """A cell exceeded its wall-clock timeout."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule for a failing cell.

    Attributes:
        attempts: total tries (1 = no retries).
        base_delay: delay before the first retry, in seconds.
        multiplier: exponential growth factor between retries.
        max_delay: cap on any single delay.
        jitter: fraction of each delay randomized symmetrically
            (0.5 means the delay is drawn from [0.5d, 1.5d]).
    """

    attempts: int = 1
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_index: int, rng: DeterministicRNG) -> float:
        """Jittered, capped delay before retry ``retry_index`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if self.jitter == 0.0:
            return raw
        spread = 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return min(self.max_delay, raw * spread)


@dataclass
class CellOutcome:
    """What happened when a cell ran (possibly several times).

    Attributes:
        name: the cell's display name.
        value: the function's return value, if any attempt succeeded.
        error: the last exception, if every attempt failed.
        attempts: how many attempts were made.
        retry_errors: exceptions from attempts that were retried.
    """

    name: str
    value: object = None
    error: Optional[BaseException] = None
    attempts: int = 0
    retry_errors: List[BaseException] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when no attempt succeeded."""
        return self.error is not None


def timeout_supported() -> bool:
    """Whether wall-clock timeouts can be enforced here (POSIX main thread)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _alarm(seconds: Optional[float], name: str):
    """Raise :class:`CellTimeout` inside the block after ``seconds``."""
    if not seconds or not timeout_supported():
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(f"cell {name!r} exceeded {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_cell(
    fn: Callable[[], object],
    name: str,
    retry: RetryPolicy = RetryPolicy(),
    timeout: Optional[float] = None,
    recover: Optional[Callable[[BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    seed: int = 0,
) -> CellOutcome:
    """Run one cell with isolation, retries, backoff and a timeout.

    Args:
        fn: the zero-argument unit of work.
        name: display name for messages and the timeout error.
        retry: the retry schedule (default: single attempt).
        timeout: per-attempt wall-clock limit in seconds, or None.
        recover: called with the failure before each retry — the hook
            for cleanup like deleting a corrupt cached trace.
        sleep: injection point for tests (defaults to ``time.sleep``).
        seed: seed for the jitter RNG, so sweeps are reproducible.

    Returns:
        A :class:`CellOutcome`; exceptions never propagate except
        ``KeyboardInterrupt`` / ``SystemExit``.
    """
    outcome = CellOutcome(name=name)
    rng = DeterministicRNG(seed)
    for attempt in range(retry.attempts):
        outcome.attempts = attempt + 1
        try:
            with _alarm(timeout, name):
                outcome.value = fn()
            outcome.error = None
            return outcome
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            outcome.error = exc
            if attempt + 1 >= retry.attempts:
                break
            outcome.retry_errors.append(exc)
            if recover is not None:
                recover(exc)
            sleep(retry.delay(attempt, rng))
    return outcome
