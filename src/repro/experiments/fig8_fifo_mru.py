"""Figure 8: adapting between FIFO and MRU.

Paper result: MRU alone is usually terrible, but for programs with
large linear loops (one gcc input, art) it beats reasonable policies;
the FIFO/MRU adaptive cache tightly tracks the better component on
every benchmark, demonstrating the generality of the scheme. No
combination beat LRU+LFU overall.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
    run_policy_sweep,
)

POLICY_SPECS = {
    "FMAdaptive": {"policy_kind": "adaptive", "components": ("fifo", "mru")},
    "FIFO": {"policy_kind": "fifo"},
    "MRU": {"policy_kind": "mru"},
}


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Reproduce Figure 8's FIFO/MRU MPKI series."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))
    sweep = run_policy_sweep(cache, workloads, POLICY_SPECS)

    result = ExperimentResult(
        experiment="fig8",
        description="L2 MPKI adapting between FIFO and MRU "
        "(lower is better)",
        headers=["benchmark"] + list(POLICY_SPECS),
    )
    mru_wins = []
    for name in workloads:
        mpkis = {p: sweep[name][p].mpki for p in POLICY_SPECS}
        result.add_row(name, *(mpkis[p] for p in POLICY_SPECS))
        if mpkis["MRU"] < mpkis["FIFO"] * 0.98:
            mru_wins.append(name)
    averages = {
        p: arithmetic_mean([sweep[name][p].mpki for name in workloads])
        for p in POLICY_SPECS
    }
    result.add_row("Average", *(averages[p] for p in POLICY_SPECS))
    result.add_note(
        f"MRU beats FIFO on: {', '.join(mru_wins) or 'none'} "
        "(paper: one gcc input and art)"
    )
    return result


if __name__ == "__main__":
    print(run().render())
