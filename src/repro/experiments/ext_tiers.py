"""Extension experiment: placement strategies over a two-tier topology.

Replays key-stream workloads (Zipf skew, hot-set + scan, phase changes)
through a near/far :class:`~repro.tiers.kv.TieredKVCache` — a small
near shard in front of a large far shard — under each placement
strategy: leave-copy-everywhere, leave-copy-down, probabilistic LCD,
and :class:`~repro.tiers.adaptive.AdaptivePlacement` (Algorithm 1's
selector dueling the fixed strategies per keyspace partition). One
extra cell runs LCE with the near tier under EHC replacement, so the
sweep exercises the expected-hit-count policy end to end.

The claim under test is the placement analogue of the paper's: no
fixed placement wins everywhere — LCE wins when the near tier can hold
the working set, LCD wins under scan pollution — and the adaptive
strategy tracks the better component on each regime. The headline
metric is *mean access latency* (placement controls where on the path
a value is found, not just whether it is found), with near-tier serve
rate and overall hit rate alongside.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments.base import ExperimentResult, Setup, make_setup
from repro.experiments.ext_online import build_key_stream
from repro.online.policies import build_shard_policy
from repro.online.shard import CacheShard
from repro.tiers.kv import tiered_front
from repro.tiers.placement import make_placement

#: Placement strategies compared by the experiment. ``lce+ehc`` is LCE
#: placement with the near tier running EHC replacement instead of LRU.
DEFAULT_STRATEGIES = ("lce", "lcd", "problcd", "adaptive", "lce+ehc")

#: Fixed placement strategies the adaptive one is judged against.
FIXED_STRATEGIES = ("lce", "lcd", "problcd")

#: The three keystream classes of the acceptance criterion.
DEFAULT_WORKLOADS = ("zipf", "scan-hot", "phase-zipf")

#: Near-tier capacity as a fraction of the far tier's.
NEAR_DIVISOR = 8

#: Latency model: near probe, far probe, backing fetch.
NEAR_LATENCY = 1
FAR_LATENCY = 10
BACKING_LATENCY = 100

#: Adaptive counts as matching the best fixed strategy when its mean
#: latency is within this many cycles (measurement noise is zero — the
#: tolerance absorbs genuine photo-finish ties between strategies).
LATENCY_TOLERANCE = 0.5


def _parse_strategy(spec: str):
    """``"lce+ehc"`` -> ``("lce", "ehc")``; bare names get LRU tiers."""
    placement_name, _, near_policy = spec.partition("+")
    return placement_name, (near_policy or "lru")


def build_topology(strategy: str, capacity: int, seed: int = 0):
    """The experiment's near/far topology under one strategy spec.

    Args:
        strategy: a :data:`DEFAULT_STRATEGIES` entry —
            ``"<placement>"`` or ``"<placement>+<near_policy>"``.
        capacity: far-tier entry capacity; the near tier holds
            ``capacity // NEAR_DIVISOR``.
        seed: placement + shard policy seed.
    """
    placement_name, near_policy = _parse_strategy(strategy)
    near_capacity = max(8, capacity // NEAR_DIVISOR)
    far = CacheShard(capacity, build_shard_policy("lru", capacity))
    kwargs = {}
    if placement_name == "adaptive":
        # Duel every fixed strategy, not just the lce/lcd default: the
        # claim under test is that adaptation tracks the best of the
        # whole fixed family on each regime.
        kwargs["components"] = FIXED_STRATEGIES
    placement = make_placement(
        placement_name,
        tier_capacities=[near_capacity, capacity],
        seed=seed,
        **kwargs,
    )
    return tiered_front(
        far,
        near_capacity,
        capacity,
        placement=placement,
        near_policy=near_policy,
        near_latency=NEAR_LATENCY,
        far_latency=FAR_LATENCY,
        backing_latency=BACKING_LATENCY,
        seed=seed,
    )


def replay(strategy: str, keys: Sequence[str], capacity: int,
           seed: int = 0) -> Dict[str, float]:
    """Replay ``keys`` through one strategy's topology; one metrics cell.

    Every access is a ``get_or_compute`` with a trivial loader, so a
    topology-wide miss costs the full backing latency and placement
    quality shows up directly in the mean.
    """
    front = build_topology(strategy, capacity, seed=seed)
    start = time.perf_counter()
    for key in keys:
        front.get_or_compute(key, lambda k: k)
    elapsed = time.perf_counter() - start
    stats = front.stats()
    placement = stats["placement"]
    return {
        "near_pct": 100.0 * stats["serves"]["near"] / stats["gets"],
        "hit_pct": 100.0 * stats["tier_hits"] / stats["gets"],
        "mean_latency": stats["mean_latency"],
        "ops_per_sec": len(keys) / elapsed if elapsed > 0 else 0.0,
        "switches": placement.get("switches", 0),
        "majority": placement.get("majority", placement["name"]),
    }


def _cell(setup: Setup, workload: str, strategy: str, compute
          ) -> Dict[str, float]:
    """Compute one metrics cell, via the active sweep checkpoint if any."""
    entry = checkpoint_mod.active()
    if entry is None:
        return compute()
    ckpt, experiment = entry
    key = ckpt.cell_key(
        "cell", experiment, setup.name, setup.accesses, workload, strategy
    )
    cached = ckpt.get(key)
    if cached is not None:
        return cached
    cell = compute()
    ckpt.put(key, cell)
    return cell


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    seed: int = 0,
) -> ExperimentResult:
    """Latency and serve-rate of every (key stream, strategy) pair.

    Args:
        setup: experiment scale; the far tier holds as many entries as
            the simulated L2 held blocks.
        workloads: key-stream names (default: the three acceptance
            classes, :data:`DEFAULT_WORKLOADS`).
        strategies: strategy specs (default: :data:`DEFAULT_STRATEGIES`).
        seed: base seed for generators and stochastic strategies.
    """
    setup = setup or make_setup()
    workloads = list(workloads or DEFAULT_WORKLOADS)
    strategies = list(strategies)
    capacity = setup.l2.num_lines
    near_capacity = max(8, capacity // NEAR_DIVISOR)

    result = ExperimentResult(
        experiment="ext-tiers",
        description="tiered KV serving: adaptive placement vs fixed "
        f"strategies (near {near_capacity} / far {capacity} entries; "
        f"probe {NEAR_LATENCY}/{FAR_LATENCY}, backing {BACKING_LATENCY})",
        headers=["workload", "strategy", "near %", "hit %", "mean lat",
                 "ops/sec", "switches"],
    )
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in workloads:
        keys = build_key_stream(workload, capacity, setup, seed=seed)
        table[workload] = {}
        for strategy in strategies:
            compute = lambda s=strategy: replay(  # noqa: E731
                s, keys, capacity, seed=seed
            )
            cell = _cell(setup, workload, strategy, compute)
            table[workload][strategy] = cell
            result.add_row(
                workload, strategy, cell["near_pct"], cell["hit_pct"],
                cell["mean_latency"], cell["ops_per_sec"], cell["switches"],
            )

    for workload, cells in table.items():
        fixed = {
            s: cells[s]["mean_latency"]
            for s in FIXED_STRATEGIES if s in cells
        }
        if not fixed or "adaptive" not in cells:
            continue
        best_name = min(fixed, key=fixed.get)
        adaptive = cells["adaptive"]
        verdict = (
            "matches/beats"
            if adaptive["mean_latency"] <= fixed[best_name] + LATENCY_TOLERANCE
            else "trails"
        )
        result.add_note(
            f"{workload}: adaptive {adaptive['mean_latency']:.2f} cycles "
            f"(majority {adaptive['majority']}) {verdict} best fixed "
            f"({best_name} {fixed[best_name]:.2f}; worst "
            f"{max(fixed.values()):.2f})."
        )
    return result


def adaptive_latency_margin(result: ExperimentResult, workload: str) -> float:
    """Best fixed strategy's mean latency minus adaptive's, for ``workload``.

    Positive (or within :data:`LATENCY_TOLERANCE` of zero) means the
    adaptive strategy matched or beat the best fixed placement on that
    keystream class — the acceptance condition, required on at least
    two of the three classes.
    """
    rows = [r for r in result.rows if r[0] == workload]
    by_strategy = {r[1]: r[4] for r in rows}
    best_fixed = min(
        value for strategy, value in by_strategy.items()
        if strategy in FIXED_STRATEGIES
    )
    return best_fixed - by_strategy["adaptive"]


def acceptance_score(result: ExperimentResult) -> int:
    """Number of workload classes where adaptive matches/beats best fixed."""
    workloads = {r[0] for r in result.rows}
    return sum(
        1 for workload in sorted(workloads)
        if adaptive_latency_margin(result, workload) >= -LATENCY_TOLERANCE
    )


if __name__ == "__main__":
    print(run().render())
