"""Extension experiment: open-loop serving SLOs over the online cache.

The paper shapes cache *behavior* to workloads; a serving system cares
about the consequence: tail latency under real arrival processes. This
experiment drives the async serving front
(:mod:`repro.serve`) with seeded open-loop streams
(:mod:`repro.workloads.keystreams`) on a virtual-time event loop and
reports the SLO picture — p50/p99/p999, goodput, shed/timeout rates
and the stale-serve fraction — across five regimes:

* **steady**: offered load well under capacity (the baseline SLO);
* **overload**: bursty MMPP arrivals past capacity with a bounded
  queue — the load-shedding knob trades refused requests for a held
  tail;
* **degraded**: a flaky, browning-out backend plus shards quarantined
  mid-run and rebuilt — the resilient ladder answers stale-but-true
  values and never a wrong one;
* **recovery**: a persistent cache is seeded, killed, and restarted
  *under traffic* as a live-recovering cache — chunked WAL replay
  serves reads shard by shard while admission backpressure sheds the
  excess, and the end-of-regime digest must match a stop-the-world
  recovery of the same directory (zero acked-write loss);
* **steady_tiered**: the near/far tiered front under the steady
  arrival process — the two-tier hit path through the same admission
  front.

Everything runs in virtual time, so the experiment is fast, and with a
fixed seed the whole report — every latency percentile included — is
byte-identical run to run. ``repro-experiments serve`` writes the same
numbers as ``BENCH_serve.json`` for the bench-regression gate.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult, Setup
from repro.serve.harness import ServeReport, run_serve


def run(
    setup: Optional[Setup] = None,
    seed: int = 0,
    quick: Optional[bool] = None,
) -> ExperimentResult:
    """The five-regime serving report as an :class:`ExperimentResult`.

    Args:
        setup: experiment scale; ``mini`` maps to the quick (CI-sized)
            harness, anything else to the full one. The cache geometry
            itself is fixed by the regime plans — serving SLOs are
            about load versus capacity, not L2 bytes.
        seed: master seed for streams, chaos and service jitter.
        quick: force quick/full regardless of ``setup``.
    """
    if quick is None:
        quick = setup is not None and setup.name == "mini"
    report = run_serve(quick=quick, seed=seed)
    return to_result(report)


def to_result(report: ServeReport) -> ExperimentResult:
    """Render a :class:`~repro.serve.harness.ServeReport` as the
    standard experiment table."""
    result = ExperimentResult(
        experiment="ext-serve",
        description="Open-loop serving SLOs over the resilient online "
        "cache: tail latency, goodput, shedding and stale serving "
        "across steady / overload / degraded / recovery / tiered "
        "regimes (virtual time, deterministic per seed)",
        headers=[
            "regime", "offered rps", "goodput rps", "p50 ms", "p99 ms",
            "p999 ms", "shed %", "timeout %", "stale %", "wrong",
        ],
    )
    for regime in report.regimes.values():
        result.add_row(
            regime.name,
            regime.offered_rps,
            regime.goodput_rps,
            regime.p50_ms,
            regime.p99_ms,
            regime.p999_ms,
            100.0 * regime.shed_rate,
            100.0 * regime.timeout_rate,
            100.0 * regime.stale_fraction,
            regime.wrong_values,
        )

    steady = report.regimes.get("steady")
    overload = report.regimes.get("overload")
    degraded = report.regimes.get("degraded")
    if steady is not None and overload is not None:
        result.add_note(
            f"Overload shed {100.0 * overload.shed_rate:.1f}% of "
            f"arrivals to hold p99 at {overload.p99_ms:.1f} ms while "
            f"goodput saturated at {overload.goodput_rps:.0f} rps "
            f"(steady baseline: p99 {steady.p99_ms:.1f} ms at "
            f"{steady.goodput_rps:.0f} rps)."
        )
    if degraded is not None:
        result.add_note(
            f"Degraded regime (flaky backend, {degraded.breaker_trips} "
            f"breaker trips, shards quarantined then rebuilt) served "
            f"{100.0 * degraded.stale_fraction:.2f}% of completions "
            f"stale — every one a previously-true value: "
            f"{degraded.wrong_values} wrong values observed; "
            f"{degraded.retries_denied} retries denied by the shared "
            "retry budget."
        )
    recovery = report.regimes.get("recovery")
    if recovery is not None:
        result.add_note(
            f"Recovery regime: {recovery.replay_applied_ops} of "
            f"{recovery.replay_total_ops} WAL records replayed live in "
            f"{recovery.recovery_complete_s:.2f} s while serving "
            f"(p99 during replay {recovery.replay_p99_ms:.1f} ms); "
            f"honest outcomes only — {recovery.refused_recovering} "
            f"refusals, {recovery.recovering_stale} stale-marked "
            f"serves, {recovery.deferred_writes} writes deferred then "
            "applied in order. Digest match vs stop-the-world "
            f"recovery: {bool(recovery.recovered_digest_match)} "
            "(must be True — no acked write lost)."
        )
    tiered = report.regimes.get("steady_tiered")
    if tiered is not None:
        result.add_note(
            f"Tiered front under steady load: hit ratio "
            f"{100.0 * tiered.hit_ratio:.1f}% through the near/far "
            f"pair at p99 {tiered.p99_ms:.1f} ms, "
            f"{tiered.wrong_values} wrong values."
        )
    total_wrong = sum(r.wrong_values for r in report.regimes.values())
    result.add_note(
        "Sketch vs exact percentiles agree within the configured 1% "
        "relative error in every regime; wrong values across all "
        f"regimes: {total_wrong} (must be 0)."
    )
    result.add_note(
        f"Seed {report.seed}, {'quick' if report.quick else 'full'} "
        "scale; the identical seed reproduces this table byte for byte "
        "(virtual-time event loop — no wall-clock in any number)."
    )
    return result


if __name__ == "__main__":
    print(run().render())
