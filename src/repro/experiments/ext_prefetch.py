"""Extension: adaptive hybrid prefetching (Section 6).

The paper's second future-work item: apply the adaptivity machinery to
hybrid prefetchers, replacing hit/miss with useful/not-useful prefetch.
This experiment measures demand MPKI with no prefetching, each
component prefetcher alone, and the adaptive hybrid, on a slice of the
primary set that contains both stream-friendly (strided sweeps — stride
prefetching shines) and pointer-chasing workloads (prefetching is pure
pollution).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.cache.cache import SetAssociativeCache
from repro.experiments.base import ExperimentResult, Setup, WorkloadCache, make_setup
from repro.policies.lru import LRUPolicy
from repro.prefetch.base import Prefetcher
from repro.prefetch.engine import PrefetchingCache
from repro.prefetch.hybrid import AdaptiveHybridPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.workloads.trace import KIND_STORE

DEFAULT_WORKLOADS = ["swim", "applu", "equake", "mcf", "ft", "lucas",
                     "tiff2rgba", "bzip2"]


def _prefetchers() -> Dict[str, Callable[[], Optional[Prefetcher]]]:
    return {
        "none": lambda: None,
        "nextline": lambda: NextLinePrefetcher(degree=2),
        "stride": lambda: StridePrefetcher(degree=2),
        "hybrid": lambda: AdaptiveHybridPrefetcher(
            [NextLinePrefetcher(degree=2), StridePrefetcher(degree=2)]
        ),
    }


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Demand MPKI per workload for each prefetch configuration."""
    setup = setup or make_setup()
    cache_ws = WorkloadCache(setup)
    workloads = list(workloads or DEFAULT_WORKLOADS)
    configurations = _prefetchers()

    result = ExperimentResult(
        experiment="ext-prefetch",
        description="Demand MPKI with component vs adaptive-hybrid "
        "prefetching (lower is better; Section 6 future work)",
        headers=["benchmark"] + list(configurations),
    )
    per_config = {label: [] for label in configurations}
    accuracies = {}
    for name in workloads:
        trace = cache_ws.trace(name)
        instructions = trace.instruction_count
        row = [name]
        for label, factory in configurations.items():
            config = setup.l2
            cache = SetAssociativeCache(
                config, LRUPolicy(config.num_sets, config.ways)
            )
            prefetcher = factory()
            if prefetcher is None:
                for kind, address, _gap in trace.memory_records():
                    cache.access(address, is_write=(kind == KIND_STORE))
                mpki = cache.stats.mpki(instructions)
            else:
                engine = PrefetchingCache(cache, prefetcher)
                for kind, address, _gap in trace.memory_records():
                    engine.access(address, is_write=(kind == KIND_STORE))
                mpki = engine.stats.mpki(instructions)
                if label == "hybrid":
                    accuracies[name] = engine.stats.accuracy
            per_config[label].append(mpki)
            row.append(mpki)
        result.rows.append(row)
    result.add_row(
        "Average",
        *(arithmetic_mean(per_config[label]) for label in configurations),
    )
    result.add_note(
        "The hybrid should track the better component per workload "
        "(stride on sweeps, restraint on pointer chasing), the same "
        "shape the adaptive cache shows for replacement policies."
    )
    if accuracies:
        result.add_note(
            "Hybrid prefetch accuracy per workload: "
            + ", ".join(f"{k}={v:.2f}" for k, v in accuracies.items())
        )
    return result


if __name__ == "__main__":
    print(run().render())
