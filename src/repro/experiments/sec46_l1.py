"""Section 4.6: adaptivity at other cache levels (L1I, L1D).

Paper result: an adaptive 16 KB instruction cache cuts I-MPKI by about
12%, and the adaptive L1 data cache cuts D-MPKI by less than 1% — but
neither moves overall performance (<0.1%), because the out-of-order
core tolerates occasional I-misses and the L1D is dominated by capacity
misses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.core.multi import make_adaptive
from repro.experiments.base import ExperimentResult, Setup, WorkloadCache, make_setup
from repro.policies.lru import LRUPolicy
from repro.workloads.builder import CODE_SEGMENT_BASE
from repro.workloads.suite import workload_seed
from repro.workloads.synth import linear_loop, working_set
from repro.workloads.phases import interleave_streams
from repro.workloads.trace import KIND_STORE


def instruction_stream(
    name: str, config: CacheConfig, accesses: int
) -> List[int]:
    """Synthetic instruction-fetch line stream for one workload.

    Code behaviour is loops over straight-line regions plus calls into a
    set of hot functions; the loop footprint varies per workload between
    0.6x and 1.6x of the instruction cache, so some workloads thrash an
    LRU-managed L1I (where adaptivity helps) and others fit.
    """
    seed = workload_seed(name, offset=7)
    scale = 0.6 + (seed % 11) / 10.0  # 0.6 .. 1.6
    loop_lines = max(config.ways + 1, int(scale * config.num_lines))
    hot_functions = max(config.ways, config.num_lines // 4)
    return interleave_streams(
        [
            linear_loop(loop_lines, accesses * 2 // 3),
            working_set(hot_functions, accesses - accesses * 2 // 3,
                        seed=seed, locality=0.4),
        ],
        weights=[0.7, 0.3],
        seed=seed + 1,
    )


def _mpki_pair(
    addresses: Sequence[int],
    writes: Sequence[bool],
    config: CacheConfig,
    instructions: int,
) -> tuple:
    """(LRU MPKI, adaptive MPKI) of one address stream on one geometry."""
    lru_cache = SetAssociativeCache(
        config, LRUPolicy(config.num_sets, config.ways)
    )
    adaptive_cache = SetAssociativeCache(
        config, make_adaptive(config.num_sets, config.ways, ("lru", "lfu"))
    )
    for address, is_write in zip(addresses, writes):
        lru_cache.access(address, is_write)
        adaptive_cache.access(address, is_write)
    return (
        lru_cache.stats.mpki(instructions),
        adaptive_cache.stats.mpki(instructions),
    )


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Reproduce the L1 adaptivity study of Section 4.6."""
    setup = setup or make_setup()
    cache_ws = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))
    l1 = setup.processor.l1d

    inst_lru, inst_adp = [], []
    data_lru, data_adp = [], []
    for name in workloads:
        trace = cache_ws.trace(name)
        instructions = trace.instruction_count

        stream = instruction_stream(name, l1, setup.accesses // 2)
        fetch_addresses = [
            CODE_SEGMENT_BASE + line * l1.line_bytes for line in stream
        ]
        ilru, iadp = _mpki_pair(
            fetch_addresses, [False] * len(fetch_addresses), l1, instructions
        )
        inst_lru.append(ilru)
        inst_adp.append(iadp)

        data_addresses = []
        data_writes = []
        for kind, address, _gap in trace.memory_records():
            data_addresses.append(address)
            data_writes.append(kind == KIND_STORE)
        dlru, dadp = _mpki_pair(data_addresses, data_writes, l1, instructions)
        data_lru.append(dlru)
        data_adp.append(dadp)

    result = ExperimentResult(
        experiment="sec46",
        description="Adaptive replacement at the L1 level "
        "(average MPKI, lower is better)",
        headers=["cache", "LRU avg MPKI", "Adaptive avg MPKI",
                 "reduction %"],
    )
    result.add_row(
        "L1 instruction",
        arithmetic_mean(inst_lru),
        arithmetic_mean(inst_adp),
        percent_reduction(arithmetic_mean(inst_lru), arithmetic_mean(inst_adp)),
    )
    result.add_row(
        "L1 data",
        arithmetic_mean(data_lru),
        arithmetic_mean(data_adp),
        percent_reduction(arithmetic_mean(data_lru), arithmetic_mean(data_adp)),
    )
    result.add_note(
        "Paper: ~12% I-MPKI reduction, <1% D-MPKI reduction, neither "
        "worth meaningful performance (<0.1%) on the OoO core."
    )
    return result


if __name__ == "__main__":
    print(run().render())
