"""Appendix: the 2x worst-case miss bound, checked empirically.

The paper proves the counter-based adaptive policy never suffers more
than twice the misses of the better component, per set. This experiment
hammers the bound with the adversarial phase-alternating trace (built
to defeat any fixed component) and with random traces, and reports the
worst observed per-set ratio.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cache.config import CacheConfig
from repro.core.theory import adversarial_trace, check_miss_bound
from repro.experiments.base import ExperimentResult


def run(
    config: Optional[CacheConfig] = None,
    seeds: int = 5,
    trace_length: int = 20_000,
) -> ExperimentResult:
    """Check the bound on adversarial and random block traces."""
    config = config or CacheConfig(size_bytes=8 * 1024, ways=8, line_bytes=64)

    result = ExperimentResult(
        experiment="theory",
        description="Empirical check of the Appendix's 2x miss bound "
        "(counter-based selector, full tags)",
        headers=["trace", "worst per-set ratio", "bound holds"],
    )

    trace = adversarial_trace(
        ways=config.ways,
        phase_length=trace_length // 8,
        phases=8,
        num_sets=config.num_sets,
    )
    report = check_miss_bound(trace, config)
    result.add_row("adversarial phase-alternating", report.worst_ratio(),
                   report.holds())

    for seed in range(seeds):
        rng = random.Random(seed)
        universe = 4 * config.num_lines
        blocks = [rng.randrange(universe) for _ in range(trace_length)]
        report = check_miss_bound(blocks, config)
        result.add_row(f"uniform random (seed {seed})", report.worst_ratio(),
                       report.holds())

    for seed in range(seeds):
        rng = random.Random(1000 + seed)
        blocks = []
        block = 0
        for _ in range(trace_length):
            if rng.random() < 0.1:
                block = rng.randrange(4 * config.num_lines)
            blocks.append(block)
            if rng.random() < 0.5:
                block = (block + 1) % (4 * config.num_lines)
        report = check_miss_bound(blocks, config)
        result.add_row(f"sequential bursts (seed {seed})",
                       report.worst_ratio(), report.holds())

    result.add_note(
        "Ratios are adaptive misses / (best component misses + 2*ways "
        "warm-up slack) per set; the Appendix guarantees <= 2."
    )
    return result


if __name__ == "__main__":
    print(run().render())
