"""Section 3.2: SRAM storage requirements.

This experiment is exact arithmetic (no simulation): it regenerates the
paper's accounting of cache storage for the 512 KB 8-way baseline — the
544 KB conventional total, the 598 KB (+9.9%) full-tag adaptive cache,
the 566 KB (+4.0%) 8-bit partial-tag version, the 2.1% overhead at
128-byte lines, the 9/10-way alternatives (+12.5%/+25%), and the SBAR
overheads of Section 4.7 (0.16% and 0.09%).
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.overhead import StorageModel
from repro.experiments.base import ExperimentResult


def run(
    size_bytes: int = 512 * 1024,
    ways: int = 8,
    num_leaders: int = 16,
) -> ExperimentResult:
    """Regenerate the Section 3.2 storage table."""
    config = CacheConfig(size_bytes=size_bytes, ways=ways, line_bytes=64)
    model = StorageModel(config)
    config128 = CacheConfig(size_bytes=size_bytes, ways=ways, line_bytes=128)
    model128 = StorageModel(config128)

    base = model.conventional_total_kb()
    result = ExperimentResult(
        experiment="storage",
        description=f"SRAM storage accounting for a {size_bytes // 1024}KB "
        f"{ways}-way cache (Section 3.2)",
        headers=["configuration", "total KB", "overhead %"],
    )
    result.add_row("conventional (data+tags+state)", base, 0.0)
    result.add_row(
        "adaptive, full tags",
        model.adaptive_total_kb(),
        model.adaptive_overhead_percent(),
    )
    result.add_row(
        "adaptive, 8-bit partial tags",
        model.adaptive_total_kb(8),
        model.adaptive_overhead_percent(8),
    )
    result.add_row(
        "adaptive, 8-bit tags, 128B lines",
        model128.adaptive_total_kb(8),
        model128.adaptive_overhead_percent(8),
    )
    nine = StorageModel(config.scaled(
        size_bytes=size_bytes // ways * (ways + 1), ways=ways + 1
    ))
    ten = StorageModel(config.scaled(
        size_bytes=size_bytes // ways * (ways + 2), ways=ways + 2
    ))
    result.add_row(
        f"conventional {ways + 1}-way "
        f"({size_bytes // ways * (ways + 1) // 1024}KB data)",
        nine.conventional_total_kb(),
        100.0 * (nine.conventional_total_kb() - base) / base,
    )
    result.add_row(
        f"conventional {ways + 2}-way "
        f"({size_bytes // ways * (ways + 2) // 1024}KB data)",
        ten.conventional_total_kb(),
        100.0 * (ten.conventional_total_kb() - base) / base,
    )
    result.add_row(
        f"SBAR, {num_leaders} leaders, full tags",
        model.sbar_total_kb(num_leaders),
        model.sbar_overhead_percent(num_leaders),
    )
    result.add_row(
        f"SBAR, {num_leaders} leaders, 8-bit tags",
        model.sbar_total_kb(num_leaders, 8),
        model.sbar_overhead_percent(num_leaders, 8),
    )
    result.add_note(
        "Paper (512KB, 64B lines): 544KB conventional; 598KB (+9.9%) "
        "full-tag adaptive; 566KB (+4.0%) 8-bit partial; 2.1% at 128B "
        "lines; 612KB/680KB (+12.5%/+25%) for 9/10-way; SBAR 0.16%/0.09%."
    )
    return result


if __name__ == "__main__":
    print(run().render(float_digits=2))
