"""Experiment drivers, one per paper table/figure.

Each module exposes ``run(setup=None, ...) -> ExperimentResult``; the
result renders the same rows/series the paper reports. ``repro-experiments``
(see :mod:`repro.experiments.cli`) runs them from the command line.

Index (see DESIGN.md Section 4 for the full mapping):

========  ==================================================
fig3      L2 MPKI per benchmark, adaptive vs LRU vs LFU
fig4      CPI per benchmark, adaptive vs LRU vs LFU
fig5      partial-tag width sweep (MPKI/CPI vs full tags)
fig6      adaptive vs larger conventional caches
fig7      per-set policy-choice maps (ammp, mgrid)
fig8      FIFO/MRU adaptivity
fig9      benefit vs associativity
fig10     benefit vs store-buffer capacity
sec44     five-policy adaptivity
sec46     adaptivity at the L1 level
sec47     SBAR-like set sampling
storage   Section 3.2 SRAM accounting
theory    Appendix 2x miss bound, empirically
========  ==================================================
"""

from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    build_l2_policy,
    make_setup,
)

__all__ = [
    "ExperimentResult",
    "Setup",
    "WorkloadCache",
    "build_l2_policy",
    "make_setup",
]
