"""Figure 6: partially-tagged adaptivity vs simply building a bigger cache.

Paper result: the adaptive cache (+4.0% SRAM with 8-bit partial tags)
outperforms conventional LRU caches grown to 9 ways (+12.5% storage)
and even 10 ways (+25% storage) — beating the 10-way 640 KB cache by
2.8% average CPI. Using the resources intelligently beats using more of
them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.cache.overhead import StorageModel
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
)


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Reproduce Figure 6's CPI comparison across storage budgets."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))

    base_l2 = setup.l2
    nine_way = base_l2.scaled(
        size_bytes=base_l2.size_bytes // base_l2.ways * 9, ways=9
    )
    ten_way = base_l2.scaled(
        size_bytes=base_l2.size_bytes // base_l2.ways * 10, ways=10
    )
    storage = StorageModel(base_l2)
    configurations = [
        ("Adaptive (full tags)",
         {"policy_kind": "adaptive"}, base_l2,
         storage.adaptive_overhead_percent()),
        ("Adaptive (8-bit tags)",
         {"policy_kind": "adaptive", "partial_bits": 8}, base_l2,
         storage.adaptive_overhead_percent(8)),
        (f"LRU ({base_l2.ways}-way)", {"policy_kind": "lru"}, base_l2, 0.0),
        ("LRU (9-way, +12.5% data)", {"policy_kind": "lru"}, nine_way, 12.5),
        ("LRU (10-way, +25% data)", {"policy_kind": "lru"}, ten_way, 25.0),
    ]

    result = ExperimentResult(
        experiment="fig6",
        description="Average CPI: adaptive replacement vs larger "
        "conventional caches (lower is better)",
        headers=["configuration", "avg CPI", "storage overhead %"],
    )
    averages = {}
    for label, kwargs, l2_config, overhead in configurations:
        cpis = [
            cache.simulate_policy(name, l2_config=l2_config, **kwargs).cpi
            for name in workloads
        ]
        averages[label] = arithmetic_mean(cpis)
        result.add_row(label, averages[label], overhead)

    adaptive8 = averages["Adaptive (8-bit tags)"]
    ten = averages["LRU (10-way, +25% data)"]
    result.add_note(
        "Adaptive (8-bit tags) vs 10-way LRU: "
        f"{percent_reduction(ten, adaptive8):.1f}% better CPI at less than "
        "one sixth of the storage overhead (paper: 2.8% better, 4.0% vs 25%)"
    )
    return result


if __name__ == "__main__":
    print(run().render())
