"""Figure 4: CPI per benchmark — Adaptive vs LFU vs LRU.

Paper result: adaptive caching reduces the primary set's average CPI by
12.9% vs LRU; ten executions improve 4-60%; the worst degradation on
any of the 100 programs is 1.2% (unepic).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import (
    arithmetic_mean,
    percent_reduction,
    summarize_policy_metric,
)
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
    run_policy_sweep,
)
from repro.experiments.fig3_mpki import POLICY_SPECS


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    primary_only: bool = True,
) -> ExperimentResult:
    """Reproduce Figure 4's per-benchmark CPI series."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only))
    sweep = run_policy_sweep(cache, workloads, POLICY_SPECS)

    result = ExperimentResult(
        experiment="fig4",
        description="Cycles per instruction (lower is better)",
        headers=["benchmark"] + list(POLICY_SPECS),
    )
    per_workload = {}
    for name in workloads:
        cpis = {p: sweep[name][p].cpi for p in POLICY_SPECS}
        per_workload[name] = cpis
        result.add_row(name, *(cpis[p] for p in POLICY_SPECS))
    averages = {
        p: arithmetic_mean([per_workload[name][p] for name in workloads])
        for p in POLICY_SPECS
    }
    result.add_row("Average", *(averages[p] for p in POLICY_SPECS))

    summary = summarize_policy_metric(per_workload, "LRU", "Adaptive")
    result.add_note(
        "Adaptive improves average CPI vs LRU by "
        f"{percent_reduction(averages['LRU'], averages['Adaptive']):.1f}% "
        "(paper: 12.9% on the primary set)"
    )
    result.add_note(
        "Worst per-benchmark CPI degradation: "
        f"{summary['worst_degradation_percent']:.2f}% (paper: 1.2%, unepic)"
    )
    return result


if __name__ == "__main__":
    print(run().render())
