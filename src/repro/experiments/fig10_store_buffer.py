"""Figure 10: adaptive benefit vs store buffer capacity.

Paper result: part of the adaptive benefit comes from store-buffer
stalls, so growing the buffer (4 -> 256 entries) shrinks the benefit —
but gracefully: more than half remains even at an unrealistic 256
entries.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
)

BUFFER_SIZES = (4, 8, 16, 32, 64, 128, 256)


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    buffer_sizes: Sequence[int] = BUFFER_SIZES,
) -> ExperimentResult:
    """Reproduce Figure 10's benefit-vs-store-buffer series."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))

    result = ExperimentResult(
        experiment="fig10",
        description="Average CPI and adaptive benefit vs store-buffer "
        "entries",
        headers=["entries", "LRU avg CPI", "Adaptive avg CPI",
                 "improvement %"],
    )
    improvements = []
    for entries in buffer_sizes:
        processor = setup.processor.scaled(store_buffer_entries=entries)
        lru_cpis = [
            cache.simulate_policy(name, "lru", processor=processor).cpi
            for name in workloads
        ]
        adp_cpis = [
            cache.simulate_policy(name, "adaptive", processor=processor).cpi
            for name in workloads
        ]
        lru_avg = arithmetic_mean(lru_cpis)
        adp_avg = arithmetic_mean(adp_cpis)
        improvement = percent_reduction(lru_avg, adp_avg)
        improvements.append(improvement)
        result.add_row(entries, lru_avg, adp_avg, improvement)
    if improvements[0] > 0:
        result.add_note(
            "Benefit retained at the largest buffer: "
            f"{100.0 * improvements[-1] / improvements[0]:.0f}% of the "
            "4-entry benefit (paper: more than half remains at 256 entries)"
        )
    result.add_note(
        "Fidelity note: the paper's benefit *decays* with buffer size "
        "because its adaptive winners are store-stall-heavy; our "
        "synthetic winners are load-dominated, so the benefit persists "
        "roughly flat instead (the paper's claim that more than half "
        "survives at 256 entries holds a fortiori). Per-workload, the "
        "store-side mechanism is present: loop workloads like art show "
        "their largest improvement at 4 entries."
    )
    return result


if __name__ == "__main__":
    print(run().render())
