"""Extension experiment: the online KV engine vs fixed policies.

Replays key-stream workloads (Zipf skew, hot-set + scan, LRU-hostile
loops, phase changes, and a bridged simulator trace) through the online
engine in each of its modes — per-shard adaptive, SBAR-style sampled,
and fixed policies — plus :func:`functools.lru_cache` as the standard-
library baseline, reporting hit rate and throughput (ops/sec). This is
the serving-shaped analogue of the paper's Figure 3 sweep: the claim
under test is that per-shard adaptation tracks the better component on
every regime, including the phase-change workload where each fixed
policy has a losing phase.

Hit counts are deterministic (fingerprints and generators are seeded);
throughput naturally varies run to run. With an active sweep
checkpoint, each completed (workload, engine) cell is persisted and
restored on resume.

With ``--snapshot-dir`` the adaptive cells additionally run through
the crash-safe :class:`~repro.online.persistence.PersistentKVCache`
(periodic snapshots + write-ahead log); :func:`persistent_replay` is
also the engine behind ``repro-experiments recover``, which rebuilds
a killed run from its persisted state and finishes the stream with
byte-identical stats.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments.base import ExperimentResult, Setup, make_setup
from repro.online.engine import AdaptiveKVCache
from repro.workloads.keystreams import (
    keys_from_trace,
    loop_keys,
    phase_change_keys,
    scan_keys,
    zipf_keys,
)
from repro.workloads.suite import build_workload

#: Engine specs compared by the experiment. ``lru_cache`` is the
#: standard library's memoizer, everything else an AdaptiveKVCache mode.
DEFAULT_ENGINES = ("adaptive", "sampled", "lru", "lfu", "fifo", "lru_cache")

#: The phase-change workload the acceptance check runs on.
PHASE_WORKLOAD = "phase-zipf"

DEFAULT_WORKLOADS = ("zipf", "scan-hot", "loop", PHASE_WORKLOAD, "trace-ammp")

#: Fixed policies the adaptive modes are judged against.
FIXED_BASELINES = ("lru", "lfu", "fifo")

NUM_SHARDS = 8

#: Stream-coordinate sidecar written into a persistence directory so
#: ``repro-experiments recover`` can resume the exact same key stream.
STREAM_FILE = "STREAM.json"

#: Persistence cadences for :func:`persistent_replay` — frequent enough
#: that a mini-scale kill-and-recover smoke crosses several generations.
SNAPSHOT_EVERY = 2_000
WAL_FLUSH_OPS = 16


def build_key_stream(
    name: str, capacity: int, setup: Setup, seed: int = 0
) -> List[str]:
    """The named key-stream workload, sized relative to ``capacity``.

    Args:
        name: one of :data:`DEFAULT_WORKLOADS`.
        capacity: engine entry capacity the stream is scaled against.
        setup: experiment scale (trace length; geometry for the
            ``trace-*`` bridge workloads).
        seed: generator seed.
    """
    accesses = setup.accesses
    if name == "zipf":
        return zipf_keys(4 * capacity, accesses, seed=seed)
    if name == "scan-hot":
        return scan_keys(
            capacity // 2, 8 * capacity, accesses,
            hot_fraction=0.6, seed=seed,
        )
    if name == "loop":
        return loop_keys(capacity + capacity // 4, accesses)
    if name == PHASE_WORKLOAD:
        return phase_change_keys(
            2 * capacity, capacity + capacity // 4, accesses,
            phases=6, seed=seed,
        )
    if name.startswith("trace-"):
        trace = build_workload(
            name[len("trace-"):], setup.l2, accesses=accesses
        )
        return keys_from_trace(trace)
    raise ValueError(f"unknown key-stream workload {name!r}")


def replay(engine: str, keys: Sequence[str], capacity: int,
           seed: int = 0) -> Dict[str, float]:
    """Replay ``keys`` through one engine; returns the metrics cell.

    Every access is a ``get_or_compute`` with a trivial loader, so hit
    counts measure retention quality and ops/sec measures the engine's
    full locked get-miss-fill path.
    """
    start = time.perf_counter()
    if engine == "lru_cache":
        loader = lru_cache(maxsize=capacity)(lambda key: key)
        for key in keys:
            loader(key)
        info = loader.cache_info()
        hits, misses, switches = info.hits, info.misses, 0
    else:
        cache = AdaptiveKVCache(
            capacity_entries=capacity,
            num_shards=NUM_SHARDS,
            policy=engine,
            seed=seed,
        )
        for key in keys:
            cache.get_or_compute(key, lambda k: k)
        stats = cache.stats()
        if stats.hits + stats.misses != stats.gets != len(keys):
            raise RuntimeError(
                f"inconsistent stats from {engine}: {stats.hits} hits + "
                f"{stats.misses} misses != {stats.gets} gets"
            )
        hits, misses, switches = stats.hits, stats.misses, stats.policy_switches
    elapsed = time.perf_counter() - start
    ops = len(keys) / elapsed if elapsed > 0 else 0.0
    return {
        "hits": hits,
        "misses": misses,
        "hit_pct": 100.0 * hits / len(keys) if keys else 0.0,
        "ops_per_sec": ops,
        "switches": switches,
    }


def persistent_replay(
    directory: str,
    workload: str = "zipf",
    setup: Optional[Setup] = None,
    seed: int = 0,
    snapshot_every: int = SNAPSHOT_EVERY,
    wal_flush_ops: int = WAL_FLUSH_OPS,
    live: bool = False,
):
    """Crash-safe adaptive replay of one key stream; resumes after kills.

    A fresh ``directory`` gets a persistent adaptive engine, a
    ``STREAM.json`` sidecar recording the stream coordinates, and a
    full replay. A directory holding prior state is *recovered*
    instead (newest intact snapshot + WAL replay, torn tails
    truncated) and the deterministic stream resumes at the recovered
    operation count — every access is a ``get_or_compute``, so
    ``stats().gets`` is exactly the stream position. Finishing after a
    SIGKILL therefore yields stats (and a
    :func:`~repro.online.persistence.kv_stats_digest`) identical to an
    uninterrupted run — the contract the kill-and-recover smoke checks.

    Args:
        directory: persistence directory (snapshots, WALs, manifest,
            stream sidecar). Recorded coordinates override the
            ``workload``/``setup``/``seed`` arguments on resume.
        workload: key-stream name (see :func:`build_key_stream`).
        setup: experiment scale; default ``scaled``.
        seed: stream and engine seed.
        snapshot_every: operations between automatic snapshots.
        wal_flush_ops: buffered operations per WAL flush.
        live: recover through
            :class:`~repro.online.liverecovery.LiveRecoveringKVCache`
            instead of stop-the-world — the stream resumes *while* the
            WAL replays in chunks (an access for a still-replaying
            shard steps replay until its shard is promoted, keeping
            every access applied and logged), and the final digest
            must still equal the uninterrupted run's.

    Returns:
        The final :class:`~repro.online.stats.KVCacheStats`.
    """
    from repro.online.liverecovery import LiveRecoveringKVCache
    from repro.online.persistence import PersistentKVCache, recover
    from repro.utils.atomicio import atomic_write_text

    meta_path = os.path.join(directory, STREAM_FILE)
    recovering_live = False
    if os.path.exists(meta_path):
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        workload, seed = meta["workload"], int(meta["seed"])
        setup = make_setup(meta["scale"], accesses=int(meta["accesses"]))
        if live:
            cache = LiveRecoveringKVCache(
                directory,
                snapshot_every=snapshot_every,
                wal_flush_ops=wal_flush_ops,
            )
            recovering_live = cache.recovering
        else:
            cache = recover(
                directory,
                snapshot_every=snapshot_every,
                wal_flush_ops=wal_flush_ops,
            )
    else:
        setup = setup or make_setup()
        os.makedirs(directory, exist_ok=True)
        atomic_write_text(
            meta_path,
            json.dumps({
                "workload": workload,
                "scale": setup.name,
                "accesses": setup.accesses,
                "seed": seed,
            }),
        )
        cache = PersistentKVCache(
            AdaptiveKVCache(
                capacity_entries=setup.l2.num_lines,
                num_shards=NUM_SHARDS,
                policy="adaptive",
                seed=seed,
            ),
            directory,
            snapshot_every=snapshot_every,
            wal_flush_ops=wal_flush_ops,
        )
    capacity = setup.l2.num_lines
    keys = build_key_stream(workload, capacity, setup, seed=seed)
    if recovering_live:
        # The stream's resume position is where *finished* replay will
        # land: every record here is one logged access.
        remaining = (cache.recovery.total_records
                     - cache.recovery.applied_records)
        position = cache.stats().gets + remaining
        for key in keys[position:]:
            # Serve through the recovering cache: ready shards answer
            # (and log) immediately. A key on a still-replaying shard
            # would be served stale or refused *without logging*, so
            # step replay until its shard is promoted — exact stream
            # order, every access applied and logged.
            while not cache.key_serving(key):
                cache.step()
            cache.get_or_compute(key, lambda k: k)
        cache.finish()  # drain any replay the stream did not force
    else:
        for key in keys[cache.stats().gets:]:
            cache.get_or_compute(key, lambda k: k)
    cache.close()
    return cache.stats()


def _persistent_cell(
    directory: str, workload: str, setup: Setup, seed: int
) -> Dict[str, float]:
    """One adaptive metrics cell served through the persistent wrapper.

    Hit counts are identical to the plain :func:`replay` cell — the
    wrapper only logs, it never perturbs replacement decisions —
    while ops/sec now includes the WAL and snapshot overhead.
    """
    start = time.perf_counter()
    stats = persistent_replay(
        directory, workload=workload, setup=setup, seed=seed
    )
    elapsed = time.perf_counter() - start
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_pct": 100.0 * stats.hits / stats.gets if stats.gets else 0.0,
        "ops_per_sec": stats.gets / elapsed if elapsed > 0 else 0.0,
        "switches": stats.policy_switches,
    }


def _cell(setup: Setup, workload: str, engine: str, compute) -> Dict[str, float]:
    """Compute one metrics cell, via the active sweep checkpoint if any."""
    entry = checkpoint_mod.active()
    if entry is None:
        return compute()
    ckpt, experiment = entry
    key = ckpt.cell_key(
        "cell", experiment, setup.name, setup.accesses, workload, engine
    )
    cached = ckpt.get(key)
    if cached is not None:
        return cached
    cell = compute()
    ckpt.put(key, cell)
    return cell


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    seed: int = 0,
    snapshot_dir: Optional[str] = None,
) -> ExperimentResult:
    """Hit rate and throughput of every (key stream, engine) pair.

    Args:
        setup: experiment scale; capacity is the L2's line count, so
            the engine holds as many entries as the simulated cache
            held blocks.
        workloads: key-stream names (default: all of
            :data:`DEFAULT_WORKLOADS`).
        engines: engine specs (default: :data:`DEFAULT_ENGINES`).
        seed: base seed for generators and stochastic components.
        snapshot_dir: when set, each adaptive cell runs through the
            crash-safe persistent wrapper, its state living under
            ``snapshot_dir/<workload>`` (and resuming from it — a
            killed run picks up where the WAL ends).
    """
    setup = setup or make_setup()
    workloads = list(workloads or DEFAULT_WORKLOADS)
    engines = list(engines)
    capacity = setup.l2.num_lines

    result = ExperimentResult(
        experiment="ext-online",
        description="online KV engine: adaptive vs fixed policies vs "
        f"functools.lru_cache ({capacity} entries, {NUM_SHARDS} shards)",
        headers=["workload", "engine", "hits", "misses", "hit %",
                 "ops/sec", "switches"],
    )
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in workloads:
        keys = build_key_stream(workload, capacity, setup, seed=seed)
        table[workload] = {}
        for engine in engines:
            if engine == "adaptive" and snapshot_dir is not None:
                compute = lambda w=workload: _persistent_cell(  # noqa: E731
                    os.path.join(snapshot_dir, w), w, setup, seed
                )
            else:
                compute = lambda e=engine: replay(  # noqa: E731
                    e, keys, capacity, seed=seed
                )
            cell = _cell(setup, workload, engine, compute)
            table[workload][engine] = cell
            result.add_row(
                workload, engine, cell["hits"], cell["misses"],
                cell["hit_pct"], cell["ops_per_sec"], cell["switches"],
            )

    for workload, cells in table.items():
        fixed = {e: cells[e]["hit_pct"] for e in FIXED_BASELINES if e in cells}
        if not fixed or "adaptive" not in cells:
            continue
        best_name = max(fixed, key=fixed.get)
        worst = min(fixed.values())
        adaptive = cells["adaptive"]["hit_pct"]
        verdict = "matches/beats" if adaptive >= fixed[best_name] - 0.5 else "trails"
        result.add_note(
            f"{workload}: adaptive {adaptive:.1f}% {verdict} best fixed "
            f"({best_name} {fixed[best_name]:.1f}%; worst fixed {worst:.1f}%)."
        )
    return result


def adaptive_vs_best_fixed(result: ExperimentResult,
                           workload: str = PHASE_WORKLOAD) -> float:
    """Adaptive hit %% minus the best fixed policy's, for ``workload``.

    Positive (or mildly negative, within noise) means the adaptive
    engine matched or beat the better fixed policy — the acceptance
    condition for the phase-change workload.
    """
    rows = [r for r in result.rows if r[0] == workload]
    by_engine = {r[1]: r[4] for r in rows}
    best_fixed = max(
        value for engine, value in by_engine.items()
        if engine in FIXED_BASELINES
    )
    return by_engine["adaptive"] - best_fixed


if __name__ == "__main__":
    print(run().render())
