"""Section 4.4: generalized adaptivity over five policies.

Paper result: adapting over LRU+LFU+FIFO+MRU+Random (an unrealistically
expensive configuration — five parallel tag arrays) is *not* clearly
superior to plain LRU/LFU adaptivity: some benchmarks gain up to 10%
CPI, others lose as much, and the cumulative CPI is virtually
identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_reduction
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    make_setup,
    run_policy_sweep,
)

POLICY_SPECS = {
    "Adaptive(LRU+LFU)": {"policy_kind": "adaptive",
                          "components": ("lru", "lfu")},
    "Adaptive(5 policies)": {"policy_kind": "adaptive5"},
    "LRU": {"policy_kind": "lru"},
}


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Reproduce the five-policy comparison of Section 4.4."""
    setup = setup or make_setup()
    cache = WorkloadCache(setup)
    workloads = list(workloads or setup.workloads(primary_only=True))
    sweep = run_policy_sweep(cache, workloads, POLICY_SPECS)

    result = ExperimentResult(
        experiment="sec44",
        description="Five-policy adaptivity vs LRU/LFU adaptivity "
        "(CPI, lower is better)",
        headers=["benchmark"] + list(POLICY_SPECS),
    )
    for name in workloads:
        result.add_row(name, *(sweep[name][p].cpi for p in POLICY_SPECS))
    averages = {
        p: arithmetic_mean([sweep[name][p].cpi for name in workloads])
        for p in POLICY_SPECS
    }
    result.add_row("Average", *(averages[p] for p in POLICY_SPECS))
    result.add_note(
        "Five-policy vs two-policy average CPI difference: "
        f"{percent_reduction(averages['Adaptive(LRU+LFU)'], averages['Adaptive(5 policies)']):+.2f}% "
        "(paper: virtually identical)"
    )
    return result


if __name__ == "__main__":
    print(run().render())
