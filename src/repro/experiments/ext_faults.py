"""Extension experiment: graceful degradation under injected faults.

The paper argues (Sections 3.1-3.2) that the adaptive machinery's extra
state is performance-only: shadow tags, miss histories and selector
counters steer *which* component policy is imitated, but the real
cache's tag/data arrays decide *correctness*, and partial tags already
tolerate aliasing by design. This experiment makes that robustness
claim measurable: it arms a :class:`~repro.faults.FaultInjector` on the
adaptive L2 at increasing fault rates and reports the MPKI degradation,
while asserting the invariants that faults must never violate:

* every run completes — a fault is never worse than a crash;
* cache statistics stay internally consistent
  (``hits + misses == accesses``);
* an *armed but quiet* injector (rate 0) is bit-identical to a
  fault-free run — the hooks themselves perturb nothing;
* a conventional cache (LRU) carries no auxiliary state, so the fault
  model cannot touch it at all: demand hits and misses are trivially
  identical to a fault-free run, anchoring the comparison column.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import arithmetic_mean
from repro.cache.cache import SetAssociativeCache
from repro.cpu.timing import TimingResult, simulate
from repro.experiments.base import (
    ExperimentResult,
    Setup,
    WorkloadCache,
    build_l2_policy,
    make_setup,
)
from repro.faults import FaultInjector, FaultLog, FaultPlan

DEFAULT_WORKLOADS = ["lucas", "art-1", "ammp", "mcf", "unepic", "swim"]

DEFAULT_RATES: Tuple[float, ...] = (0.001, 0.01, 0.05)


def _simulate_adaptive(
    cache_ws: WorkloadCache,
    name: str,
    plan: Optional[FaultPlan],
) -> Tuple[TimingResult, Optional[FaultLog]]:
    """One adaptive run, optionally under a fault plan, with invariants."""
    setup = cache_ws.setup
    policy = build_l2_policy(setup.l2, "adaptive")
    injector = FaultInjector(plan).arm(policy) if plan is not None else None
    l2 = SetAssociativeCache(setup.l2, policy)
    result = simulate(cache_ws.compiled(name), l2, setup.processor)
    stats = l2.stats
    if stats.hits + stats.misses != stats.accesses:
        raise RuntimeError(
            f"fault injection broke statistics consistency on {name}: "
            f"{stats.hits} hits + {stats.misses} misses != "
            f"{stats.accesses} accesses"
        )
    if stats.evictions > stats.misses:
        raise RuntimeError(
            f"fault injection broke eviction accounting on {name}: "
            f"{stats.evictions} evictions > {stats.misses} misses"
        )
    return result, (injector.log if injector is not None else None)


def run(
    setup: Optional[Setup] = None,
    workloads: Optional[Sequence[str]] = None,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
) -> ExperimentResult:
    """MPKI degradation of the adaptive L2 versus injected fault rate.

    Args:
        setup: experiment scale (default: ``scaled``).
        workloads: suite workload names (default: a locality-diverse
            six-program slice of the primary set).
        rates: per-access fault probabilities to sweep; each applies
            uniformly to shadow tags, miss histories and the selector.
        seed: base seed for the injectors' corruption streams.
    """
    setup = setup or make_setup()
    cache_ws = WorkloadCache(setup)
    workloads = list(workloads or DEFAULT_WORKLOADS)
    rates = list(rates)

    headers = (
        ["benchmark", "LRU MPKI", "adaptive MPKI", "armed rate 0"]
        + [f"rate {rate:g}" for rate in rates]
        + ["worst Δ%", "faults"]
    )
    result = ExperimentResult(
        experiment="ext-faults",
        description="Adaptive L2 MPKI under fault injection into shadow "
        "tags, miss histories and the selector (graceful-degradation "
        "check; LRU has no auxiliary state and anchors the comparison)",
        headers=headers,
    )

    per_rate_deltas: List[List[float]] = [[] for _ in rates]
    worst_deltas: List[float] = []
    for index, name in enumerate(workloads):
        lru = cache_ws.simulate_policy(name, "lru")
        baseline, _ = _simulate_adaptive(cache_ws, name, None)
        armed_quiet, _ = _simulate_adaptive(
            cache_ws, name, FaultPlan.uniform(0.0, seed=seed + index)
        )
        if armed_quiet.l2_misses != baseline.l2_misses:
            raise RuntimeError(
                f"an armed-but-quiet injector perturbed {name}: "
                f"{armed_quiet.l2_misses} != {baseline.l2_misses} misses"
            )
        faulted: List[TimingResult] = []
        injected = 0
        for rate_index, rate in enumerate(rates):
            plan = FaultPlan.uniform(
                rate, seed=seed + 1000 * (rate_index + 1) + index
            )
            run_result, log = _simulate_adaptive(cache_ws, name, plan)
            faulted.append(run_result)
            injected += log.injected()
            delta = _delta_percent(baseline.mpki, run_result.mpki)
            per_rate_deltas[rate_index].append(delta)
        worst = max(
            (_delta_percent(baseline.mpki, f.mpki) for f in faulted),
            default=0.0,
        )
        worst_deltas.append(worst)
        result.add_row(
            name, lru.mpki, baseline.mpki, armed_quiet.mpki,
            *[f.mpki for f in faulted], worst, injected,
        )

    result.add_row(
        "Average",
        arithmetic_mean(result.column("LRU MPKI")[: len(workloads)]),
        arithmetic_mean(result.column("adaptive MPKI")[: len(workloads)]),
        arithmetic_mean(result.column("armed rate 0")[: len(workloads)]),
        *[arithmetic_mean(result.column(f"rate {rate:g}")[: len(workloads)])
          for rate in rates],
        max(worst_deltas, default=0.0),
        sum(result.column("faults")[: len(workloads)]),
    )
    result.add_note(
        "Invariants held on every faulted run: simulation completed "
        "(a fault is never worse than a crash), hits + misses == "
        "accesses, and an armed injector at rate 0 was bit-identical "
        "to the fault-free baseline. Hit correctness is structural: "
        "faults only touch performance-only auxiliary state, never the "
        "real tag/data arrays."
    )
    if rates:
        result.add_note(
            "Mean MPKI delta vs fault-free adaptive: "
            + ", ".join(
                f"{rate:g} -> {arithmetic_mean(deltas):+.2f}%"
                for rate, deltas in zip(rates, per_rate_deltas)
            )
            + f"; worst single-workload delta {max(worst_deltas):+.2f}%."
        )
    return result


def _delta_percent(baseline: float, value: float) -> float:
    """Percentage change of ``value`` over ``baseline`` (0 when flat)."""
    if baseline == 0.0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


if __name__ == "__main__":
    print(run().render())
