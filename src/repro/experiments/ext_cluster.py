"""Extension experiment: the replicated cluster under failures.

Replays a Zipf key stream (read-through ``get_or_compute``) against
:class:`~repro.cluster.cache.ClusterKVCache` at replication factors 1,
2 and 3 — once healthy, and once with one member SIGKILL-crashed
mid-stream and recovered at the three-quarter mark. The serving-shaped
claim under test: replication plus hedged reads hold hit rate and
availability through a member crash (at replication >= 2 the crash
is barely visible to clients), while replication factor trades
throughput for that resilience — the cluster analogue of the paper's
workload-shaping story, where the *workload* here is the failure
pattern.

Total entry capacity is held fixed across replication factors (each
member gets ``capacity / num_nodes``), so hit-rate differences come
from replication and failures, not from extra memory.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.cluster.cache import ClusterKVCache, WriteQuorumError
from repro.cluster.latency import LatencyModel
from repro.experiments.base import ExperimentResult, Setup, make_setup
from repro.experiments import checkpoint as checkpoint_mod
from repro.utils.rng import DeterministicRNG
from repro.workloads.keystreams import zipf_keys

#: Cluster members in every cell.
NUM_NODES = 5

#: Replication factors swept.
REPLICATION_FACTORS = (1, 2, 3)

#: Failure patterns swept: healthy, and one mid-stream member crash
#: (recovered at the 3/4 mark).
CHAOS_MODES = ("none", "kill")

#: Streams longer than this are truncated: every access fans out to
#: up to ``replication`` members, so cluster cells cost several times
#: an ext-online cell at the same length.
MAX_ACCESSES = 30_000


def _cluster(replication: int, capacity: int, seed: int) -> ClusterKVCache:
    """One experiment cluster: fixed total capacity, mild tail latency."""
    return ClusterKVCache(
        num_nodes=NUM_NODES,
        replication=replication,
        capacity_per_node=max(capacity // NUM_NODES, 8),
        seed=seed,
        hedge_after=0.01,
        latency_factory=lambda index: LatencyModel(
            base=0.001, spike=0.05,
            spike_rate=0.1 if index == NUM_NODES - 1 else 0.0,
            seed=seed + 7919 * index,
        ),
    )


def replay_cluster(
    replication: int,
    chaos: str,
    keys: Sequence[str],
    capacity: int,
    seed: int = 0,
) -> Dict[str, float]:
    """Replay ``keys`` through one cluster; returns the metrics cell.

    With ``chaos="kill"`` a seeded member is crashed at the stream's
    midpoint and recovered (empty, then refilled by peers) at the
    three-quarter mark — the client keeps issuing requests throughout.
    """
    cluster = _cluster(replication, capacity, seed)
    rng = DeterministicRNG(seed).fork(17)
    kill_at = len(keys) // 2 if chaos == "kill" else None
    recover_at = (3 * len(keys)) // 4 if chaos == "kill" else None
    start = time.perf_counter()
    for index, key in enumerate(keys):
        if index == kill_at:
            up = cluster.view.up_nodes()
            cluster.controller.kill(up[rng.choice_index(len(up))])
        elif index == recover_at:
            for node_id in cluster.view.node_ids():
                if cluster.view.status(node_id) == "down":
                    cluster.controller.recover(node_id)
        try:
            cluster.get_or_compute(key, lambda k: k)
        except WriteQuorumError:  # pragma: no cover - fills swallow it
            pass
    elapsed = time.perf_counter() - start
    stats = cluster.stats()
    cluster.close()
    return {
        "hits": stats.read_hits,
        "hit_pct": 100.0 * stats.read_hits / stats.reads
        if stats.reads else 0.0,
        "ops_per_sec": len(keys) / elapsed if elapsed > 0 else 0.0,
        "availability_pct": 100.0 * stats.availability,
        "hedged": stats.hedged_reads,
        "repairs": stats.read_repairs,
    }


def _cell(setup: Setup, replication: int, chaos: str, compute
          ) -> Dict[str, float]:
    """One metrics cell, via the active sweep checkpoint if any."""
    entry = checkpoint_mod.active()
    if entry is None:
        return compute()
    ckpt, experiment = entry
    key = ckpt.cell_key(
        "cell", experiment, setup.name, setup.accesses, replication, chaos
    )
    cached = ckpt.get(key)
    if cached is not None:
        return cached
    cell = compute()
    ckpt.put(key, cell)
    return cell


def run(
    setup: Optional[Setup] = None,
    replication_factors: Sequence[int] = REPLICATION_FACTORS,
    seed: int = 0,
) -> ExperimentResult:
    """Hit rate, throughput and availability per (replication, chaos).

    Args:
        setup: experiment scale; total capacity is the L2's line
            count, split evenly over the members. Stream length is
            capped at :data:`MAX_ACCESSES`.
        replication_factors: replication factors swept.
        seed: stream and cluster seed.
    """
    setup = setup or make_setup()
    capacity = setup.l2.num_lines
    accesses = min(setup.accesses, MAX_ACCESSES)
    keys = zipf_keys(4 * capacity, accesses, seed=seed)

    result = ExperimentResult(
        experiment="ext-cluster",
        description="replicated cache cluster under failures "
        f"({NUM_NODES} nodes, {capacity} total entries, "
        f"{accesses} accesses)",
        headers=["replication", "chaos", "hits", "hit %", "ops/sec",
                 "avail %", "hedged", "repairs"],
    )
    table: Dict[int, Dict[str, Dict[str, float]]] = {}
    for replication in replication_factors:
        table[replication] = {}
        for chaos in CHAOS_MODES:
            compute = lambda r=replication, c=chaos: replay_cluster(  # noqa: E731
                r, c, keys, capacity, seed=seed
            )
            cell = _cell(setup, replication, chaos, compute)
            table[replication][chaos] = cell
            result.add_row(
                replication, chaos, cell["hits"], cell["hit_pct"],
                cell["ops_per_sec"], cell["availability_pct"],
                cell["hedged"], cell["repairs"],
            )

    for replication, cells in table.items():
        if "none" not in cells or "kill" not in cells:
            continue
        drop = cells["none"]["hit_pct"] - cells["kill"]["hit_pct"]
        result.add_note(
            f"replication={replication}: a mid-stream member crash costs "
            f"{drop:.1f} hit-points "
            f"(availability {cells['kill']['availability_pct']:.2f}%, "
            f"{int(cells['kill']['hedged'])} hedged reads)."
        )
    return result


def crash_hit_cost(result: ExperimentResult, replication: int) -> float:
    """Hit-%% cost of the crash at one replication factor.

    The acceptance-shaped reading: at replication >= 2 the cost should
    be small (peers hold the crashed member's entries), while at
    replication = 1 the crash visibly dents the hit rate.
    """
    rows = [r for r in result.rows if r[0] == replication]
    by_chaos = {r[1]: r[3] for r in rows}
    return by_chaos["none"] - by_chaos["kill"]


if __name__ == "__main__":
    print(run().render())
