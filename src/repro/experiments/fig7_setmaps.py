"""Figure 7: time- and space-varying behaviour of ammp and mgrid.

Paper result: ammp starts with a per-set mix of LRU- and LFU-favourable
decisions, goes through a clearly LFU-dominant middle phase, and ends
LRU-dominant; mgrid begins LFU-favourable and fades to LRU at a
per-set-varying rate. The maps demonstrate why adaptivity can beat both
components: the best policy differs across sets and across time.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.setmap import collect_setmap
from repro.cache.cache import SetAssociativeCache
from repro.core.multi import make_adaptive
from repro.experiments.base import ExperimentResult, Setup, WorkloadCache, make_setup

LRU_COMPONENT = 0
LFU_COMPONENT = 1


def collect(name: str, setup: Optional[Setup] = None, samples: int = 12):
    """Build the Figure 7 map for one workload.

    Returns ``(SetMap, AdaptivePolicy)`` — the policy's shadow counters
    carry the per-set component-preference data the disagreement
    analysis uses.
    """
    setup = setup or make_setup()
    cache_ws = WorkloadCache(setup)
    trace = cache_ws.trace(name)
    policy = make_adaptive(setup.l2.num_sets, setup.l2.ways, ("lru", "lfu"))
    cache = SetAssociativeCache(setup.l2, policy)
    memory_references = trace.memory_access_count()
    sample_every = max(1, memory_references // samples)
    return collect_setmap(trace, cache, sample_every=sample_every), policy


def run(setup: Optional[Setup] = None, samples: int = 12) -> ExperimentResult:
    """Reproduce Figure 7: per-quantum LFU-decision fractions.

    The paper's figure is an image (black = LRU-majority set, white =
    LFU); the table reports the LFU fraction per time quantum, which
    captures the same phase structure numerically. Use :func:`collect`
    and ``SetMap.render()`` for the ASCII picture itself.
    """
    setup = setup or make_setup()
    result = ExperimentResult(
        experiment="fig7",
        description="Fraction of sets whose replacement decisions "
        "followed LFU, per time quantum (ammp/mgrid phase behaviour)",
        headers=["workload"] + [f"q{i}" for i in range(samples)],
    )
    for name in ("ammp", "mgrid"):
        setmap, policy = collect(name, setup, samples)
        fractions = [
            setmap.component_fraction(LFU_COMPONENT, sample=t)
            for t in range(min(samples, setmap.num_samples))
        ]
        fractions += [0.0] * (samples - len(fractions))
        result.add_row(name, *fractions)
        from repro.analysis.pressure import component_disagreement

        report = component_disagreement(
            policy.shadows[LRU_COMPONENT].per_set_misses,
            policy.shadows[LFU_COMPONENT].per_set_misses,
        )
        result.add_note(
            f"{name}: {report.prefer_first} sets prefer LRU, "
            f"{report.prefer_second} prefer LFU "
            f"(disagreement {report.disagreement:.2f}) — the per-set "
            "split that lets adaptivity beat both components at once."
        )
    result.add_note(
        "Paper: ammp mixes per set early, turns LFU-dominant mid-run, "
        "then LRU-dominant; mgrid starts LFU-favourable and fades to LRU."
    )
    return result


if __name__ == "__main__":
    print(run().render())
