"""Shared experiment infrastructure: setups, policy specs, caching.

The paper's evaluation runs 100M-instruction SimPoint samples against a
512 KB L2. A pure-Python reproduction of that exact scale takes hours,
so experiments default to a *scaled* configuration — a 64 KB L2 with
footprints scaled accordingly (workload recipes size themselves
relative to the cache) and ~60K memory references per workload. The
``paper`` setup restores Table 1's geometry for users with patience;
the ``mini`` setup further shrinks things for the benchmark harness.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.tables import render_table
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.core.multi import five_policy_adaptive, make_adaptive
from repro.core.partial import PartialTagScheme
from repro.core.sbar import SbarPolicy
from repro.cpu.config import ProcessorConfig
from repro.cpu.timing import CompiledWorkload, TimingResult, compile_workload, simulate
from repro.experiments import checkpoint as checkpoint_mod
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import make_policy
from repro.workloads.io import TraceFormatError, load_trace, save_trace
from repro.workloads.suite import build_workload, workload_names
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class Setup:
    """One experiment scale: cache geometry, processor, trace length."""

    name: str
    l2: CacheConfig
    processor: ProcessorConfig
    accesses: int

    def workloads(self, primary_only: bool = True) -> List[str]:
        """Suite workload names for this setup."""
        return workload_names(primary_only)


def make_setup(scale: str = "scaled", accesses: Optional[int] = None) -> Setup:
    """Build a named setup: ``mini``, ``scaled`` (default) or ``paper``."""
    if scale == "paper":
        l2 = CacheConfig(size_bytes=512 * 1024, ways=8, line_bytes=64,
                         hit_latency=15)
        l1 = CacheConfig(size_bytes=16 * 1024, ways=4, line_bytes=64,
                         hit_latency=2)
        default_accesses = 1_000_000
    elif scale == "scaled":
        l2 = CacheConfig(size_bytes=64 * 1024, ways=8, line_bytes=64,
                         hit_latency=15)
        l1 = CacheConfig(size_bytes=4 * 1024, ways=4, line_bytes=64,
                         hit_latency=2)
        default_accesses = 60_000
    elif scale == "mini":
        l2 = CacheConfig(size_bytes=16 * 1024, ways=8, line_bytes=64,
                         hit_latency=15)
        l1 = CacheConfig(size_bytes=2 * 1024, ways=4, line_bytes=64,
                         hit_latency=2)
        default_accesses = 12_000
    else:
        raise ValueError(f"unknown scale {scale!r}; use mini, scaled or paper")
    processor = ProcessorConfig(l1d=l1, l1i=l1, l2=l2)
    return Setup(
        name=scale, l2=l2, processor=processor,
        accesses=accesses or default_accesses,
    )


def build_l2_policy(
    config: CacheConfig,
    kind: str,
    components: Sequence[str] = ("lru", "lfu"),
    partial_bits: Optional[int] = None,
    num_leaders: int = 16,
    seed: int = 0,
) -> ReplacementPolicy:
    """Construct an L2 policy from a short spec.

    Args:
        kind: a registry policy name (``"lru"``, ``"lfu"``, ...),
            ``"adaptive"``, ``"adaptive5"`` or ``"sbar"``.
        components: component names for the adaptive kinds.
        partial_bits: partial tag width for the shadow arrays
            (None = full tags).
        num_leaders: leader set count for SBAR.
    """
    transform = PartialTagScheme(partial_bits) if partial_bits else None
    if kind == "adaptive":
        kwargs = {"tag_transform": transform} if transform else {}
        return make_adaptive(
            config.num_sets, config.ways, tuple(components), seed=seed, **kwargs
        )
    if kind == "adaptive5":
        kwargs = {"tag_transform": transform} if transform else {}
        return five_policy_adaptive(config.num_sets, config.ways,
                                    seed=seed, **kwargs)
    if kind == "sbar":
        if len(components) != 2:
            raise ValueError("sbar adapts over exactly two components")
        resident = [
            make_policy(name, config.num_sets, config.ways)
            for name in components
        ]
        leaders = min(num_leaders, config.num_sets)
        shadow = [make_policy(name, leaders, config.ways) for name in components]
        kwargs = {"tag_transform": transform} if transform else {}
        return SbarPolicy(
            config.num_sets, config.ways, resident, shadow,
            num_leaders=leaders, **kwargs,
        )
    return make_policy(kind, config.num_sets, config.ways)


# Default on-disk trace cache directory for WorkloadCache instances
# created without an explicit trace_dir (set by the CLI's --trace-cache
# flag so experiments stay oblivious to it). None disables disk caching.
# The REPRO_TRACE_CACHE environment variable seeds the default so CI
# jobs can share one actions/cache directory across every invocation
# without threading the flag through each command.
_DEFAULT_TRACE_DIR: Optional[str] = os.environ.get("REPRO_TRACE_CACHE") or None


def set_default_trace_dir(path: Optional[Union[str, os.PathLike]]) -> None:
    """Set (or clear, with None) the process-wide trace cache directory."""
    global _DEFAULT_TRACE_DIR
    _DEFAULT_TRACE_DIR = os.fspath(path) if path is not None else None


class WorkloadCache:
    """Caches built traces and compiled workloads per setup.

    Compiling a workload (L1 filter + predictors) is the expensive,
    L2-policy-independent phase; experiments that sweep policies or tag
    widths share one compile per workload through this cache.

    With a ``trace_dir`` (explicit, or process-wide via
    :func:`set_default_trace_dir`), built traces are also persisted as
    ``.npz`` files and reloaded on later runs. A cached file that turns
    out truncated or corrupt (:class:`~repro.workloads.io.TraceFormatError`)
    is regenerated and rewritten transparently instead of crashing the
    sweep; regenerations are recorded in ``trace_recoveries``.
    """

    def __init__(
        self, setup: Setup, trace_dir: Optional[Union[str, os.PathLike]] = None
    ):
        self.setup = setup
        self.trace_dir = (
            os.fspath(trace_dir) if trace_dir is not None else _DEFAULT_TRACE_DIR
        )
        self.trace_recoveries: List[str] = []
        self._traces: Dict[str, Trace] = {}
        self._compiled: Dict[str, CompiledWorkload] = {}

    def trace_path(self, name: str) -> Optional[str]:
        """Disk location of the workload's cached trace, or None."""
        if self.trace_dir is None:
            return None
        filename = f"{name}-{self.setup.name}-{self.setup.accesses}.npz"
        return os.path.join(self.trace_dir, filename)

    def trace(self, name: str) -> Trace:
        """The workload's trace, built (or loaded from disk) on first use."""
        if name not in self._traces:
            self._traces[name] = self._load_or_build(name)
        return self._traces[name]

    def _load_or_build(self, name: str) -> Trace:
        path = self.trace_path(name)
        if path is not None and os.path.exists(path):
            try:
                return load_trace(path)
            except TraceFormatError as exc:
                # Damaged cache entry: report, regenerate, overwrite.
                self.trace_recoveries.append(f"{name}: {exc}")
                print(
                    f"[trace-cache] regenerating {name}: {exc}",
                    file=sys.stderr,
                )
        trace = build_workload(name, self.setup.l2, accesses=self.setup.accesses)
        if path is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
            save_trace(trace, path)
        return trace

    def compiled(self, name: str) -> CompiledWorkload:
        """The workload's compiled (L1-filtered) form, built on first use."""
        if name not in self._compiled:
            self._compiled[name] = compile_workload(
                self.trace(name), self.setup.processor
            )
        return self._compiled[name]

    def simulate_policy(
        self,
        name: str,
        policy_kind: str,
        processor: Optional[ProcessorConfig] = None,
        l2_config: Optional[CacheConfig] = None,
        **policy_kwargs,
    ) -> TimingResult:
        """Compile-once, simulate one policy spec on one workload."""
        processor = processor or self.setup.processor
        l2_config = l2_config or self.setup.l2
        policy = build_l2_policy(l2_config, policy_kind, **policy_kwargs)
        cache = SetAssociativeCache(l2_config, policy)
        return simulate(self.compiled(name), cache, processor)


def run_policy_sweep(
    cache: WorkloadCache,
    workloads: Sequence[str],
    policy_specs: Dict[str, dict],
    processor: Optional[ProcessorConfig] = None,
    l2_config: Optional[CacheConfig] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, TimingResult]]:
    """Simulate every (workload, policy spec) pair.

    ``policy_specs`` maps a display label to ``simulate_policy`` kwargs,
    e.g. ``{"Adaptive": {"policy_kind": "adaptive"}, "LRU":
    {"policy_kind": "lru"}}``. Returns ``{workload: {label: result}}``.

    ``workers`` above 1 (explicitly, or process-wide via
    :func:`repro.perf.parallel.set_default_workers` — the CLI's
    ``--workers`` flag) fans the cells out over worker processes; every
    cell is a deterministic function of its coordinates, so the merged
    results are byte-identical to the serial loop's.

    When a sweep checkpoint is active (see
    :func:`repro.experiments.checkpoint.active_checkpoint`), each
    completed (workload, label) cell is persisted as it finishes and
    already-recorded cells are restored instead of resimulated — this
    is what lets an interrupted ``repro-experiments all`` sweep resume
    from where it died, serial or parallel, under any worker count.
    """
    from repro.perf import parallel as perf_parallel

    effective = (
        workers if workers is not None
        else perf_parallel.get_default_workers()
    )
    if effective > 1:
        return perf_parallel.parallel_policy_sweep(
            cache, workloads, policy_specs, workers=effective,
            processor=processor, l2_config=l2_config,
        )
    entry = checkpoint_mod.active()
    results: Dict[str, Dict[str, TimingResult]] = {}
    for name in workloads:
        results[name] = {}
        for label, kwargs in policy_specs.items():
            key = None
            if entry is not None:
                ckpt, experiment = entry
                key = ckpt.cell_key(
                    "cell", experiment, cache.setup.name,
                    cache.setup.accesses, name, label,
                )
                cached = ckpt.get(key)
                if cached is not None:
                    cell = checkpoint_mod.restore_timing_cell(cached, key)
                    if cell is not None:
                        results[name][label] = cell
                        continue
                    ckpt.discard(key)
            result = cache.simulate_policy(
                name, processor=processor, l2_config=l2_config, **kwargs
            )
            results[name][label] = result
            if key is not None:
                ckpt.put(key, checkpoint_mod.timing_to_dict(result))
    return results


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure, plus summary notes."""

    experiment: str
    description: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row (width-checked at render time)."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form summary line."""
        self.notes.append(note)

    def column(self, header: str) -> List:
        """All values of the named column."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_by_label(self, label) -> List:
        """The first row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labeled {label!r}")

    def render(self, float_digits: int = 3) -> str:
        """Human-readable report: title, table, notes."""
        parts = [
            render_table(
                self.headers,
                self.rows,
                float_digits=float_digits,
                title=f"{self.experiment}: {self.description}",
            )
        ]
        parts.extend(self.notes)
        return "\n".join(parts)
