"""Columnar shadow-directory kernel for the adaptive hotpath.

The scalar hotpath (:meth:`repro.cache.cache.SetAssociativeCache.access_many`)
pays Algorithm 1's full price on every reference: two shadow tag-array
lookups, a miss-history update, and the victim imitation dance, all through
per-access method dispatch. This module replays the same batch *columnar*:

* the address batch is decomposed and grouped by set with numpy
  (``argsort``/``bincount``/``cumsum`` — a struct-of-arrays view of the
  access stream: one column of tags, one of arrival ranks, one of write
  flags);
* each touched set is then simulated to completion in one fused Python
  loop whose state — the real set's tag dict, both shadow directories,
  and the selector's bit-vector window — has been hoisted into local
  scalars, dicts and flat lists (the shadow directories' struct-of-arrays
  form: a key list per way for LFU ranks, a recency-ordered dict for LRU,
  stamp rows for MRU);
* the loop body is *generated* per (policyA, policyB) duel pair, so each
  registered pair gets a specialized fast path with no per-access
  polymorphism, and compiled once per process.

Decision identity
-----------------

The kernel is byte-identical to the scalar path in every observable
output: ``CacheStats``, per-set miss counters, the full policy
``state_dict()`` (component metadata, shadow contents, selector windows,
switch counts, decision counters, fallback evictions) and the resulting
``CacheSet`` tags/dirty bits. The golden digests and the differential
oracle campaign run with the kernel on and must not move. Two pieces of
*non-observable* internal state are allowed to differ, exactly as they
are after a ``load_state_dict`` round-trip (both are excluded from
``state_dict()``):

* ``AdaptivePolicy._last_outcomes`` is left reset (it only carries
  information between ``observe`` and ``victim`` within one access);
* the LRU shadow ``TagArray``'s per-set dict iteration order is recency
  order rather than fill order (the dict is an index, not state;
  ``state_dict`` serializes the way-indexed tag list).

Saturation skipping
-------------------

When a set's selector window is pegged — full and unanimous
(:meth:`repro.core.selector.PolicySelector.pegged`) — a decisive event
that blames the *same* loser is a provable no-op on the window, the
counts, and the imitated component: the history update is elided
entirely. The guard automatically fails on a phase change (the first
decisive event blaming the other component), so the window resumes
recording with no re-arm protocol. Unlike SBAR's leader-set sampling,
nothing else may be skipped without breaking byte-identity: the shadow
directories themselves are observable state.

When the scalar path is used
----------------------------

:func:`kernel_plan` returns None — and every entry point falls back to
the scalar loop — for anything outside the specialized envelope:
non-adaptive policies, more or fewer than two components, unregistered
component kinds, non-identity tag transforms, a random fallback, counter
histories, an attached fault injector or vote sink, and (in ``auto``
mode) batches too small to amortize the columnar setup.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive import AdaptivePolicy
from repro.core.history import BitVectorHistory
from repro.core.selector import PolicySelector
from repro.perf.kernel_codegen import build_duel_source
from repro.policies.fifo import FIFOPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mru import MRUPolicy

KERNEL_MODES = ("scalar", "columnar", "auto")

#: In ``auto`` mode, batches below this size stay on the scalar path —
#: the numpy decompose/sort setup costs more than it saves.
AUTO_MIN_BATCH = 512

_DEFAULT_KERNEL = "auto"
_SATURATION_SKIP = True


def set_default_kernel(mode: str) -> None:
    """Select the process-wide batch kernel: scalar, columnar or auto.

    ``auto`` (the default) engages the columnar kernel for supported
    caches on batches of at least :data:`AUTO_MIN_BATCH` accesses;
    ``columnar`` engages it for supported caches regardless of batch
    size; ``scalar`` disables it. The CLI ``--kernel`` flag and the
    parallel sweep workers route through this switch.
    """
    if mode not in KERNEL_MODES:
        known = ", ".join(KERNEL_MODES)
        raise ValueError(f"unknown kernel mode {mode!r}; known: {known}")
    global _DEFAULT_KERNEL
    _DEFAULT_KERNEL = mode


def get_default_kernel() -> str:
    """The current process-wide kernel mode."""
    return _DEFAULT_KERNEL


def set_saturation_skip(enabled: bool) -> None:
    """Enable/disable eliding history updates for pegged selectors.

    On by default; it is a provable no-op elision (see the module
    docstring), so the only reason to turn it off is to exercise both
    paths in differential tests.
    """
    global _SATURATION_SKIP
    _SATURATION_SKIP = bool(enabled)


def get_saturation_skip() -> bool:
    """Whether pegged-selector history updates are currently elided."""
    return _SATURATION_SKIP


_COMPONENT_KINDS = {
    LRUPolicy: "lru",
    FIFOPolicy: "fifo",
    LFUPolicy: "lfu",
    MRUPolicy: "mru",
}


def kernel_plan(cache) -> Optional[Tuple[str, str]]:
    """The (kindA, kindB) duel pair the kernel would specialize for
    ``cache``, or None when the cache is outside the supported envelope
    and the scalar path must be used.

    The envelope (checked exactly, on concrete types, so subclasses with
    overridden behavior never silently take the fast path): an
    :class:`~repro.core.adaptive.AdaptivePolicy` over exactly two
    components drawn from {lru, fifo, lfu, mru}, identity tag transform,
    ``lru`` fallback, per-set :class:`PolicySelector` instances over
    :class:`BitVectorHistory` windows, and no fault injector or vote
    sink attached.
    """
    policy = cache.policy
    if type(policy) is not AdaptivePolicy:
        return None
    if policy.fault_injector is not None or policy.vote_sink is not None:
        return None
    if not policy._identity or policy.fallback != "lru":
        return None
    components = policy.components
    if len(components) != 2:
        return None
    kind_a = _COMPONENT_KINDS.get(type(components[0]))
    kind_b = _COMPONENT_KINDS.get(type(components[1]))
    if kind_a is None or kind_b is None:
        return None
    for selector in policy.selectors:
        if type(selector) is not PolicySelector:
            return None
        if type(selector.history) is not BitVectorHistory:
            return None
    return (kind_a, kind_b)


def kernel_name(cache, batch_size: Optional[int] = None) -> str:
    """Which kernel a batch against ``cache`` would run on, as a label
    for benchmark output: ``"columnar"`` or ``"scalar"``."""
    mode = _DEFAULT_KERNEL
    if mode == "scalar":
        return "scalar"
    if mode == "auto" and batch_size is not None and batch_size < AUTO_MIN_BATCH:
        return "scalar"
    return "columnar" if kernel_plan(cache) is not None else "scalar"


_DUEL_FNS: dict = {}


def _duel_fn(plan: Tuple[str, str]):
    fn = _DUEL_FNS.get(plan)
    if fn is None:
        source = build_duel_source(*plan)
        namespace = {"deque": deque, "np": np}
        exec(compile(source, f"<columnar {plan[0]}+{plan[1]}>", "exec"), namespace)
        fn = namespace["_kernel"]
        _DUEL_FNS[plan] = fn
    return fn


def _run_decomposed(fn, cache, sets_arr, tags_arr, writes, rec, skip) -> int:
    n = int(sets_arr.shape[0])
    order = np.argsort(sets_arr, kind="stable")
    counts = np.bincount(sets_arr, minlength=cache.config.num_sets)
    starts = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    touched = np.flatnonzero(counts).tolist()
    writes_sorted = None
    if writes is not None:
        writes_sorted = np.asarray(writes, dtype=bool)[order].tolist()
    return fn(
        cache,
        n,
        touched,
        starts.tolist(),
        tags_arr[order].tolist(),
        order.tolist(),
        writes_sorted,
        rec,
        skip,
    )


def _run_addresses(fn, cache, addresses, writes, rec, skip) -> int:
    offset_bits, index_mask, tag_shift = cache.config.decomposition()
    arr = np.asarray(addresses, dtype=np.int64)
    return _run_decomposed(
        fn, cache, (arr >> offset_bits) & index_mask, arr >> tag_shift, writes, rec, skip
    )


def maybe_columnar(cache, addresses, writes=None) -> Optional[int]:
    """The dispatch hook behind ``SetAssociativeCache.access_many``.

    Returns the hit count when the columnar kernel ran the batch, or
    None when the scalar loop should (kernel mode, batch size, or an
    unsupported cache — see :func:`kernel_plan`).
    """
    mode = _DEFAULT_KERNEL
    if mode == "scalar":
        return None
    n = len(addresses)
    if n == 0 or (mode == "auto" and n < AUTO_MIN_BATCH):
        return None
    if writes is not None and len(writes) != n:
        return None
    plan = kernel_plan(cache)
    if plan is None:
        return None
    return _run_addresses(_duel_fn(plan), cache, addresses, writes, None, _SATURATION_SKIP)


def columnar_access_many(
    cache,
    addresses: Sequence[int],
    writes: Optional[Sequence[bool]] = None,
    record: Optional[List[bool]] = None,
    saturation_skip: Optional[bool] = None,
) -> int:
    """Run one batch through the columnar kernel unconditionally.

    Unlike :func:`maybe_columnar` this ignores the kernel mode and batch
    threshold, and raises ValueError for unsupported caches — the entry
    point for differential tests and the oracle's columnar lane.

    Args:
        record: optional ``[False] * len(addresses)`` list; the kernel
            sets ``record[i]`` True for every hit, in original access
            order.
        saturation_skip: override the process-wide saturation-skip flag
            for this batch.
    """
    plan = kernel_plan(cache)
    if plan is None:
        raise ValueError(
            "columnar kernel does not support this cache; see kernel_plan() "
            "for the supported envelope"
        )
    if writes is not None and len(writes) != len(addresses):
        raise ValueError("writes must have the same length as addresses")
    skip = _SATURATION_SKIP if saturation_skip is None else bool(saturation_skip)
    return _run_addresses(_duel_fn(plan), cache, addresses, writes, record, skip)


def columnar_hit_stream(
    cache,
    addresses: Sequence[int],
    writes: Optional[Sequence[bool]] = None,
) -> Optional[List[bool]]:
    """Advance ``cache`` through a whole batch, returning the per-access
    hit stream — or None when the scalar path should run.

    The timing model replays its compiled L2 records and only consumes
    ``result.hit`` per access, so it can precompute the whole hit stream
    here and keep its cycle-accounting loop unchanged.
    """
    mode = _DEFAULT_KERNEL
    if mode == "scalar":
        return None
    n = len(addresses)
    if n == 0 or (mode == "auto" and n < AUTO_MIN_BATCH):
        return None
    plan = kernel_plan(cache)
    if plan is None:
        return None
    rec = [False] * n
    _run_addresses(_duel_fn(plan), cache, addresses, writes, rec, _SATURATION_SKIP)
    return rec
