"""Process-parallel policy sweeps with deterministic results.

Every cell of a sweep — one (workload, policy spec) simulation — is a
pure function of its coordinates: traces are generated from
deterministic RNG seeds, policies take explicit seeds, and the timing
model is seed-free. That makes the sweep embarrassingly parallel
*without* sacrificing reproducibility: this module fans cells out over
a ``concurrent.futures.ProcessPoolExecutor`` and reassembles them in
the same (workload, label) order the serial loop produces, so the
merged result — and everything derived from it, golden digests
included — is byte-identical to a serial run.

Tasks are grouped by workload: building and L1-compiling a trace is the
expensive policy-independent phase, so each worker task compiles its
workload once and simulates every (non-checkpointed) policy label
against it, exactly like :class:`~repro.experiments.base.WorkloadCache`
does in-process.

Failure handling mirrors the serial runner's philosophy:

* inside a worker, each cell runs under
  :func:`repro.experiments.runner.run_cell` (crash isolation + retry);
* a worker process dying outright (``BrokenProcessPool``) restarts the
  pool and resubmits the unfinished tasks, a bounded number of times;
* when restarts are exhausted, the remaining tasks run in-process, so a
  sweep always terminates with either results or a real traceback;
* completed cells are written to the active
  :class:`~repro.experiments.checkpoint.SweepCheckpoint` as they
  arrive, so a killed parallel sweep resumes — under any worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments.runner import RetryPolicy, run_cell

try:  # BrokenProcessPool moved homes across Python versions.
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - ancient stdlib layout
    BrokenProcessPool = RuntimeError  # type: ignore[assignment,misc]


# Process-wide default worker count, set by the CLI's --workers flag so
# experiments stay oblivious (the same pattern as the trace cache dir in
# repro.experiments.base). 1 means serial.
_DEFAULT_WORKERS: int = 1


def set_default_workers(workers: int) -> None:
    """Set the process-wide sweep worker count (1 = serial)."""
    global _DEFAULT_WORKERS
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _DEFAULT_WORKERS = workers


def get_default_workers() -> int:
    """The process-wide sweep worker count."""
    return _DEFAULT_WORKERS


def _simulate_workload_task(payload: dict) -> dict:
    """Worker entry point: one workload, every requested policy label.

    Runs in a child process, so it must be module-level (picklable) and
    rebuild everything from the picklable ``payload``. Each label runs
    under :func:`run_cell` for crash isolation; failures come back as
    strings (tracebacks don't pickle reliably), successes as
    checkpoint-format timing dicts.
    """
    import traceback

    from repro.experiments import base as base_mod
    from repro.perf import kernel as kernel_mod

    if payload.get("trace_dir"):
        base_mod.set_default_trace_dir(payload["trace_dir"])
    if payload.get("kernel"):
        kernel_mod.set_default_kernel(payload["kernel"])
    setup = base_mod.make_setup(payload["scale"], accesses=payload["accesses"])
    cache = base_mod.WorkloadCache(setup)
    workload = payload["workload"]
    processor = payload.get("processor")
    l2_config = payload.get("l2_config")
    retry = RetryPolicy(attempts=payload.get("cell_attempts", 1),
                        base_delay=0.01, max_delay=0.1)
    cells: Dict[str, dict] = {}
    errors: Dict[str, str] = {}
    for label, kwargs in payload["specs"].items():
        outcome = run_cell(
            lambda kw=kwargs: cache.simulate_policy(
                workload, processor=processor, l2_config=l2_config, **kw
            ),
            name=f"{workload}/{label}",
            retry=retry,
            seed=payload.get("seed", 0),
        )
        if outcome.failed:
            errors[label] = "".join(
                traceback.format_exception_only(
                    type(outcome.error), outcome.error
                )
            ).strip()
        else:
            cells[label] = checkpoint_mod.timing_to_dict(outcome.value)
    return {"workload": workload, "cells": cells, "errors": errors}


class ParallelRunner:
    """Fans sweep cells over worker processes; merges deterministically.

    Args:
        workers: worker process count; values above 1 parallelize.
        max_pool_restarts: how many times a crashed pool is rebuilt
            before the remaining tasks fall back to in-process runs.
        cell_attempts: per-cell retry attempts inside each worker.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_pool_restarts: int = 2,
        cell_attempts: int = 1,
    ):
        self.workers = workers if workers is not None else _DEFAULT_WORKERS
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")
        self.max_pool_restarts = max_pool_restarts
        self.cell_attempts = cell_attempts
        self.pool_restarts = 0
        self.fallback_tasks = 0

    # ------------------------------------------------------------------
    # Payload plumbing
    # ------------------------------------------------------------------

    def _payloads(
        self,
        cache,
        pending: "Dict[str, Dict[str, dict]]",
        processor=None,
        l2_config=None,
    ) -> List[dict]:
        """One picklable worker payload per workload with pending cells."""
        from repro.experiments import base as base_mod
        from repro.perf.kernel import get_default_kernel

        trace_dir = cache.trace_dir or base_mod._DEFAULT_TRACE_DIR
        return [
            {
                "scale": cache.setup.name,
                "accesses": cache.setup.accesses,
                "workload": workload,
                "specs": specs,
                "trace_dir": trace_dir,
                "kernel": get_default_kernel(),
                "cell_attempts": self.cell_attempts,
                "processor": processor,
                "l2_config": l2_config,
            }
            for workload, specs in pending.items()
            if specs
        ]

    def _run_payloads(self, payloads: List[dict]) -> List[dict]:
        """Execute payloads across the pool, surviving worker crashes."""
        remaining = list(payloads)
        collected: List[dict] = []
        restarts_left = self.max_pool_restarts
        while remaining:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    futures = {
                        pool.submit(_simulate_workload_task, payload): payload
                        for payload in remaining
                    }
                    not_done = set(futures)
                    while not_done:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            collected.append(future.result())
                            remaining.remove(futures[future])
            except BrokenProcessPool:
                if restarts_left > 0:
                    restarts_left -= 1
                    self.pool_restarts += 1
                    continue
                # Pool keeps dying: finish in-process so the sweep still
                # terminates (and a genuinely crashing cell produces a
                # real traceback instead of a dead pool).
                self.fallback_tasks += len(remaining)
                for payload in remaining:
                    collected.append(_simulate_workload_task(payload))
                remaining = []
        return collected

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------

    def run_sweep(
        self,
        cache,
        workloads: Sequence[str],
        policy_specs: Dict[str, dict],
        processor=None,
        l2_config=None,
    ) -> Dict[str, Dict[str, "object"]]:
        """Parallel equivalent of the serial ``run_policy_sweep`` loop.

        Byte-identical results: every cell is deterministic given its
        coordinates, and the merge below iterates ``workloads`` x
        ``policy_specs`` in the caller's order, not completion order.
        Checkpointed cells are restored without resimulating; freshly
        computed cells are persisted as their workload task completes.

        Raises:
            RuntimeError: when any cell fails in the worker even after
                its in-worker retries (mirroring the serial loop, where
                the exception would propagate to the experiment cell).
        """
        entry = checkpoint_mod.active()
        restored: Dict[Tuple[str, str], object] = {}
        pending: Dict[str, Dict[str, dict]] = {}
        for name in workloads:
            pending[name] = {}
            for label, kwargs in policy_specs.items():
                if entry is not None:
                    ckpt, experiment = entry
                    key = ckpt.cell_key(
                        "cell", experiment, cache.setup.name,
                        cache.setup.accesses, name, label,
                    )
                    cached = ckpt.get(key)
                    if cached is not None:
                        cell = checkpoint_mod.restore_timing_cell(cached, key)
                        if cell is not None:
                            restored[(name, label)] = cell
                            continue
                        ckpt.discard(key)
                pending[name][label] = kwargs

        task_results = self._run_payloads(
            self._payloads(cache, pending, processor, l2_config)
        )

        computed: Dict[Tuple[str, str], object] = {}
        failures: List[str] = []
        for task in task_results:
            workload = task["workload"]
            for label, cell in task["cells"].items():
                computed[(workload, label)] = (
                    checkpoint_mod.timing_from_dict(cell)
                )
                if entry is not None:
                    ckpt, experiment = entry
                    ckpt.put(
                        ckpt.cell_key(
                            "cell", experiment, cache.setup.name,
                            cache.setup.accesses, workload, label,
                        ),
                        cell,
                    )
            for label, message in task["errors"].items():
                failures.append(f"{workload}/{label}: {message}")
        if failures:
            raise RuntimeError(
                "parallel sweep cells failed: " + "; ".join(sorted(failures))
            )

        results: Dict[str, Dict[str, object]] = {}
        for name in workloads:
            results[name] = {}
            for label in policy_specs:
                if (name, label) in restored:
                    results[name][label] = restored[(name, label)]
                else:
                    results[name][label] = computed[(name, label)]
        return results


def parallel_policy_sweep(
    cache,
    workloads: Sequence[str],
    policy_specs: Dict[str, dict],
    workers: Optional[int] = None,
    processor=None,
    l2_config=None,
) -> Dict[str, Dict[str, "object"]]:
    """Run a policy sweep over worker processes (module-level sugar).

    ``run_policy_sweep(..., workers=N)`` routes here for N > 1; callers
    can also invoke it directly with a
    :class:`~repro.experiments.base.WorkloadCache`.
    """
    return ParallelRunner(workers=workers).run_sweep(
        cache, workloads, policy_specs,
        processor=processor, l2_config=l2_config,
    )


def recommended_workers() -> int:
    """A sensible ``--workers`` default: the machine's CPU count."""
    return os.cpu_count() or 1
