"""Code generation for the columnar duel kernels.

One specialized function is generated (and compiled once, per process)
per (kindA, kindB) duel pair. The per-kind snippets below are spliced
into _TEMPLATE with the component suffix ({x} = "A"/"B") substituted, so
both shadows, the selector and the real directory are simulated in a
single fused loop with every piece of state in a local.

Identity obligations of each snippet set:

* ``prelude`` — bind the component's tables once per batch;
* ``imp``     — lift one set's shadow directory into loop-local form;
* ``step``    — advance the shadow one access, defining ``m{x}`` (missed)
  and ``v{x}`` (evicted shadow tag, None if filled into a free way);
* ``export``  — write the set's shadow state back, byte-identical to the
  scalar path's incremental updates;
* ``batch``   — whole-batch fixups (global clocks, fill stamps).

See :mod:`repro.perf.kernel` for the identity contract and the driver
that feeds these functions, and docs/performance.md for the design.
"""

from __future__ import annotations

from textwrap import dedent, indent

_SNIPPETS = {
    # LRU shadow: a recency-ordered dict tag->way (oldest first). Hits
    # pop+reinsert; the victim is the first key. The real per-set dict
    # and tag list are rebuilt at export in recency order.
    "lru": {
        "prelude": """\
            nTab{x} = comp{x}._nxt
            pTab{x} = comp{x}._prv
            """,
        "imp": """\
            ss{x} = sets{x}[s]
            nx{x} = nTab{x}[s]
            tg{x} = ss{x}._tags
            od{x} = {{}}
            _w = nx{x}[W]
            while _w != W:
                od{x}[tg{x}[_w]] = _w
                _w = nx{x}[_w]
            fre{x} = None
            if len(od{x}) < W:
                fre{x} = sorted((w for w in WAYS if tg{x}[w] is None), reverse=True)
            res{x} = od{x}
            miss{x} = 0
            """,
        "step": """\
            w{x} = od{x}.pop(tag, None)
            if w{x} is None:
                miss{x} += 1
                m{x} = True
                if fre{x}:
                    w{x} = fre{x}.pop()
                    v{x} = None
                else:
                    for v{x} in od{x}:
                        break
                    w{x} = od{x}.pop(v{x})
                od{x}[tag] = w{x}
            else:
                m{x} = False
                od{x}[tag] = w{x}
            """,
        "export": """\
            pr{x} = pTab{x}[s]
            _b = W
            for _w in od{x}.values():
                nx{x}[_b] = _w
                pr{x}[_w] = _b
                _b = _w
            nx{x}[_b] = W
            pr{x}[W] = _b
            for _w in WAYS:
                tg{x}[_w] = None
            _nd = {{}}
            for _t, _w in od{x}.items():
                tg{x}[_w] = _t
                _nd[_t] = _w
            ss{x}._tag_to_way = _nd
            psm{x}[s] += miss{x}
            miss{x}T += miss{x}
            """,
        "batch": "",
    },
    # FIFO shadow: dict insertion order *is* fill order in both the
    # scalar and columnar paths, so the real per-set dict is mutated in
    # place; only the intrusive queue is rebuilt at export.
    "fifo": {
        "prelude": """\
            nTab{x} = comp{x}._nxt
            pTab{x} = comp{x}._prv
            """,
        "imp": """\
            ss{x} = sets{x}[s]
            d{x} = ss{x}._tag_to_way
            tg{x} = ss{x}._tags
            fre{x} = None
            if len(d{x}) < W:
                fre{x} = sorted((w for w in WAYS if tg{x}[w] is None), reverse=True)
            res{x} = d{x}
            miss{x} = 0
            """,
        "step": """\
            w{x} = d{x}.get(tag)
            if w{x} is None:
                miss{x} += 1
                m{x} = True
                if fre{x}:
                    w{x} = fre{x}.pop()
                    v{x} = None
                else:
                    for v{x} in d{x}:
                        break
                    w{x} = d{x}.pop(v{x})
                d{x}[tag] = w{x}
                tg{x}[w{x}] = tag
            else:
                m{x} = False
            """,
        "export": """\
            nx{x} = nTab{x}[s]
            pr{x} = pTab{x}[s]
            _b = W
            for _w in d{x}.values():
                nx{x}[_b] = _w
                pr{x}[_w] = _b
                _b = _w
            nx{x}[_b] = W
            pr{x}[W] = _b
            psm{x}[s] += miss{x}
            miss{x}T += miss{x}
            """,
        "batch": "",
    },
    # LFU shadow: one composite int key per way, count*BIG + fill rank,
    # so the victim (min count, oldest fill, lowest way) is a single
    # min()/index() over a flat list. Absolute fill stamps are
    # reconstructed at batch end from the global fill order.
    "lfu": {
        "prelude": """\
            cTab{x} = comp{x}._count
            sTab{x} = comp{x}._fill_stamp
            clk0{x} = comp{x}._clock
            sat{x} = comp{x}._max_count * BIG
            aFill{x} = []
            eLfu{x} = []
            """,
        "imp": """\
            ss{x} = sets{x}[s]
            d{x} = ss{x}._tag_to_way
            tg{x} = ss{x}._tags
            cr{x} = cTab{x}[s]
            st{x} = sTab{x}[s]
            key{x} = [0] * W
            ls{x} = 0
            for _w in sorted((w for w in WAYS if tg{x}[w] is not None), key=st{x}.__getitem__):
                ls{x} += 1
                key{x}[_w] = cr{x}[_w] * BIG + ls{x}
            ls0{x} = ls{x}
            fre{x} = None
            if ls{x} < W:
                fre{x} = sorted((w for w in WAYS if tg{x}[w] is None), reverse=True)
            fil{x} = []
            res{x} = d{x}
            miss{x} = 0
            """,
        "step": """\
            w{x} = d{x}.get(tag)
            if w{x} is None:
                miss{x} += 1
                m{x} = True
                if fre{x}:
                    w{x} = fre{x}.pop()
                    v{x} = None
                else:
                    w{x} = key{x}.index(min(key{x}))
                    v{x} = tg{x}[w{x}]
                    del d{x}[v{x}]
                d{x}[tag] = w{x}
                tg{x}[w{x}] = tag
                ls{x} += 1
                key{x}[w{x}] = BIG + ls{x}
                fil{x}.append(gi)
            else:
                m{x} = False
                _k = key{x}[w{x}]
                if _k < sat{x}:
                    key{x}[w{x}] = _k + BIG
            """,
        "export": """\
            for _w in WAYS:
                _k = key{x}[_w]
                if _k:
                    cr{x}[_w] = _k // BIG
            if fil{x}:
                eLfu{x}.append((st{x}, key{x}, ls0{x}, fil{x}))
                aFill{x}.extend(fil{x})
            psm{x}[s] += miss{x}
            miss{x}T += miss{x}
            """,
        "batch": """\
            if aFill{x}:
                _mk = np.zeros(n, dtype=np.int64)
                _mk[aFill{x}] = 1
                _rk = _mk.cumsum().tolist()
                _c0 = clk0{x}
                for _st, _key, _l0, _fl in eLfu{x}:
                    for _w in WAYS:
                        _ls = _key[_w] % BIG
                        if _ls > _l0:
                            _st[_w] = _c0 + _rk[_fl[_ls - _l0 - 1]]
            comp{x}._clock = clk0{x} + len(aFill{x})
            """,
    },
    # MRU shadow: absolute global stamps written straight into the
    # policy's stamp rows (every access touches, so the clock advance per
    # access equals the arrival rank).
    "mru": {
        "prelude": """\
            sTab{x} = comp{x}._stamp
            base{x} = comp{x}._clock + 1
            """,
        "imp": """\
            ss{x} = sets{x}[s]
            d{x} = ss{x}._tag_to_way
            tg{x} = ss{x}._tags
            lt{x} = sTab{x}[s]
            fre{x} = None
            if len(d{x}) < W:
                fre{x} = sorted((w for w in WAYS if tg{x}[w] is None), reverse=True)
            res{x} = d{x}
            miss{x} = 0
            """,
        "step": """\
            w{x} = d{x}.get(tag)
            if w{x} is None:
                miss{x} += 1
                m{x} = True
                if fre{x}:
                    w{x} = fre{x}.pop()
                    v{x} = None
                else:
                    w{x} = lt{x}.index(max(lt{x}))
                    v{x} = tg{x}[w{x}]
                    del d{x}[v{x}]
                d{x}[tag] = w{x}
                tg{x}[w{x}] = tag
            else:
                m{x} = False
            lt{x}[w{x}] = gi + base{x}
            """,
        "export": """\
            psm{x}[s] += miss{x}
            miss{x}T += miss{x}
            """,
        "batch": """\
            comp{x}._clock += n
            """,
    },
}

# Selector step: the bit-vector window as one int (bit=1 means component
# A missed the decisive event), counts and best as scalars. The skip
# guard elides the provable no-op: window full + unanimous + same blame.
_SELECTOR_STEP = """\
if mA != mB:
    if nev == WIN:
        if mA:
            if not (skip and win == WMASK):
                cntA += 1 - ((win >> WIN1) & 1)
                win = ((win << 1) | 1) & WMASK
                nb = 0 if cntA + cntA <= nev else 1
                if nb != best:
                    best = nb
                    switches += 1
        elif not (skip and win == 0):
            cntA -= (win >> WIN1) & 1
            win = (win << 1) & WMASK
            nb = 0 if cntA + cntA <= nev else 1
            if nb != best:
                best = nb
                switches += 1
    else:
        if mA:
            win = (win << 1) | 1
            cntA += 1
        else:
            win = win << 1
        nev += 1
        nb = 0 if cntA + cntA <= nev else 1
        if nb != best:
            best = nb
            switches += 1
"""

# Real-directory step, Algorithm 1's victim selection inlined: imitate
# the chosen component's eviction when resident, else the first way not
# resident in the chosen shadow, else the LRU fallback.
_REAL_STEP_RO = """\
wR = dR.get(tag)
if wR is not None:
    hitsR += 1
    ltR[wR] = gi + baseAd
    if rec is not None:
        rec[gi] = True
    continue
missR += 1
if freR:
    wR = freR.pop()
else:
    evR += 1
    if cntA + cntA <= nev:
        d0 += 1
        cm = mA
        cv = vA
        resC = resA
    else:
        d1 += 1
        cm = mB
        cv = vB
        resC = resB
    wR = dR.get(cv) if cm and cv is not None else None
    if wR is None:
        for wR in WAYS:
            if tgR[wR] not in resC:
                break
        else:
            fb += 1
            wR = ltR.index(min(ltR))
    del dR[tgR[wR]]
    if dyR[wR]:
        wbR += 1
dR[tag] = wR
tgR[wR] = tag
dyR[wR] = False
ltR[wR] = gi + baseAd
"""

_REAL_STEP_RW = """\
wR = dR.get(tag)
if wR is not None:
    hitsR += 1
    ltR[wR] = gi + baseAd
    if is_write:
        dyR[wR] = True
    if rec is not None:
        rec[gi] = True
    continue
missR += 1
if freR:
    wR = freR.pop()
else:
    evR += 1
    if cntA + cntA <= nev:
        d0 += 1
        cm = mA
        cv = vA
        resC = resA
    else:
        d1 += 1
        cm = mB
        cv = vB
        resC = resB
    wR = dR.get(cv) if cm and cv is not None else None
    if wR is None:
        for wR in WAYS:
            if tgR[wR] not in resC:
                break
        else:
            fb += 1
            wR = ltR.index(min(ltR))
    del dR[tgR[wR]]
    if dyR[wR]:
        wbR += 1
dR[tag] = wR
tgR[wR] = tag
dyR[wR] = is_write
ltR[wR] = gi + baseAd
"""

_TEMPLATE = """\
def _kernel(cache, n, touched, starts, tagsL, gisL, writesL, rec, skip):
    policy = cache.policy
    compA = policy.components[0]
    compB = policy.components[1]
    shadowA = policy.shadows[0]
    shadowB = policy.shadows[1]
    selectors = policy.selectors
    setsR = cache.sets
    setsA = shadowA.sets
    setsB = shadowB.sets
    stampT = policy._stamp
    decisions = policy._decisions
    psmR = cache.stats.per_set_misses
    psmA = shadowA.per_set_misses
    psmB = shadowB.per_set_misses
    W = cache.config.ways
    WAYS = range(W)
    BIG = n + W + 2
    baseAd = policy._clock + 1
    hitsT = missT = evT = wbT = fbT = 0
    missAT = missBT = 0
{prelude_a}
{prelude_b}
    for s in touched:
        lo = starts[s]
        hi = starts[s + 1]
        csR = setsR[s]
        dR = csR._tag_to_way
        tgR = csR._tags
        dyR = csR._dirty
        ltR = stampT[s]
        freR = None
        if len(dR) < W:
            freR = sorted((w for w in WAYS if tgR[w] is None), reverse=True)
{imp_a}
{imp_b}
        sel = selectors[s]
        hist = sel.history
        WIN = hist.window
        WIN1 = WIN - 1
        WMASK = (1 << WIN) - 1
        win = 0
        for _ev in hist._events:
            win = (win << 1) | (1 if _ev[0] else 0)
        nev = len(hist._events)
        cntA = hist._counts[0]
        best = sel._best
        switches = 0
        d0 = d1 = 0
        vA = vB = None
        missR = hitsR = fb = evR = wbR = 0
        if writesL is None:
            for tag, gi in zip(tagsL[lo:hi], gisL[lo:hi]):
{step_a_ro}
{step_b_ro}
{selector_ro}
{real_ro}
        else:
            for tag, gi, is_write in zip(tagsL[lo:hi], gisL[lo:hi], writesL[lo:hi]):
{step_a_rw}
{step_b_rw}
{selector_rw}
{real_rw}
        hitsT += hitsR
        missT += missR
        evT += evR
        wbT += wbR
        fbT += fb
        psmR[s] += missR
        if d0:
            decisions[s][0] += d0
        if d1:
            decisions[s][1] += d1
{export_a}
{export_b}
        _evq = deque(maxlen=WIN)
        for _j in range(nev - 1, -1, -1):
            _b = (win >> _j) & 1
            _evq.append((_b == 1, _b == 0))
        hist._events = _evq
        hist._counts = [cntA, nev - cntA]
        sel._best = best
        if switches:
            sel.switches += switches
{batch_a}
{batch_b}
    shadowA.accesses += n
    shadowB.accesses += n
    shadowA.misses += missAT
    shadowB.misses += missBT
    policy._clock += n
    policy.fallback_evictions += fbT
    policy._last_outcomes = []
    policy._last_set = -1
    stats = cache.stats
    stats.accesses += n
    stats.hits += hitsT
    stats.misses += missT
    stats.evictions += evT
    stats.writebacks += wbT
    return hitsT
"""


def _splice(snippet: str, x: str, depth: int) -> str:
    """Substitute the component suffix and indent to the splice depth."""
    return indent(dedent(snippet).rstrip("\n").format(x=x), " " * depth)


def build_duel_source(kind_a: str, kind_b: str) -> str:
    """The generated source of the (kind_a, kind_b) duel kernel
    (exposed for tests and for reading alongside docs/performance.md)."""
    snip_a = _SNIPPETS[kind_a]
    snip_b = _SNIPPETS[kind_b]
    fixed = indent(_SELECTOR_STEP.rstrip("\n"), " " * 16)
    return _TEMPLATE.format(
        prelude_a=_splice(snip_a["prelude"], "A", 4),
        prelude_b=_splice(snip_b["prelude"], "B", 4),
        imp_a=_splice(snip_a["imp"], "A", 8),
        imp_b=_splice(snip_b["imp"], "B", 8),
        step_a_ro=_splice(snip_a["step"], "A", 16),
        step_b_ro=_splice(snip_b["step"], "B", 16),
        selector_ro=fixed,
        real_ro=indent(_REAL_STEP_RO.rstrip("\n"), " " * 16),
        step_a_rw=_splice(snip_a["step"], "A", 16),
        step_b_rw=_splice(snip_b["step"], "B", 16),
        selector_rw=fixed,
        real_rw=indent(_REAL_STEP_RW.rstrip("\n"), " " * 16),
        export_a=_splice(snip_a["export"], "A", 8),
        export_b=_splice(snip_b["export"], "B", 8),
        batch_a=_splice(snip_a["batch"], "A", 4),
        batch_b=_splice(snip_b["batch"], "B", 4),
    )


