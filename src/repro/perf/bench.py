"""The ``repro-experiments perf`` benchmark: kernel + sweep throughput.

Measures the two things the performance work optimizes and records them
to ``BENCH_perf.json``:

* **hot-path throughput** — accesses/sec through
  :meth:`~repro.cache.cache.SetAssociativeCache.access` and the batched
  :meth:`~repro.cache.cache.SetAssociativeCache.access_many`, per
  policy, on a deterministic synthetic stream (60% sequential walk, 40%
  uniform jumps over 4x the cache's line capacity — a mix that misses
  enough to exercise the victim path hard);
* **sweep wall-clock** — one mini-scale policy sweep, serial and at
  each requested ``--workers`` count, through the real
  :func:`~repro.experiments.base.run_policy_sweep` path.

The recorded file also carries the machine context (CPU count, Python
version) because both numbers are meaningless without it; the CI
regression gate (``benchmarks/bench_hotpath.py --quick`` against
``benchmarks/baselines.json``) uses deliberately conservative floors
for exactly that reason.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.perf.kernel import get_default_kernel, kernel_name
from repro.utils.rng import DeterministicRNG

#: Policies timed by the hot-path benchmark: the two cheapest fixed
#: policies (pure kernel cost) and the paper's adaptive policy (kernel
#: plus shadow replays).
HOTPATH_POLICIES = ("lru", "fifo", "adaptive")

#: Default stream length; --quick divides it by 10.
HOTPATH_ACCESSES = 200_000

#: Sweep benchmark coverage: a small, phase-diverse workload subset.
SWEEP_WORKLOADS = ("lucas", "art-1", "ammp", "mcf")

#: Sweep policy specs (label -> simulate_policy kwargs).
SWEEP_SPECS = {
    "LRU": {"policy_kind": "lru"},
    "LFU": {"policy_kind": "lfu"},
    "Adaptive": {"policy_kind": "adaptive"},
}


def synthetic_stream(
    accesses: int, config: CacheConfig, seed: int = 7
) -> List[int]:
    """Deterministic byte-address stream for kernel benchmarking.

    60% of references advance a sequential cursor, 40% jump uniformly,
    over a footprint of 4x the cache's line capacity (miss ratio ~0.75
    on the default geometry, so victim selection dominates).
    """
    rng = DeterministicRNG(seed)
    lines = config.num_lines * 4
    line_bytes = config.line_bytes
    addresses = []
    base = 0
    for _ in range(accesses):
        if rng.random() < 0.6:
            base = (base + 1) % lines
        else:
            base = int(rng.random() * lines)
        addresses.append(base * line_bytes)
    return addresses


def bench_hotpath(
    accesses: int = HOTPATH_ACCESSES,
    policies: Sequence[str] = HOTPATH_POLICIES,
    size_kb: int = 64,
    ways: int = 8,
    seed: int = 7,
) -> Dict[str, Dict[str, float]]:
    """Accesses/sec per policy, per entry point.

    Returns ``{policy: {"access_per_sec": ..., "access_many_per_sec":
    ..., "miss_ratio": ...}}``; the miss ratio doubles as a correctness
    canary (both entry points must agree, and the number is pinned by
    the stream's determinism).
    """
    from repro.experiments.base import build_l2_policy

    results: Dict[str, Dict[str, float]] = {}
    for kind in policies:
        config = CacheConfig(size_bytes=size_kb * 1024, ways=ways,
                             line_bytes=64)
        addresses = synthetic_stream(accesses, config, seed=seed)

        cache = SetAssociativeCache(config, build_l2_policy(config, kind))
        access = cache.access
        start = time.perf_counter()
        for address in addresses:
            access(address)
        elapsed = time.perf_counter() - start
        per_call = accesses / elapsed

        # Steady-state measurement: one untimed access_many run on a
        # throwaway cache first, so the batch loop's code object — and,
        # for supported adaptive caches, the generated columnar kernel —
        # is compiled and specialization-warm before the clock starts.
        warm = SetAssociativeCache(config, build_l2_policy(config, kind))
        warm.access_many(addresses)

        batched = SetAssociativeCache(config, build_l2_policy(config, kind))
        kernel = kernel_name(batched, accesses)
        start = time.perf_counter()
        batched.access_many(addresses)
        batched_elapsed = time.perf_counter() - start

        # The per-call loop above always runs scalar, so on columnar
        # caches this doubles as a scalar-vs-kernel miss-count canary.
        if batched.stats.misses != cache.stats.misses:
            raise AssertionError(
                f"access/access_many diverged on {kind}: "
                f"{cache.stats.misses} vs {batched.stats.misses} misses"
            )
        results[kind] = {
            "access_per_sec": round(per_call, 1),
            "access_many_per_sec": round(accesses / batched_elapsed, 1),
            "miss_ratio": round(
                cache.stats.misses / cache.stats.accesses, 6
            ),
            "accesses": accesses,
            "kernel": kernel,
        }
    return results


def bench_sweep(
    workers_counts: Sequence[int] = (1, 4),
    accesses: int = 4000,
    workloads: Sequence[str] = SWEEP_WORKLOADS,
) -> Dict[str, object]:
    """Wall-clock of one mini policy sweep, serial and parallel.

    Each entry re-runs the same deterministic sweep (fresh
    :class:`~repro.experiments.base.WorkloadCache`, no disk trace
    cache, no checkpoint) so the wall-clocks are comparable; the
    results themselves are asserted identical across worker counts.
    """
    from repro.experiments.base import (
        WorkloadCache,
        make_setup,
        run_policy_sweep,
    )
    from repro.experiments.checkpoint import timing_to_dict

    timings: Dict[str, float] = {}
    reference = None
    for workers in workers_counts:
        cache = WorkloadCache(make_setup("mini", accesses=accesses))
        start = time.perf_counter()
        sweep = run_policy_sweep(
            cache, list(workloads), SWEEP_SPECS, workers=workers
        )
        timings[str(workers)] = round(time.perf_counter() - start, 3)
        serialized = {
            name: {label: timing_to_dict(cell)
                   for label, cell in row.items()}
            for name, row in sweep.items()
        }
        if reference is None:
            reference = serialized
        elif serialized != reference:
            raise AssertionError(
                f"sweep results at workers={workers} diverged from serial"
            )
    return {
        "wall_clock_sec_by_workers": timings,
        "workloads": list(workloads),
        "policies": list(SWEEP_SPECS),
        "accesses": accesses,
        "results_identical_across_workers": True,
    }


def run_perf(
    path: str = "BENCH_perf.json",
    quick: bool = False,
    workers_counts: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Run both benchmarks and write the report JSON to ``path``.

    Args:
        path: output file; also returned as a dict.
        quick: CI mode — 10x shorter hot-path stream, smaller sweep.
        workers_counts: sweep worker counts to time (default serial
            plus 4, the acceptance configuration).
    """
    if workers_counts is None:
        workers_counts = (1, 4)
    hot_accesses = HOTPATH_ACCESSES // 10 if quick else HOTPATH_ACCESSES
    sweep_accesses = 2000 if quick else 4000
    report: Dict[str, object] = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "quick": quick,
        "kernel_mode": get_default_kernel(),
        "hotpath": bench_hotpath(accesses=hot_accesses),
        "sweep": bench_sweep(
            workers_counts=workers_counts, accesses=sweep_accesses
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return report


def render_perf(report: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_perf` report."""
    lines = [
        f"machine: {report['machine']['cpu_count']} CPU(s), "
        f"Python {report['machine']['python']}",
        f"kernel mode: {report.get('kernel_mode', 'auto')}",
        "hot path (accesses/sec):",
    ]
    for kind, row in sorted(report["hotpath"].items()):
        lines.append(
            f"  {kind:10s} access {row['access_per_sec']:>12,.0f}   "
            f"access_many {row['access_many_per_sec']:>12,.0f}   "
            f"miss ratio {row['miss_ratio']:.3f}   "
            f"kernel {row.get('kernel', 'scalar')}"
        )
    sweep = report["sweep"]
    lines.append(
        f"sweep ({len(sweep['workloads'])} workloads x "
        f"{len(sweep['policies'])} policies, "
        f"{sweep['accesses']} accesses):"
    )
    for workers, seconds in sorted(
        sweep["wall_clock_sec_by_workers"].items(), key=lambda kv: int(kv[0])
    ):
        lines.append(f"  workers={workers:<3s} {seconds:8.3f}s")
    lines.append(
        "results identical across worker counts: "
        f"{sweep['results_identical_across_workers']}"
    )
    return "\n".join(lines)
