"""Performance infrastructure: parallel sweeps and benchmarks.

``repro.perf`` is the speed layer of the reproduction:

* :mod:`repro.perf.parallel` — a process-parallel sweep executor
  (:class:`~repro.perf.parallel.ParallelRunner`) layered on the same
  crash-isolated cells as the serial runner, producing byte-identical
  results in deterministic order and sharing the serial path's
  checkpoint/resume format.
* :mod:`repro.perf.bench` — the ``repro-experiments perf`` benchmark:
  hot-path accesses/sec and sweep wall-clock, recorded to
  ``BENCH_perf.json``.

The hot-path kernel itself lives where it always did
(:mod:`repro.cache.cache`, :mod:`repro.policies`); docs/performance.md
describes the optimizations and the decision-identity argument.
"""

from repro.perf.bench import run_perf
from repro.perf.parallel import (
    ParallelRunner,
    get_default_workers,
    parallel_policy_sweep,
    set_default_workers,
)

__all__ = [
    "ParallelRunner",
    "get_default_workers",
    "parallel_policy_sweep",
    "run_perf",
    "set_default_workers",
]
