"""Performance infrastructure: batch kernel, parallel sweeps, benchmarks.

``repro.perf`` is the speed layer of the reproduction:

* :mod:`repro.perf.kernel` — the columnar shadow-directory kernel:
  whole access batches simulated per set in struct-of-arrays form,
  with a generated fast path per (policyA, policyB) duel pair and
  saturation-skip elision for pegged selectors, byte-identical to the
  scalar loop in every observable decision (``--kernel
  scalar|columnar|auto`` on the CLI).
* :mod:`repro.perf.parallel` — a process-parallel sweep executor
  (:class:`~repro.perf.parallel.ParallelRunner`) layered on the same
  crash-isolated cells as the serial runner, producing byte-identical
  results in deterministic order and sharing the serial path's
  checkpoint/resume format.
* :mod:`repro.perf.bench` — the ``repro-experiments perf`` benchmark:
  hot-path accesses/sec (labelled with the kernel each row measured)
  and sweep wall-clock, recorded to ``BENCH_perf.json``.

The scalar hot path lives where it always did
(:mod:`repro.cache.cache`, :mod:`repro.policies`); docs/performance.md
describes the optimizations and the decision-identity argument.
"""

from repro.perf.bench import run_perf
from repro.perf.kernel import (
    AUTO_MIN_BATCH,
    KERNEL_MODES,
    columnar_access_many,
    columnar_hit_stream,
    get_default_kernel,
    get_saturation_skip,
    kernel_name,
    kernel_plan,
    set_default_kernel,
    set_saturation_skip,
)
from repro.perf.parallel import (
    ParallelRunner,
    get_default_workers,
    parallel_policy_sweep,
    set_default_workers,
)

__all__ = [
    "AUTO_MIN_BATCH",
    "KERNEL_MODES",
    "ParallelRunner",
    "columnar_access_many",
    "columnar_hit_stream",
    "get_default_kernel",
    "get_default_workers",
    "get_saturation_skip",
    "kernel_name",
    "kernel_plan",
    "parallel_policy_sweep",
    "run_perf",
    "set_default_kernel",
    "set_default_workers",
    "set_saturation_skip",
]
