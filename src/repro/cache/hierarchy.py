"""Two-level cache hierarchy with a memory/bus backend.

Models the paper's memory system (Table 1): split L1 instruction/data
caches over a unified L2, a split-transaction bus and a fixed-latency
main memory. Latency accounting is what the timing model consumes; data
movement itself is not simulated (tags suffice for replacement studies).

Since the :mod:`repro.tiers` subsystem landed, this class is a thin
two-tier instantiation of the general tier graph: the L1s and the L2
are nodes of a :class:`~repro.tiers.topology.TierGraph` walked by a
:class:`~repro.tiers.topology.TieredCache` under leave-copy-everywhere
placement — which *is* the classic inclusive walk this class always
performed, access-for-access (same per-cache `AccessResult` stream,
same single-hop writeback propagation, same latency arithmetic), so
`HierarchyResult`s and the golden digests are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.tiers.topology import BackingStore, TierGraph, TieredCache


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of one reference walked through the hierarchy.

    Attributes:
        hit_level: ``"l1"``, ``"l2"`` or ``"memory"``.
        latency: cycles to return the data to the core.
        l2_accessed: the reference reached the L2 (i.e. missed L1).
        l2_miss: the reference missed the L2 and went to memory.
    """

    hit_level: str
    latency: int
    l2_accessed: bool
    l2_miss: bool


class CacheHierarchy:
    """L1I + L1D over a unified L2 over memory.

    The L1s are optional: replacement studies that start from an L2
    reference trace (the common case in the experiments) construct the
    hierarchy with ``l1d=None, l1i=None`` and call :meth:`access_l2`
    directly.

    Raises:
        ValueError: for non-positive ``memory_latency``, negative
            ``bus_transfer_cycles``, or an L1 whose block size differs
            from the L2's — mismatched line sizes would make the
            rebuilt writeback addresses alias the wrong L2 lines.
    """

    def __init__(
        self,
        l2: SetAssociativeCache,
        l1d: Optional[SetAssociativeCache] = None,
        l1i: Optional[SetAssociativeCache] = None,
        memory_latency: int = 120,
        bus_transfer_cycles: int = 64,
    ):
        if memory_latency <= 0:
            raise ValueError(f"memory_latency must be positive, got {memory_latency}")
        if bus_transfer_cycles < 0:
            raise ValueError(
                f"bus_transfer_cycles must be non-negative, got {bus_transfer_cycles}"
            )
        for name, l1 in (("l1d", l1d), ("l1i", l1i)):
            if l1 is not None and l1.config.line_bytes != l2.config.line_bytes:
                raise ValueError(
                    f"{name} block size {l1.config.line_bytes} does not match "
                    f"L2 block size {l2.config.line_bytes}; writeback "
                    "addresses would alias the wrong L2 lines"
                )
        self.l2 = l2
        self.l1d = l1d
        self.l1i = l1i
        self.memory_latency = memory_latency
        self.bus_transfer_cycles = bus_transfer_cycles

        graph = TierGraph(BackingStore("memory", latency=memory_latency))
        graph.add_tier("l2", l2, transfer_cost=bus_transfer_cycles)
        if l1d is not None:
            graph.add_tier("l1d", l1d, below="l2")
        if l1i is not None:
            graph.add_tier("l1i", l1i, below="l2")
        # LCE over this graph is exactly the classic inclusive walk.
        self._tiered = TieredCache(graph, default_entry="l2")

    @property
    def tiered(self) -> TieredCache:
        """The underlying tier walker (topology-level introspection)."""
        return self._tiered

    @property
    def memory_reads(self) -> int:
        """Demand fetches that reached memory."""
        return self._tiered.backing_reads

    @property
    def memory_writes(self) -> int:
        """Dirty lines written back to memory."""
        return self._tiered.backing_writes

    @property
    def miss_penalty(self) -> int:
        """Cycles an L2 miss spends fetching a line from memory."""
        return self.memory_latency + self.bus_transfer_cycles

    def _result(self, walked) -> HierarchyResult:
        hit_level = "l1" if walked.served_by in ("l1d", "l1i") else walked.served_by
        return HierarchyResult(
            hit_level=hit_level,
            latency=walked.latency,
            l2_accessed="l2" in walked.probed,
            l2_miss=walked.served_by == "memory",
        )

    def access_l2(self, address: int, is_write: bool = False) -> HierarchyResult:
        """Reference the unified L2 directly (L2-trace experiments)."""
        return self._result(self._tiered.access(address, is_write, entry="l2"))

    def access_data(self, address: int, is_write: bool = False) -> HierarchyResult:
        """Load/store reference through the L1 data cache."""
        entry = "l1d" if self.l1d is not None else "l2"
        return self._result(self._tiered.access(address, is_write, entry=entry))

    def access_inst(self, address: int) -> HierarchyResult:
        """Instruction fetch through the L1 instruction cache."""
        entry = "l1i" if self.l1i is not None else "l2"
        return self._result(
            self._tiered.access(address, is_write=False, entry=entry)
        )
