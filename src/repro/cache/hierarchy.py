"""Two-level cache hierarchy with a memory/bus backend.

Models the paper's memory system (Table 1): split L1 instruction/data
caches over a unified L2, a split-transaction bus and a fixed-latency
main memory. Latency accounting is what the timing model consumes; data
movement itself is not simulated (tags suffice for replacement studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import SetAssociativeCache


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of one reference walked through the hierarchy.

    Attributes:
        hit_level: ``"l1"``, ``"l2"`` or ``"memory"``.
        latency: cycles to return the data to the core.
        l2_accessed: the reference reached the L2 (i.e. missed L1).
        l2_miss: the reference missed the L2 and went to memory.
    """

    hit_level: str
    latency: int
    l2_accessed: bool
    l2_miss: bool


class CacheHierarchy:
    """L1I + L1D over a unified L2 over memory.

    The L1s are optional: replacement studies that start from an L2
    reference trace (the common case in the experiments) construct the
    hierarchy with ``l1d=None, l1i=None`` and call :meth:`access_l2`
    directly.
    """

    def __init__(
        self,
        l2: SetAssociativeCache,
        l1d: Optional[SetAssociativeCache] = None,
        l1i: Optional[SetAssociativeCache] = None,
        memory_latency: int = 120,
        bus_transfer_cycles: int = 64,
    ):
        if memory_latency <= 0:
            raise ValueError(f"memory_latency must be positive, got {memory_latency}")
        if bus_transfer_cycles < 0:
            raise ValueError(
                f"bus_transfer_cycles must be non-negative, got {bus_transfer_cycles}"
            )
        self.l2 = l2
        self.l1d = l1d
        self.l1i = l1i
        self.memory_latency = memory_latency
        self.bus_transfer_cycles = bus_transfer_cycles
        self.memory_reads = 0
        self.memory_writes = 0

    @property
    def miss_penalty(self) -> int:
        """Cycles an L2 miss spends fetching a line from memory."""
        return self.memory_latency + self.bus_transfer_cycles

    def access_l2(self, address: int, is_write: bool = False) -> HierarchyResult:
        """Reference the unified L2 directly (L2-trace experiments)."""
        result = self.l2.access(address, is_write)
        if result.writeback:
            self.memory_writes += 1
        if result.hit:
            return HierarchyResult(
                hit_level="l2",
                latency=self.l2.config.hit_latency,
                l2_accessed=True,
                l2_miss=False,
            )
        self.memory_reads += 1
        return HierarchyResult(
            hit_level="memory",
            latency=self.l2.config.hit_latency + self.miss_penalty,
            l2_accessed=True,
            l2_miss=True,
        )

    def _access_through_l1(
        self, l1: Optional[SetAssociativeCache], address: int, is_write: bool
    ) -> HierarchyResult:
        if l1 is None:
            return self.access_l2(address, is_write)
        l1_result = l1.access(address, is_write)
        if l1_result.hit:
            return HierarchyResult(
                hit_level="l1",
                latency=l1.config.hit_latency,
                l2_accessed=False,
                l2_miss=False,
            )
        # L1 writebacks land in the (unified, larger) L2.
        if l1_result.writeback:
            evicted_base = l1.config.rebuild_address(
                l1_result.evicted_tag, l1_result.set_index
            )
            self.l2.access(evicted_base, is_write=True)
        below = self.access_l2(address, is_write=False)
        return HierarchyResult(
            hit_level=below.hit_level,
            latency=l1.config.hit_latency + below.latency,
            l2_accessed=True,
            l2_miss=below.l2_miss,
        )

    def access_data(self, address: int, is_write: bool = False) -> HierarchyResult:
        """Load/store reference through the L1 data cache."""
        return self._access_through_l1(self.l1d, address, is_write)

    def access_inst(self, address: int) -> HierarchyResult:
        """Instruction fetch through the L1 instruction cache."""
        return self._access_through_l1(self.l1i, address, is_write=False)
