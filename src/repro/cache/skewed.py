"""Skewed-associative cache (Seznec & Bodin).

The paper's related-work section names skewed associativity as a
representative "advanced caching algorithm" whose benefits are
*orthogonal* to adaptive replacement: skewing attacks conflict misses
by giving each way its own index hash, so blocks that collide in one
way disperse in the others; adaptive replacement attacks policy misses.
This substrate exists to support that orthogonality claim empirically
(``repro-experiments ext-skew``).

Each way is a direct-mapped bank indexed by its own hash of the block
address; replacement among the W candidate slots is pseudo-LRU via
timestamps, as in Seznec's original proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.utils.bitops import ilog2


@dataclass(frozen=True)
class SkewedAccessResult:
    """Outcome of one skewed-cache access.

    Attributes:
        hit: whether the reference hit.
        way: the bank that served (hit) or received (fill) the block.
        evicted_block: block address displaced, or None.
    """

    hit: bool
    way: int
    evicted_block: Optional[int] = None


def _mix(value: int, salt: int) -> int:
    """Cheap avalanche hash (xorshift-multiply) with a per-way salt."""
    value ^= salt
    value = (value ^ (value >> 13)) * 0x9E3779B97F4A7C15
    return (value ^ (value >> 29)) & 0xFFFFFFFFFFFFFFFF


class SkewedAssociativeCache:
    """A W-way skewed-associative cache with pseudo-LRU replacement.

    Args:
        config: geometry (same dataclass as the conventional cache; the
            set count becomes the per-way bank depth times ways).
        salts: optional per-way hash salts (defaults are fixed odd
            constants, one per way, so runs are deterministic).
    """

    def __init__(self, config: CacheConfig, salts: Optional[List[int]] = None):
        self.config = config
        self.banks = config.ways
        self.bank_sets = config.num_sets
        self._index_mask = self.bank_sets - 1
        if salts is None:
            salts = [0x517C_C1B7 + 0x2545_F491 * w for w in range(self.banks)]
        if len(salts) != self.banks:
            raise ValueError(
                f"expected {self.banks} salts, got {len(salts)}"
            )
        self.salts = list(salts)
        # Per bank: block address stored in each slot (None = invalid).
        self._blocks: List[List[Optional[int]]] = [
            [None] * self.bank_sets for _ in range(self.banks)
        ]
        self._stamps: List[List[int]] = [
            [0] * self.bank_sets for _ in range(self.banks)
        ]
        self._clock = 0
        self.stats = CacheStats(per_set_misses=[0] * self.bank_sets)
        self._offset_bits = ilog2(config.line_bytes)

    def bank_index(self, way: int, block: int) -> int:
        """Slot of ``block`` in bank ``way`` (the skewing function)."""
        return _mix(block, self.salts[way]) & self._index_mask

    def access(self, address: int) -> SkewedAccessResult:
        """Reference one byte address."""
        block = address >> self._offset_bits
        self.stats.accesses += 1
        self._clock += 1

        slots = [self.bank_index(w, block) for w in range(self.banks)]
        for way, slot in enumerate(slots):
            if self._blocks[way][slot] == block:
                self.stats.hits += 1
                self._stamps[way][slot] = self._clock
                return SkewedAccessResult(hit=True, way=way)

        self.stats.misses += 1
        self.stats.per_set_misses[slots[0]] += 1
        # Fill an invalid candidate if any, else evict the least
        # recently used among the W candidates.
        victim_way = None
        for way, slot in enumerate(slots):
            if self._blocks[way][slot] is None:
                victim_way = way
                break
        if victim_way is None:
            victim_way = min(
                range(self.banks),
                key=lambda w: self._stamps[w][slots[w]],
            )
        slot = slots[victim_way]
        evicted = self._blocks[victim_way][slot]
        if evicted is not None:
            self.stats.evictions += 1
        self._blocks[victim_way][slot] = block
        self._stamps[victim_way][slot] = self._clock
        return SkewedAccessResult(
            hit=False, way=victim_way, evicted_block=evicted
        )

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        block = address >> self._offset_bits
        return any(
            self._blocks[w][self.bank_index(w, block)] == block
            for w in range(self.banks)
        )

    def resident_block_count(self) -> int:
        """Total valid lines (testing/inspection aid)."""
        return sum(
            sum(1 for block in bank if block is not None)
            for bank in self._blocks
        )
