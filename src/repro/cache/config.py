"""Cache geometry configuration and address decomposition."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import ilog2, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        size_bytes: total data capacity.
        ways: set associativity.
        line_bytes: cache-line (block) size.
        hit_latency: cycles to serve a hit (used by the timing model).
        address_bits: physical address width; the paper assumes 40 bits
            when counting tag-store overhead (Section 3.2, footnote 2).
    """

    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 1
    address_bits: int = 40

    def __post_init__(self):
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("size_bytes, ways and line_bytes must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"capacity {self.size_bytes} is not divisible by "
                f"ways*line_bytes = {self.ways * self.line_bytes}"
            )
        if not is_power_of_two(self.num_sets):
            raise ValueError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )
        if self.hit_latency <= 0:
            raise ValueError(f"hit_latency must be positive, got {self.hit_latency}")
        if self.address_bits <= self.offset_bits + self.index_bits:
            raise ValueError(
                "address_bits too small for this geometry: "
                f"{self.address_bits} <= {self.offset_bits + self.index_bits}"
            )
        # Precomputed address-decomposition constants. The properties
        # below recompute ilog2/divisions on every call, which is fine
        # for configuration code but not for the per-access hot path;
        # the simulator reads these cached values instead (they are not
        # dataclass fields, so equality/repr/pickling are unaffected).
        object.__setattr__(self, "_offset_bits", ilog2(self.line_bytes))
        object.__setattr__(self, "_index_mask", self.num_sets - 1)
        object.__setattr__(
            self, "_tag_shift", self._offset_bits + ilog2(self.num_sets)
        )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.num_sets * self.ways

    @property
    def offset_bits(self) -> int:
        """Low address bits selecting the byte within a line."""
        return ilog2(self.line_bytes)

    @property
    def index_bits(self) -> int:
        """Address bits selecting the set."""
        return ilog2(self.num_sets)

    @property
    def tag_bits(self) -> int:
        """Address bits stored as the (full) tag."""
        return self.address_bits - self.offset_bits - self.index_bits

    def block_address(self, address: int) -> int:
        """Line-granular address (byte address >> offset bits)."""
        return address >> self._offset_bits

    def set_index(self, address: int) -> int:
        """Set selected by a byte address."""
        return (address >> self._offset_bits) & self._index_mask

    def tag(self, address: int) -> int:
        """Full tag of a byte address."""
        return address >> self._tag_shift

    def decomposition(self) -> tuple:
        """``(offset_bits, index_mask, tag_shift)`` for hot loops.

        Callers that decompose millions of addresses inline these three
        constants into locals instead of calling :meth:`set_index` /
        :meth:`tag` per address (see ``SetAssociativeCache.access_many``
        and the timing model's replay loop).
        """
        return self._offset_bits, self._index_mask, self._tag_shift

    def rebuild_address(self, tag: int, set_index: int) -> int:
        """Reconstruct the base byte address of a line from tag and set."""
        return ((tag << self.index_bits) | set_index) << self.offset_bits

    def scaled(self, **overrides) -> "CacheConfig":
        """Return a copy with some fields replaced (dataclasses.replace)."""
        from dataclasses import replace

        return replace(self, **overrides)
