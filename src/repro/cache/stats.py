"""Cache access statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`SetAssociativeCache`.

    ``per_set_misses`` supports the paper's per-set analyses (the
    theoretical bound is per set; Figure 7 maps behaviour per set).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    per_set_misses: List[int] = field(default_factory=list)

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses; 0.0 when nothing was accessed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses; 0.0 when nothing was accessed."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per thousand instructions, the paper's Figure 3 metric."""
        if instructions <= 0:
            raise ValueError(f"instructions must be positive, got {instructions}")
        return 1000.0 * self.misses / instructions

    def reset(self) -> None:
        """Zero all counters, keeping the per-set vector length."""
        sets = len(self.per_set_misses)
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0
        self.per_set_misses = [0] * sets
