"""The set-associative cache with pluggable replacement.

Hot-path notes: this module sits on the innermost loop of every
simulation — one :meth:`SetAssociativeCache.access` per memory
reference, millions per sweep — so it trades a little idiom for speed:

* :class:`AccessResult` is a ``__slots__`` class, not a dataclass, and
  hits return a per-set preallocated instance instead of a fresh one;
* address decomposition uses constants precomputed by
  :meth:`~repro.cache.config.CacheConfig.decomposition` instead of the
  property arithmetic;
* policies whose ``observe`` is the base-class no-op are detected once
  at construction and never called per access;
* :meth:`SetAssociativeCache.access_many` replays a whole address batch
  with every method bound to a local, for callers that only need
  aggregate statistics.

All of this is decision-preserving by construction — the golden digests
(``tests/golden/golden.json``) and the differential-oracle campaign
pin the exact same hit/miss/eviction stream as the straightforward
implementation (see docs/performance.md).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.cache_set import CacheSet
from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.policies.base import ReplacementPolicy

# The columnar batch kernel (repro.perf.kernel) is bound lazily on the
# first access_many call: repro.cache must stay importable without
# repro.perf, and importing it eagerly would cycle through the perf
# package's __init__.
_columnar_dispatch = None


def _maybe_columnar(cache, addresses, writes):
    global _columnar_dispatch
    if _columnar_dispatch is None:
        from repro.perf.kernel import maybe_columnar

        _columnar_dispatch = maybe_columnar
    return _columnar_dispatch(cache, addresses, writes)


class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: whether the reference hit.
        set_index: the set the reference mapped to.
        evicted_tag: tag of the block displaced to make room, or None
            (hit, or fill into an invalid way).
        writeback: whether the displaced block was dirty.

    Instances are immutable by convention; hit results may be shared,
    so callers must not mutate them.
    """

    __slots__ = ("hit", "set_index", "evicted_tag", "writeback")

    def __init__(
        self,
        hit: bool,
        set_index: int,
        evicted_tag: Optional[int] = None,
        writeback: bool = False,
    ):
        self.hit = hit
        self.set_index = set_index
        self.evicted_tag = evicted_tag
        self.writeback = writeback

    def __repr__(self) -> str:
        return (
            f"AccessResult(hit={self.hit}, set_index={self.set_index}, "
            f"evicted_tag={self.evicted_tag}, writeback={self.writeback})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return (
            self.hit == other.hit
            and self.set_index == other.set_index
            and self.evicted_tag == other.evicted_tag
            and self.writeback == other.writeback
        )


class SetAssociativeCache:
    """A conventional set-associative cache driven by a replacement policy.

    The cache is deliberately unaware of whether its policy is a simple
    one (LRU, LFU, ...) or the paper's adaptive policy: adaptivity lives
    entirely in the policy object, mirroring the hardware claim that the
    adaptive machinery sits beside — not inside — the standard tag/data
    arrays (Figure 1).

    Write handling is write-back/write-allocate: stores allocate on miss
    and mark the line dirty; evicting a dirty line counts a writeback.
    """

    def __init__(self, config: CacheConfig, policy: ReplacementPolicy):
        if policy.num_sets != config.num_sets or policy.ways != config.ways:
            raise ValueError(
                "policy geometry "
                f"({policy.num_sets} sets x {policy.ways} ways) does not match "
                f"cache geometry ({config.num_sets} sets x {config.ways} ways)"
            )
        self.config = config
        self.policy = policy
        self.sets = [CacheSet(config.ways) for _ in range(config.num_sets)]
        self.stats = CacheStats(per_set_misses=[0] * config.num_sets)
        self._offset_bits, self._index_mask, self._tag_shift = (
            config.decomposition()
        )
        # The base-class observe() is a documented no-op; skipping the
        # call entirely for such policies saves one Python call per
        # access without changing any decision.
        self._observe_is_noop = (
            type(policy).observe is ReplacementPolicy.observe
        )
        # Hits dominate most streams; reuse one result object per set
        # rather than allocating a fresh AccessResult every hit.
        self._hit_results = [
            AccessResult(True, index) for index in range(config.num_sets)
        ]

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Reference one byte address; returns the access outcome."""
        return self.access_decomposed(
            (address >> self._offset_bits) & self._index_mask,
            address >> self._tag_shift,
            is_write,
        )

    def access_decomposed(
        self, set_index: int, tag: int, is_write: bool = False
    ) -> AccessResult:
        """Reference an already-decomposed (set, tag) pair.

        The hierarchy and the experiment harness pre-decompose addresses
        once and replay them against several caches, so this entry point
        avoids repeating the shift/mask work per cache.
        """
        stats = self.stats
        stats.accesses += 1
        policy = self.policy
        if not self._observe_is_noop:
            policy.observe(set_index, tag, is_write)
        cache_set = self.sets[set_index]

        way = cache_set._tag_to_way.get(tag)
        if way is not None:
            stats.hits += 1
            policy.on_hit(set_index, way)
            if is_write:
                cache_set._dirty[way] = True
            return self._hit_results[set_index]

        stats.misses += 1
        stats.per_set_misses[set_index] += 1

        evicted_tag = None
        writeback = False
        if len(cache_set._tag_to_way) == cache_set._ways:
            fill_way = policy.victim(set_index, cache_set)
            evicted_tag, was_dirty = cache_set.evict(fill_way)
            stats.evictions += 1
            if was_dirty:
                stats.writebacks += 1
                writeback = True
        else:
            fill_way = cache_set.free_way()

        cache_set.install(fill_way, tag, dirty=is_write)
        policy.on_fill(set_index, fill_way, tag)
        return AccessResult(
            hit=False,
            set_index=set_index,
            evicted_tag=evicted_tag,
            writeback=writeback,
        )

    def access_many(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> int:
        """Replay a batch of byte addresses; returns the number of hits.

        Decision-identical to calling :meth:`access` per address, but
        with the per-access Python overhead (method dispatch, result
        allocation, repeated attribute loads) hoisted out of the loop.
        Callers that need per-access outcomes (the timing model, the
        hierarchy) keep using :meth:`access`; bulk replays that only
        need the aggregate statistics (golden digests, miss-ratio
        experiments, benchmarks) use this.

        Args:
            addresses: byte addresses to reference, in order.
            writes: optional per-address write flags (same length);
                omitted means every access is a read.

        Large batches against a supported adaptive cache run on the
        columnar kernel (:mod:`repro.perf.kernel`) — byte-identical by
        contract, selected by :func:`repro.perf.kernel.set_default_kernel`;
        everything else takes the scalar loop below.
        """
        hits = _maybe_columnar(self, addresses, writes)
        if hits is not None:
            return hits
        offset_bits = self._offset_bits
        index_mask = self._index_mask
        tag_shift = self._tag_shift
        stats = self.stats
        per_set_misses = stats.per_set_misses
        sets = self.sets
        policy = self.policy
        observe = None if self._observe_is_noop else policy.observe
        on_hit = policy.on_hit
        on_fill = policy.on_fill
        victim = policy.victim
        hits = 0
        misses = 0
        evictions = 0
        writebacks = 0

        if writes is None:
            writes = (False,) * len(addresses)
        for address, is_write in zip(addresses, writes):
            set_index = (address >> offset_bits) & index_mask
            tag = address >> tag_shift
            if observe is not None:
                observe(set_index, tag, is_write)
            cache_set = sets[set_index]
            tag_to_way = cache_set._tag_to_way
            way = tag_to_way.get(tag)
            if way is not None:
                hits += 1
                on_hit(set_index, way)
                if is_write:
                    cache_set._dirty[way] = True
                continue
            misses += 1
            per_set_misses[set_index] += 1
            if len(tag_to_way) == cache_set._ways:
                fill_way = victim(set_index, cache_set)
                _evicted, was_dirty = cache_set.evict(fill_way)
                evictions += 1
                if was_dirty:
                    writebacks += 1
            else:
                fill_way = cache_set.free_way()
            cache_set.install(fill_way, tag, dirty=is_write)
            on_fill(set_index, fill_way, tag)

        stats.accesses += hits + misses
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        return hits

    def lookup(self, address: int, is_write: bool = False) -> AccessResult:
        """Reference one address *without* filling on a miss.

        Identical to :meth:`access` on the hit path (reference counted,
        policy observed, recency/dirty updated); a miss is counted and
        observed but allocates nothing, so the caller decides where the
        line lands. This is the probe step of the deferred tier walk
        (:class:`~repro.tiers.topology.TieredCache`): leave-copy-down
        placement must know which tier serves the request *before* any
        tier fills.
        """
        set_index = (address >> self._offset_bits) & self._index_mask
        tag = address >> self._tag_shift
        stats = self.stats
        stats.accesses += 1
        policy = self.policy
        if not self._observe_is_noop:
            policy.observe(set_index, tag, is_write)
        cache_set = self.sets[set_index]
        way = cache_set._tag_to_way.get(tag)
        if way is not None:
            stats.hits += 1
            policy.on_hit(set_index, way)
            if is_write:
                cache_set._dirty[way] = True
            return self._hit_results[set_index]
        stats.misses += 1
        stats.per_set_misses[set_index] += 1
        return AccessResult(hit=False, set_index=set_index)

    def admit(self, address: int, dirty: bool = False) -> AccessResult:
        """Install the line holding ``address`` without counting a
        reference.

        The fill step of the deferred tier walk: the placement strategy
        has already decided this tier keeps a copy, so the line is
        installed (evicting a victim if the set is full, with eviction
        and writeback counted as usual) but accesses/hits/misses are
        untouched and the policy's ``observe`` is not called — the
        demand reference was already observed by :meth:`lookup`.
        Admitting a resident line is a no-op beyond optionally marking
        it dirty.
        """
        set_index = (address >> self._offset_bits) & self._index_mask
        tag = address >> self._tag_shift
        cache_set = self.sets[set_index]
        way = cache_set._tag_to_way.get(tag)
        if way is not None:
            if dirty:
                cache_set._dirty[way] = True
            return self._hit_results[set_index]
        evicted_tag = None
        writeback = False
        if len(cache_set._tag_to_way) == cache_set._ways:
            fill_way = self.policy.victim(set_index, cache_set)
            evicted_tag, was_dirty = cache_set.evict(fill_way)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.writebacks += 1
                writeback = True
        else:
            fill_way = cache_set.free_way()
        cache_set.install(fill_way, tag, dirty=dirty)
        self.policy.on_fill(set_index, fill_way, tag)
        return AccessResult(
            hit=False,
            set_index=set_index,
            evicted_tag=evicted_tag,
            writeback=writeback,
        )

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        set_index = self.config.set_index(address)
        return self.sets[set_index].find(self.config.tag(address)) is not None

    def invalidate(self, address: int) -> bool:
        """Remove the line holding ``address`` if present.

        Models coherence invalidations; returns True if a line was
        removed. The policy is notified so ordered structures stay
        consistent.
        """
        set_index = self.config.set_index(address)
        tag = self.config.tag(address)
        cache_set = self.sets[set_index]
        way = cache_set.find(tag)
        if way is None:
            return False
        cache_set.evict(way)
        self.policy.on_invalidate(set_index, way)
        self.stats.invalidations += 1
        return True

    def resident_block_count(self) -> int:
        """Total valid lines across all sets (testing/inspection aid)."""
        return sum(s.occupancy() for s in self.sets)
