"""The set-associative cache with pluggable replacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache_set import CacheSet
from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.policies.base import ReplacementPolicy


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: whether the reference hit.
        set_index: the set the reference mapped to.
        evicted_tag: tag of the block displaced to make room, or None
            (hit, or fill into an invalid way).
        writeback: whether the displaced block was dirty.
    """

    hit: bool
    set_index: int
    evicted_tag: Optional[int] = None
    writeback: bool = False


class SetAssociativeCache:
    """A conventional set-associative cache driven by a replacement policy.

    The cache is deliberately unaware of whether its policy is a simple
    one (LRU, LFU, ...) or the paper's adaptive policy: adaptivity lives
    entirely in the policy object, mirroring the hardware claim that the
    adaptive machinery sits beside — not inside — the standard tag/data
    arrays (Figure 1).

    Write handling is write-back/write-allocate: stores allocate on miss
    and mark the line dirty; evicting a dirty line counts a writeback.
    """

    def __init__(self, config: CacheConfig, policy: ReplacementPolicy):
        if policy.num_sets != config.num_sets or policy.ways != config.ways:
            raise ValueError(
                "policy geometry "
                f"({policy.num_sets} sets x {policy.ways} ways) does not match "
                f"cache geometry ({config.num_sets} sets x {config.ways} ways)"
            )
        self.config = config
        self.policy = policy
        self.sets = [CacheSet(config.ways) for _ in range(config.num_sets)]
        self.stats = CacheStats(per_set_misses=[0] * config.num_sets)

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Reference one byte address; returns the access outcome."""
        set_index = self.config.set_index(address)
        tag = self.config.tag(address)
        return self.access_decomposed(set_index, tag, is_write)

    def access_decomposed(
        self, set_index: int, tag: int, is_write: bool = False
    ) -> AccessResult:
        """Reference an already-decomposed (set, tag) pair.

        The hierarchy and the experiment harness pre-decompose addresses
        once and replay them against several caches, so this entry point
        avoids repeating the shift/mask work per cache.
        """
        self.stats.accesses += 1
        self.policy.observe(set_index, tag, is_write)
        cache_set = self.sets[set_index]

        way = cache_set.find(tag)
        if way is not None:
            self.stats.hits += 1
            self.policy.on_hit(set_index, way)
            if is_write:
                cache_set.mark_dirty(way)
            return AccessResult(hit=True, set_index=set_index)

        self.stats.misses += 1
        self.stats.per_set_misses[set_index] += 1

        evicted_tag = None
        writeback = False
        fill_way = cache_set.free_way()
        if fill_way is None:
            fill_way = self.policy.victim(set_index, cache_set)
            evicted_tag, was_dirty = cache_set.evict(fill_way)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.writebacks += 1
                writeback = True

        cache_set.install(fill_way, tag, dirty=is_write)
        self.policy.on_fill(set_index, fill_way, tag)
        return AccessResult(
            hit=False,
            set_index=set_index,
            evicted_tag=evicted_tag,
            writeback=writeback,
        )

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        set_index = self.config.set_index(address)
        return self.sets[set_index].find(self.config.tag(address)) is not None

    def invalidate(self, address: int) -> bool:
        """Remove the line holding ``address`` if present.

        Models coherence invalidations; returns True if a line was
        removed. The policy is notified so ordered structures stay
        consistent.
        """
        set_index = self.config.set_index(address)
        tag = self.config.tag(address)
        cache_set = self.sets[set_index]
        way = cache_set.find(tag)
        if way is None:
            return False
        cache_set.evict(way)
        self.policy.on_invalidate(set_index, way)
        self.stats.invalidations += 1
        return True

    def resident_block_count(self) -> int:
        """Total valid lines across all sets (testing/inspection aid)."""
        return sum(s.occupancy() for s in self.sets)
