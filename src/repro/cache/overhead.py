"""SRAM storage accounting for adaptive caches (Section 3.2).

Reproduces the paper's bit-counting: a conventional 512 KB 8-way cache
with 64 B lines needs 544 KB of SRAM (data + tags + meta); full-tag
adaptivity raises that to 598 KB (+9.9%); 8-bit partial tags cut it to
566 KB (+4.0%); with 128 B lines the overhead is 2.1%. SBAR-style set
sampling (Section 4.7) reduces it to ~0.16% (full-tag leaders) and
~0.09% (partial-tag leaders).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.utils.bitops import ilog2

BITS_PER_KB = 8 * 1024


@dataclass(frozen=True)
class StorageModel:
    """Bit-level storage model of a (possibly adaptive) cache.

    Attributes:
        config: geometry of the underlying cache.
        state_bits_per_line: non-tag metadata per line in the main array
            (LRU state, valid, dirty, coherence, ...). The paper's
            footnote 2 budgets tag+meta at "about 32 bits" per line with
            a 24-bit tag, i.e. 8 bits of state.
        policy_meta_bits: per-line policy metadata in each parallel tag
            array ("4± bits ... e.g., LRU ordering or LFU counts").
        history_bits_per_set: miss-history buffer width m (8 = the
            associativity of the evaluated cache).
    """

    config: CacheConfig
    state_bits_per_line: int = 8
    policy_meta_bits: int = 4
    history_bits_per_set: int = 8

    @property
    def recency_bits_per_line(self) -> int:
        """LRU state per line, deducted once from the duplicated arrays.

        The paper avoids double-counting LRU meta-data between the main
        tag array and the LRU component array: 3 bits/line for an 8-way
        cache (the "minus 3KB" of Section 3.2).
        """
        return ilog2(self.config.ways) if self.config.ways > 1 else 1

    def data_kb(self) -> float:
        """Data array size in KB."""
        return self.config.size_bytes / 1024

    def main_tag_meta_kb(self) -> float:
        """Main tag array + per-line state, in KB."""
        bits = self.config.num_lines * (
            self.config.tag_bits + self.state_bits_per_line
        )
        return bits / BITS_PER_KB

    def conventional_total_kb(self) -> float:
        """Total SRAM of the conventional cache (data + tags + state)."""
        return self.data_kb() + self.main_tag_meta_kb()

    def parallel_array_kb(self, partial_bits: int = None) -> float:
        """One parallel tag array, full tags or ``partial_bits``-bit tags."""
        tag_bits = self.config.tag_bits if partial_bits is None else partial_bits
        if tag_bits <= 0:
            raise ValueError(f"tag bits must be positive, got {tag_bits}")
        bits = self.config.num_lines * (tag_bits + self.policy_meta_bits)
        return bits / BITS_PER_KB

    def history_kb(self) -> float:
        """All per-set miss-history buffers."""
        return self.config.num_sets * self.history_bits_per_set / BITS_PER_KB

    def lru_dedup_kb(self) -> float:
        """LRU metadata counted once instead of twice (subtracted)."""
        return self.config.num_lines * self.recency_bits_per_line / BITS_PER_KB

    def adaptive_total_kb(
        self, partial_bits: int = None, num_components: int = 2
    ) -> float:
        """Total SRAM of the adaptive cache.

        Args:
            partial_bits: width of partial tags in the parallel arrays;
                None means full tags.
            num_components: number of component policies (the paper's
                five-policy experiment needs five parallel arrays).
        """
        if num_components < 2:
            raise ValueError(
                f"adaptivity needs at least 2 components, got {num_components}"
            )
        return (
            self.conventional_total_kb()
            + num_components * self.parallel_array_kb(partial_bits)
            + self.history_kb()
            - self.lru_dedup_kb()
        )

    def adaptive_overhead_percent(
        self, partial_bits: int = None, num_components: int = 2
    ) -> float:
        """Adaptive overhead relative to the conventional total, in %."""
        base = self.conventional_total_kb()
        extra = self.adaptive_total_kb(partial_bits, num_components) - base
        return 100.0 * extra / base

    def sbar_total_kb(self, leader_sets: int, partial_bits: int = None) -> float:
        """Total SRAM of the SBAR-like cache (Section 4.7).

        Only ``leader_sets`` sets carry the duplicated tag structures and
        history; followers carry nothing extra (policy metadata for the
        resident blocks is already part of the baseline state bits).
        """
        if not 0 < leader_sets <= self.config.num_sets:
            raise ValueError(
                f"leader_sets must be in (0, {self.config.num_sets}], "
                f"got {leader_sets}"
            )
        tag_bits = self.config.tag_bits if partial_bits is None else partial_bits
        leader_lines = leader_sets * self.config.ways
        parallel_bits = 2 * leader_lines * (tag_bits + self.policy_meta_bits)
        history_bits = leader_sets * self.history_bits_per_set
        return (
            self.conventional_total_kb()
            + (parallel_bits + history_bits) / BITS_PER_KB
        )

    def sbar_overhead_percent(
        self, leader_sets: int, partial_bits: int = None
    ) -> float:
        """SBAR overhead relative to the conventional total, in %."""
        base = self.conventional_total_kb()
        extra = self.sbar_total_kb(leader_sets, partial_bits) - base
        return 100.0 * extra / base
