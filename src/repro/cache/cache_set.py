"""One cache set: tags, valid and dirty bits."""

from __future__ import annotations

from typing import List, Optional

from repro.policies.base import SetView


class CacheSet(SetView):
    """Storage for a single set of a set-associative cache.

    Implements :class:`~repro.policies.base.SetView` so it can be handed
    directly to a replacement policy's ``victim`` method. Lookups use a
    tag->way dict, which keeps high-associativity simulation (the paper
    sweeps up to 32-way) O(1) per access.
    """

    __slots__ = ("_ways", "_tags", "_dirty", "_tag_to_way")

    def __init__(self, ways: int):
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self._ways = ways
        self._tags: List[Optional[int]] = [None] * ways
        self._dirty = [False] * ways
        self._tag_to_way = {}

    @property
    def ways(self) -> int:
        return self._ways

    def tag_at(self, way: int) -> Optional[int]:
        return self._tags[way]

    def valid_ways(self) -> List[int]:
        return [w for w, t in enumerate(self._tags) if t is not None]

    def valid_count(self) -> int:
        """Number of valid ways (O(1); see :meth:`SetView.valid_count`)."""
        return len(self._tag_to_way)

    def occupancy(self) -> int:
        """Number of valid blocks."""
        return len(self._tag_to_way)

    def is_full(self) -> bool:
        """Whether every way holds a valid block."""
        return len(self._tag_to_way) == self._ways

    def find(self, tag: int) -> Optional[int]:
        """Way holding ``tag``, or None."""
        return self._tag_to_way.get(tag)

    def free_way(self) -> Optional[int]:
        """Lowest-index invalid way, or None if the set is full."""
        for way, tag in enumerate(self._tags):
            if tag is None:
                return way
        return None

    def is_dirty(self, way: int) -> bool:
        """Whether the block in ``way`` has been written since fill."""
        return self._dirty[way]

    def mark_dirty(self, way: int) -> None:
        """Set the dirty bit of the (valid) block in ``way``."""
        if self._tags[way] is None:
            raise ValueError(f"cannot dirty invalid way {way}")
        self._dirty[way] = True

    def install(self, way: int, tag: int, dirty: bool = False) -> None:
        """Place ``tag`` in ``way``, which must be empty."""
        if self._tags[way] is not None:
            raise ValueError(f"way {way} already holds tag {self._tags[way]:#x}")
        if tag in self._tag_to_way:
            raise ValueError(f"tag {tag:#x} already present in set")
        self._tags[way] = tag
        self._dirty[way] = dirty
        self._tag_to_way[tag] = way

    def evict(self, way: int) -> tuple:
        """Remove the block in ``way``; returns (tag, was_dirty)."""
        tag = self._tags[way]
        if tag is None:
            raise ValueError(f"cannot evict invalid way {way}")
        dirty = self._dirty[way]
        self._tags[way] = None
        self._dirty[way] = False
        del self._tag_to_way[tag]
        return tag, dirty

    def resident_tags(self) -> List[int]:
        """Tags of all valid blocks (unordered)."""
        return list(self._tag_to_way)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the per-way tags and dirty bits.

        The tag->way index is derived state and is rebuilt on load.
        """
        return {"tags": list(self._tags), "dirty": list(self._dirty)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._tags = [None if t is None else int(t) for t in state["tags"]]
        self._dirty = [bool(d) for d in state["dirty"]]
        self._tag_to_way = {
            tag: way for way, tag in enumerate(self._tags) if tag is not None
        }
