"""Set-associative cache simulator substrate.

This package provides the conventional machinery the paper's adaptive
scheme sits on top of: cache geometry and address decomposition
(:class:`CacheConfig`), a set-associative cache with pluggable
replacement (:class:`SetAssociativeCache`), tags-only shadow arrays
(:class:`TagArray` — the paper's "parallel tag structures"), the SRAM
storage-overhead accounting of Section 3.2, and a simple L1/L2/memory
hierarchy used by the timing model.
"""

from repro.cache.config import CacheConfig
from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.cache_set import CacheSet
from repro.cache.stats import CacheStats
from repro.cache.tag_array import TagArray
from repro.cache.overhead import StorageModel
from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.cache.skewed import SkewedAccessResult, SkewedAssociativeCache

__all__ = [
    "CacheConfig",
    "AccessResult",
    "SetAssociativeCache",
    "CacheSet",
    "CacheStats",
    "TagArray",
    "StorageModel",
    "CacheHierarchy",
    "HierarchyResult",
    "SkewedAccessResult",
    "SkewedAssociativeCache",
]
