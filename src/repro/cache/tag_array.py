"""Parallel (shadow) tag arrays.

A :class:`TagArray` tracks what a cache managed by one component policy
*would* contain, without storing any data — the paper's "parallel tag
structures" (Section 2.2). It has the same number of sets and ways as the
real cache and runs its component policy on every reference.

Tags may be transformed before storage (the partial-tag optimization of
Section 3.1): the array is constructed with a ``tag_transform`` callable,
identity for full tags or a :class:`~repro.core.partial.PartialTagScheme`
for partial ones. With partial tags, distinct full tags can collide
(false-positive hits); that imprecision is exactly what the paper
evaluates in Figure 5 and is deliberately preserved here.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.cache_set import CacheSet
from repro.policies.base import ReplacementPolicy


def identity_tag(tag: int) -> int:
    """Full-tag transform: store the tag unchanged."""
    return tag


class ShadowOutcome:
    """What happened when a reference was replayed into a shadow array.

    Attributes:
        missed: the component policy's cache would have missed.
        victim_tag: the (transformed) tag the component policy evicted to
            make room, or None (hit, or fill into an empty way).

    A ``__slots__`` class rather than a dataclass: the adaptive policy
    creates one per component per access, so allocation cost is on the
    hot path — and hits share a single preallocated instance.
    """

    __slots__ = ("missed", "victim_tag")

    def __init__(self, missed: bool, victim_tag: Optional[int] = None):
        self.missed = missed
        self.victim_tag = victim_tag

    def __repr__(self) -> str:
        return (
            f"ShadowOutcome(missed={self.missed}, "
            f"victim_tag={self.victim_tag})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, ShadowOutcome):
            return NotImplemented
        return (
            self.missed == other.missed
            and self.victim_tag == other.victim_tag
        )


#: Shared outcome for the (dominant) shadow-hit case; never mutated.
_SHADOW_HIT = ShadowOutcome(missed=False)
#: Shared outcome for a miss that filled an empty way (no victim).
_SHADOW_FILL = ShadowOutcome(missed=True)


class TagArray:
    """Tags-only cache simulating one component policy's contents."""

    def __init__(
        self,
        num_sets: int,
        ways: int,
        policy: ReplacementPolicy,
        tag_transform: Callable[[int], int] = identity_tag,
    ):
        if policy.num_sets != num_sets or policy.ways != ways:
            raise ValueError(
                "policy geometry "
                f"({policy.num_sets}x{policy.ways}) does not match tag array "
                f"geometry ({num_sets}x{ways})"
            )
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self.tag_transform = tag_transform
        self.sets = [CacheSet(ways) for _ in range(num_sets)]
        self.misses = 0
        self.accesses = 0
        self.per_set_misses = [0] * num_sets
        # Component policies are usually simple ones whose observe() is
        # the base-class no-op; detect that once and skip the call.
        self._observe = (
            None
            if type(policy).observe is ReplacementPolicy.observe
            else policy.observe
        )
        self._identity = tag_transform is identity_tag

    def lookup_update(
        self, set_index: int, full_tag: int, is_write: bool = False
    ) -> ShadowOutcome:
        """Replay one reference: probe, then update as the policy would.

        Shadow replays run once per component per access (the adaptive
        policy's ``observe`` hook), so this is as hot as the real
        cache's lookup; hit and empty-fill outcomes are shared
        singletons and the tag transform is skipped for full tags.
        """
        self.accesses += 1
        stored = full_tag if self._identity else self.tag_transform(full_tag)
        shadow_set = self.sets[set_index]
        policy = self.policy
        if self._observe is not None:
            self._observe(set_index, stored, is_write)

        way = shadow_set._tag_to_way.get(stored)
        if way is not None:
            policy.on_hit(set_index, way)
            return _SHADOW_HIT

        self.misses += 1
        self.per_set_misses[set_index] += 1
        if len(shadow_set._tag_to_way) == shadow_set._ways:
            fill_way = policy.victim(set_index, shadow_set)
            victim_tag, _ = shadow_set.evict(fill_way)
            outcome = ShadowOutcome(missed=True, victim_tag=victim_tag)
        else:
            fill_way = shadow_set.free_way()
            outcome = _SHADOW_FILL
        shadow_set.install(fill_way, stored)
        policy.on_fill(set_index, fill_way, stored)
        return outcome

    def contains_full(self, set_index: int, full_tag: int) -> bool:
        """Would this component cache (appear to) hold ``full_tag``?

        With partial tags this can be a false positive — by design.
        """
        stored = self.tag_transform(full_tag)
        return self.sets[set_index].find(stored) is not None

    def contains_stored(self, set_index: int, stored_tag: int) -> bool:
        """Membership test on an already-transformed tag."""
        return self.sets[set_index].find(stored_tag) is not None

    def corrupt_stored(
        self, set_index: int, old_stored: int, new_stored: int
    ) -> bool:
        """Overwrite a resident stored tag in place (fault-injection hook).

        Models bit flips in the shadow array's tag SRAM: the block in
        the way holding ``old_stored`` now claims to be ``new_stored``,
        keeping its per-way policy metadata (recency, frequency). If the
        flipped tag aliases a tag already resident in the set, the block
        is simply dropped — exactly the information loss partial tags
        already tolerate by design.

        Shadow state is performance-only: corrupting it can shift which
        component the adaptive policy imitates but can never make the
        *real* cache serve wrong data.

        Returns:
            True if a resident tag was corrupted (or dropped to
            aliasing), False if ``old_stored`` was not resident.
        """
        shadow_set = self.sets[set_index]
        way = shadow_set.find(old_stored)
        if way is None or new_stored == old_stored:
            return False
        shadow_set.evict(way)
        if shadow_set.find(new_stored) is not None:
            # The corrupted tag collides with another resident block:
            # the way turns invalid and will be refilled on a later miss.
            self.policy.on_invalidate(set_index, way)
        else:
            shadow_set.install(way, new_stored)
        return True

    def resident_tags(self, set_index: int) -> List[int]:
        """Transformed tags currently resident in ``set_index``."""
        return self.sets[set_index].resident_tags()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the shadow contents and counters.

        Deliberately excludes the component policy's state: the policy
        object is shared with (and saved by) its owning
        :class:`~repro.core.adaptive.AdaptivePolicy`, and saving it from
        both sides would restore it twice.
        """
        return {
            "sets": [s.state_dict() for s in self.sets],
            "misses": self.misses,
            "accesses": self.accesses,
            "per_set_misses": list(self.per_set_misses),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        for cache_set, set_state in zip(self.sets, state["sets"]):
            cache_set.load_state_dict(set_state)
        self.misses = int(state["misses"])
        self.accesses = int(state["accesses"])
        self.per_set_misses = [int(m) for m in state["per_set_misses"]]
