"""Golden-trace regression digests for the named workload suite.

A *golden digest* pins the exact integer behaviour of the simulator on
a small, fast slice of the named suite: per (workload, policy) —
accesses, misses, MPKI, evictions, writebacks, and for the adaptive
policy the per-set selector votes, switch count and fallback evictions.
The digest lives under ``tests/golden/golden.json`` and is compared
bit-for-bit, so any change to policy decisions, workload generation or
the adaptive selector shows up as a named (workload, policy, field)
difference instead of a silently shifted MPKI.

Workflow (also via ``repro-experiments golden``):

* ``golden --check`` — recompute and diff against the pinned file;
* ``golden --regen`` — rewrite the pinned file (the JSON is rendered
  with sorted keys and fixed float rounding, so regeneration is
  byte-deterministic and diffs are reviewable).

Timing simulation is deliberately excluded: the digest covers the cache
decision machinery the oracle proves correct, and stays cheap enough to
run in tier-1 tests.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.core.adaptive import AdaptivePolicy
from repro.experiments.base import build_l2_policy, make_setup
from repro.utils.atomicio import atomic_write_text
from repro.workloads.suite import build_workload

#: Scale and trace length the digests are pinned at (small on purpose —
#: the digest guards decisions, not performance claims).
GOLDEN_SCALE = "mini"
GOLDEN_ACCESSES = 4000

#: Workloads covered: the paper's headline behaviours — LRU-friendly,
#: LFU-friendly, phase-changing, set-divergent and dithering.
GOLDEN_WORKLOADS = ("lucas", "art-1", "ammp", "mcf", "mgrid", "unepic")

#: Policies digested per workload.
GOLDEN_POLICIES = ("lru", "lfu", "adaptive")

#: Placement strategies digested over the tiered KV topology, and the
#: key stream they replay (the phase-changing stream exercises every
#: adaptive partition selector).
GOLDEN_PLACEMENTS = ("lce", "lcd", "problcd", "adaptive")
GOLDEN_TIER_WORKLOAD = "phase-zipf"

#: Format tag bumped whenever the digest schema itself changes.
GOLDEN_FORMAT = 2


def default_golden_path() -> str:
    """Repo-relative pinned digest location (``tests/golden/golden.json``)."""
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    return str(repo_root / "tests" / "golden" / "golden.json")


def _digest_one(workload: str, policy_kind: str) -> Dict:
    """Digest one (workload, policy) cell of the golden matrix."""
    setup = make_setup(GOLDEN_SCALE, accesses=GOLDEN_ACCESSES)
    trace = build_workload(workload, setup.l2, accesses=GOLDEN_ACCESSES)
    policy = build_l2_policy(setup.l2, policy_kind)
    cache = SetAssociativeCache(setup.l2, policy)
    addresses, writes = trace.memory_stream()
    cache.access_many(addresses, writes)

    stats = cache.stats
    kilo_instructions = trace.instruction_count / 1000.0
    digest = {
        "accesses": stats.accesses,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "mpki": round(stats.misses / kilo_instructions, 6),
    }
    if isinstance(policy, AdaptivePolicy):
        decisions = policy.drain_decisions()
        votes = [sum(row[i] for row in decisions)
                 for i in range(len(policy.components))]
        majority = "".join(
            "-" if sum(row) == 0
            else str(max(range(len(row)), key=row.__getitem__))
            for row in decisions
        )
        digest["selector"] = {
            "votes": votes,
            "per_set_majority": majority,
            "switches": policy.selector_switches(),
            "fallback_evictions": policy.fallback_evictions,
            "component_misses": policy.component_misses(),
        }
    return digest


def _digest_tiers(placement_name: str) -> Dict:
    """Digest one placement strategy over the tiered KV topology.

    Replays the pinned key stream through the near/far topology of the
    ext-tiers experiment and records the integer serving counters —
    where every access was served from, what the backing absorbed, and
    the exact latency total — plus, for the adaptive strategy, the
    per-partition placement votes, majority and switch count. Any
    change to a placement decision or to the tier walk moves one of
    these fields.
    """
    from repro.experiments.ext_online import build_key_stream
    from repro.experiments.ext_tiers import build_topology

    setup = make_setup(GOLDEN_SCALE, accesses=GOLDEN_ACCESSES)
    capacity = setup.l2.num_lines
    keys = build_key_stream(GOLDEN_TIER_WORKLOAD, capacity, setup, seed=0)
    front = build_topology(placement_name, capacity, seed=0)
    for key in keys:
        front.get_or_compute(key, lambda k: k)
    stats = front.stats()
    digest = {
        "gets": stats["gets"],
        "tier_hits": stats["tier_hits"],
        "backing_fetches": stats["backing_fetches"],
        "serves": dict(stats["serves"]),
        "total_latency": stats["total_latency"],
    }
    placement = stats["placement"]
    if placement_name == "adaptive":
        digest["placement"] = {
            "components": placement["components"],
            "votes": placement["votes"],
            "majority": placement["majority"],
            "switches": placement["switches"],
            "decisions": placement["decisions"],
        }
    return digest


def compute_digests() -> Dict:
    """The full golden digest for the pinned scale/workloads/policies."""
    digests = {
        "format": GOLDEN_FORMAT,
        "scale": GOLDEN_SCALE,
        "accesses": GOLDEN_ACCESSES,
        "experiments": {},
        "tiers": {
            placement: _digest_tiers(placement)
            for placement in GOLDEN_PLACEMENTS
        },
    }
    for workload in GOLDEN_WORKLOADS:
        digests["experiments"][workload] = {
            policy: _digest_one(workload, policy)
            for policy in GOLDEN_POLICIES
        }
    return digests


def render_digests(digests: Dict) -> str:
    """Canonical byte-deterministic JSON rendering of a digest tree."""
    return json.dumps(digests, indent=2, sort_keys=True) + "\n"


def _flatten(tree: Dict, prefix: str = "") -> Dict[str, object]:
    """Flatten a digest tree to dotted-path leaves for precise diffs."""
    flat: Dict[str, object] = {}
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def diff_digests(pinned: Dict, current: Dict) -> List[str]:
    """Leaf-level differences between two digest trees, one per line."""
    flat_pinned = _flatten(pinned)
    flat_current = _flatten(current)
    lines = []
    for path in sorted(set(flat_pinned) | set(flat_current)):
        old = flat_pinned.get(path, "<absent>")
        new = flat_current.get(path, "<absent>")
        if old != new:
            lines.append(f"{path}: pinned={old!r} current={new!r}")
    return lines


def check_golden(path: Optional[str] = None) -> Tuple[bool, str]:
    """Compare the pinned digest file against freshly computed digests.

    Returns:
        ``(ok, message)`` — on failure the message lists every leaf
        difference and how to regenerate.
    """
    path = path or default_golden_path()
    try:
        pinned = json.loads(pathlib.Path(path).read_text())
    except FileNotFoundError:
        return False, (f"no golden file at {path}; run "
                       "'repro-experiments golden --regen' to create it")
    except json.JSONDecodeError as exc:
        return False, f"golden file {path} is not valid JSON: {exc}"
    current = compute_digests()
    differences = diff_digests(pinned, current)
    if differences:
        body = "\n".join(f"  {line}" for line in differences)
        return False, (
            f"golden digests diverged from {path} "
            f"({len(differences)} field(s)):\n{body}\n"
            "If the change is intended, re-pin with "
            "'repro-experiments golden --regen'."
        )
    return True, f"golden digests match {path}"


def regen_golden(path: Optional[str] = None) -> str:
    """Recompute and atomically rewrite the pinned digest file.

    Returns:
        The path written. Rendering is canonical (sorted keys, fixed
        rounding), so two regenerations of the same code produce
        byte-identical files.
    """
    path = path or default_golden_path()
    pathlib.Path(path).parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, render_digests(compute_digests()))
    return path
