"""The differential harness: real engines versus reference specs.

A *pair* couples one real engine with the reference spec configured
identically, and replays both from the same event stream. Every event
yields two :class:`~repro.oracle.spec.Decision` records — hit/miss,
evicted tag, and (for adaptive policies) the imitated component and the
miss-history state — which must agree exactly; afterwards the resident
contents are compared too. The first disagreement is reported as a
:class:`Divergence` carrying the step, the event and the replayable
stream seed.

Three entry points:

* :func:`run_differential` — one pair, one stream, first divergence;
* :func:`differential_campaign` — every registered policy (plus the
  adaptive combination) x {hardware set array, online shard} over many
  seeded streams;
* :func:`check_cross_engine` — the same policy instance driving a 1-set
  :class:`~repro.cache.cache.SetAssociativeCache` and a
  :class:`~repro.online.shard.CacheShard` from one key stream, proving
  the two engines are the same cache in different clothes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.core.adaptive import AdaptivePolicy
from repro.core.multi import make_adaptive
from repro.online.keyspace import key_fingerprint, partial_fingerprint_transform
from repro.online.policies import build_shard_policy
from repro.online.shard import CacheShard
from repro.oracle.spec import (
    Decision,
    PlacementDecision,
    SpecCache,
    SpecTieredKV,
    make_adaptive_spec,
    make_placement_spec,
    make_spec,
    placement_spec_names,
)
from repro.oracle.streams import hardware_stream, shard_ops
from repro.policies.registry import available_policies, make_policy
from repro.tiers.adaptive import AdaptivePlacement
from repro.tiers.kv import KVTier, TieredKVCache
from repro.tiers.placement import make_placement

#: Policies whose constructors take a ``seed`` argument.
_SEEDED_POLICIES = ("random", "bip")

#: Default shadow-directory width for adaptive shard policies.
_SHARD_PARTIAL_BITS = 16


@dataclass(frozen=True)
class Divergence:
    """First point where an engine and its spec disagreed.

    Attributes:
        step: 0-based index of the offending event in the stream.
        event: the event itself (a hardware triple or a shard op pair).
        engine: the real engine's decision.
        spec: the reference spec's decision.
        label: which pair diverged (policy and engine kind).
        seed: stream seed; replaying it reproduces the divergence.
        detail: extra context — e.g. a resident-contents mismatch found
            after the decisions themselves agreed.
    """

    step: int
    event: tuple
    engine: Decision
    spec: Decision
    label: str
    seed: Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        """Human-readable one-paragraph report of the divergence."""
        lines = [
            f"[{self.label}] diverged at step {self.step} "
            f"on event {self.event!r} (seed={self.seed})",
            f"  engine: {self.engine}",
            f"  spec:   {self.spec}",
        ]
        if self.detail:
            lines.append(f"  detail: {self.detail}")
        return "\n".join(lines)


def _adaptive_decision(
    policy: AdaptivePolicy, set_index: int, hit: bool,
    evicted_tag: Optional[int],
) -> Decision:
    """Assemble an engine-side Decision with adaptive introspection.

    The imitated component equals ``best_component()`` read *after* the
    access: the history is recorded in ``observe`` (before the victim
    choice) and untouched until the next access, so the post-access
    reading reproduces the choice ``victim`` made, ties included.
    """
    selector = policy.selectors[set_index]
    history = tuple(
        selector.history.misses(i) for i in range(len(policy.components))
    )
    imitated = None
    if evicted_tag is not None:
        imitated = selector.best_component()
    return Decision(hit=hit, evicted_tag=evicted_tag, imitated=imitated,
                    history=history)


def _seed_kwargs(name: str, seed: int) -> dict:
    """Constructor kwargs carrying the seed, for policies that take one."""
    return {"seed": seed} if name in _SEEDED_POLICIES else {}


class HardwarePair:
    """A :class:`SetAssociativeCache` coupled with its reference spec.

    Events are ``(set_index, tag, is_write)`` triples (see
    :func:`repro.oracle.streams.hardware_stream`).
    """

    def __init__(self, cache: SetAssociativeCache, spec: SpecCache,
                 label: str):
        self.cache = cache
        self.spec = spec
        self.label = label

    @property
    def policy(self):
        """The real engine's replacement policy (fault-injection surface)."""
        return self.cache.policy

    def apply(self, event: Tuple[int, int, bool]) -> Tuple[Decision, Decision]:
        """Replay one access through both sides; returns their decisions."""
        set_index, tag, is_write = event
        result = self.cache.access_decomposed(set_index, tag, is_write)
        if isinstance(self.cache.policy, AdaptivePolicy):
            engine = _adaptive_decision(
                self.cache.policy, set_index, result.hit, result.evicted_tag
            )
        else:
            engine = Decision(hit=result.hit, evicted_tag=result.evicted_tag)
        spec = self.spec.access(set_index, tag, is_write)
        return engine, spec

    def verify_state(self, event: Tuple[int, int, bool]) -> Optional[str]:
        """Way-exact resident-contents check of the touched set."""
        set_index = event[0]
        engine_slots = [
            self.cache.sets[set_index].tag_at(w)
            for w in range(self.cache.config.ways)
        ]
        spec_slots = list(self.spec.slots[set_index])
        if engine_slots != spec_slots:
            return (f"set {set_index} contents differ: engine={engine_slots} "
                    f"spec={spec_slots}")
        return None


class ShardPair:
    """A :class:`CacheShard` coupled with its reference spec.

    Events are ``(op, key)`` pairs (see
    :func:`repro.oracle.streams.shard_ops`); the shard is observed purely
    through its public API — a sentinel default detects ``get`` misses, a
    recording compute function detects demand fills, and
    ``resident_keys()`` diffs expose evictions.
    """

    _MISS = object()

    def __init__(self, shard: CacheShard, spec: SpecCache, label: str):
        self.shard = shard
        self.spec = spec
        self.label = label

    @property
    def policy(self):
        """The shard's replacement policy (fault-injection surface)."""
        return self.shard.policy

    def _evicted_fingerprint(self, before: set, after: set) -> Optional[int]:
        """Fingerprint of the key that left the shard, if any."""
        gone = before - after
        if not gone:
            return None
        (key,) = gone
        return key_fingerprint(key)

    def apply(self, event: Tuple[str, int]) -> Tuple[Decision, Decision]:
        """Replay one shard operation through both sides."""
        op, key = event
        fingerprint = key_fingerprint(key)

        if op == "get":
            value = self.shard.get(key, default=self._MISS)
            hit = value is not self._MISS
            engine = self._engine_decision(hit, None)
            spec = self.spec.access(0, fingerprint, False, fill_on_miss=False)
        elif op == "get_or_compute":
            before = set(self.shard.resident_keys())
            computed = []

            def compute(k):
                """Record that the shard missed and demanded a fill."""
                computed.append(k)
                return ("value", k)

            self.shard.get_or_compute(key, compute)
            after = set(self.shard.resident_keys())
            engine = self._engine_decision(
                not computed, self._evicted_fingerprint(before, after)
            )
            spec = self.spec.access(0, fingerprint, False)
        elif op == "put":
            before = set(self.shard.resident_keys())
            self.shard.put(key, ("value", key))
            after = set(self.shard.resident_keys())
            engine = self._engine_decision(
                key in before, self._evicted_fingerprint(before, after)
            )
            spec = self.spec.access(0, fingerprint, True)
        elif op == "delete":
            removed = self.shard.delete(key)
            engine = Decision(hit=removed)
            spec = self.spec.remove(0, fingerprint)
        else:
            raise ValueError(f"unknown shard op {op!r}")
        return engine, spec

    def _engine_decision(self, hit: bool, evicted: Optional[int]) -> Decision:
        """Wrap an observed shard outcome, adding adaptive introspection."""
        if isinstance(self.shard.policy, AdaptivePolicy):
            return _adaptive_decision(self.shard.policy, 0, hit, evicted)
        return Decision(hit=hit, evicted_tag=evicted)

    def verify_state(self, event: Tuple[str, int]) -> Optional[str]:
        """Resident fingerprints must match the spec's resident tags."""
        engine = sorted(
            key_fingerprint(k) for k in self.shard.resident_keys()
        )
        spec = sorted(self.spec.resident_in_way_order(0))
        if engine != spec:
            return f"residency differs: engine={engine} spec={spec}"
        return None


def build_hardware_pair(
    policy_name: str,
    num_sets: int = 4,
    ways: int = 4,
    seed: int = 0,
    components: Sequence[str] = ("lru", "lfu"),
) -> HardwarePair:
    """Couple a hardware cache and its spec for one registry policy.

    ``policy_name`` may be any registered policy or ``"adaptive"``
    (Algorithm 1 over ``components``, full tags). Seeded policies get
    ``seed`` on both sides, so the coupled RNG streams stay in lockstep.
    """
    config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways)
    if policy_name == "adaptive":
        component_kwargs = {
            name: _seed_kwargs(name, seed + 1) for name in components
        }
        policy = make_adaptive(
            num_sets, ways, components, seed=seed,
            component_kwargs=component_kwargs,
        )
        spec = make_adaptive_spec(
            num_sets, ways, components, seed=seed,
            component_kwargs=component_kwargs,
        )
    else:
        kwargs = _seed_kwargs(policy_name, seed)
        policy = make_policy(policy_name, num_sets, ways, **kwargs)
        spec = make_spec(policy_name, num_sets, ways, **kwargs)
    cache = SetAssociativeCache(config, policy)
    spec_cache = SpecCache(num_sets, ways, spec, allocation="lowest")
    return HardwarePair(cache, spec_cache, f"hardware:{policy_name}")


def build_shard_pair(
    policy_name: str,
    capacity: int = 8,
    seed: int = 0,
    components: Sequence[str] = ("lru", "lfu"),
) -> ShardPair:
    """Couple an online shard and its spec for one policy kind.

    Mirrors :func:`repro.online.policies.build_shard_policy` exactly:
    adaptive shards use partial (16-bit) fingerprint shadow directories,
    and only ``random`` components receive the seed.
    """
    policy = build_shard_policy(policy_name, capacity,
                                components=components, seed=seed)
    shard = CacheShard(capacity, policy)
    if policy_name == "adaptive":
        spec = make_adaptive_spec(
            1, capacity, components,
            tag_transform=partial_fingerprint_transform(_SHARD_PARTIAL_BITS),
            seed=seed,
            component_kwargs={"random": {"seed": seed}},
        )
    else:
        kwargs = {"seed": seed} if policy_name == "random" else {}
        spec = make_spec(policy_name, 1, capacity, **kwargs)
    spec_cache = SpecCache(1, capacity, spec, allocation="stack")
    return ShardPair(shard, spec_cache, f"shard:{policy_name}")


def run_differential(pair, events: Sequence[tuple],
                     seed: Optional[int] = None) -> Optional[Divergence]:
    """Replay ``events`` through a pair; returns the first divergence.

    Each event's two decisions are compared field-for-field, then the
    pair's resident contents are checked, so a silent state drift is
    caught at the access that introduced it rather than when it later
    changes a victim choice.
    """
    for step, event in enumerate(events):
        engine, spec = pair.apply(event)
        if engine != spec:
            return Divergence(step=step, event=event, engine=engine,
                              spec=spec, label=pair.label, seed=seed)
        detail = pair.verify_state(event)
        if detail is not None:
            return Divergence(step=step, event=event, engine=engine,
                              spec=spec, label=pair.label, seed=seed,
                              detail=detail)
    return None


@dataclass
class CampaignReport:
    """Outcome of a differential campaign.

    Attributes:
        runs: number of (pair, stream) runs executed.
        events: total events replayed across all runs.
        divergences: every first-divergence found (empty = all agree).
    """

    runs: int = 0
    events: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every stream agreed on every decision."""
        return not self.divergences

    def summary(self) -> str:
        """One line for logs, or full divergence reports on failure."""
        if self.ok:
            return (f"differential campaign: {self.runs} runs / "
                    f"{self.events} events, no divergence")
        reports = "\n".join(d.describe() for d in self.divergences)
        return (f"differential campaign: {len(self.divergences)} of "
                f"{self.runs} runs diverged\n{reports}")


def differential_campaign(
    policies: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ("hardware", "shard"),
    streams_per_combo: int = 16,
    stream_length: int = 150,
    num_sets: int = 4,
    ways: int = 4,
    capacity: int = 8,
    base_seed: int = 0,
) -> CampaignReport:
    """Differential-test policies x engines over seeded random streams.

    Args:
        policies: policy names to cover; defaults to every registered
            policy plus ``"adaptive"``.
        engines: ``"hardware"`` and/or ``"shard"``.
        streams_per_combo: independent streams per (policy, engine).
        stream_length: events per stream.
        num_sets, ways: hardware-pair geometry.
        capacity: shard-pair entry capacity.
        base_seed: offset folded into each stream's seed.

    Returns:
        A :class:`CampaignReport`; a failing run contributes its first
        :class:`Divergence` (with the replayable seed) and the campaign
        continues, so one report shows every broken combination.
    """
    if policies is None:
        policies = available_policies() + ["adaptive"]
    report = CampaignReport()
    for policy_index, policy_name in enumerate(policies):
        for engine_index, engine in enumerate(engines):
            for stream_index in range(streams_per_combo):
                seed = (base_seed + 10007 * policy_index
                        + 101 * engine_index + stream_index)
                if engine == "hardware":
                    pair = build_hardware_pair(
                        policy_name, num_sets, ways, seed=seed
                    )
                    events = hardware_stream(
                        seed, num_sets, ways, stream_length
                    )
                elif engine == "shard":
                    pair = build_shard_pair(policy_name, capacity, seed=seed)
                    events = shard_ops(seed, capacity, stream_length)
                else:
                    raise ValueError(f"unknown engine {engine!r}")
                report.runs += 1
                report.events += len(events)
                divergence = run_differential(pair, events, seed=seed)
                if divergence is not None:
                    report.divergences.append(divergence)
    return report


def check_cross_engine(
    policy_name: str,
    capacity: int = 8,
    length: int = 400,
    seed: int = 0,
    components: Sequence[str] = ("lru", "lfu"),
) -> Optional[Divergence]:
    """Prove a 1-set hardware cache and an online shard decide alike.

    Two identically-constructed shard policies drive, respectively, a
    1 x ``capacity`` :class:`~repro.cache.cache.SetAssociativeCache` and
    a :class:`~repro.online.shard.CacheShard`; both replay the same key
    stream of demand fills (``get_or_compute`` vs a read access) and
    writes (``put`` vs a write access). Deletes are excluded: without
    them both engines allocate ways in the same ascending order and
    evict in place, so even way-sensitive policies (random, srrip) must
    agree tag-for-tag.

    Returns:
        None on full agreement, else a :class:`Divergence` whose
        ``engine`` side is the hardware cache and ``spec`` side the
        shard.
    """
    hw_policy = build_shard_policy(policy_name, capacity,
                                   components=components, seed=seed)
    shard_policy = build_shard_policy(policy_name, capacity,
                                      components=components, seed=seed)
    config = CacheConfig(size_bytes=capacity * 64, ways=capacity)
    cache = SetAssociativeCache(config, hw_policy)
    shard = CacheShard(capacity, shard_policy)

    ops = shard_ops(seed, capacity, length)
    label = f"cross:{policy_name}"
    for step, (op, key) in enumerate(ops):
        if op == "delete":
            op = "put"
        elif op == "get":
            op = "get_or_compute"
        fingerprint = key_fingerprint(key)
        is_write = op == "put"
        result = cache.access_decomposed(0, fingerprint, is_write)
        if isinstance(hw_policy, AdaptivePolicy):
            hw_decision = _adaptive_decision(
                hw_policy, 0, result.hit, result.evicted_tag
            )
        else:
            hw_decision = Decision(hit=result.hit,
                                   evicted_tag=result.evicted_tag)

        before = set(shard.resident_keys())
        if is_write:
            shard.put(key, ("value", key))
            hit = key in before
        else:
            computed = []
            shard.get_or_compute(
                key, lambda k: (computed.append(k), ("value", k))[1]
            )
            hit = not computed
        after = set(shard.resident_keys())
        gone = before - after
        evicted = key_fingerprint(next(iter(gone))) if gone else None
        if isinstance(shard_policy, AdaptivePolicy):
            shard_decision = _adaptive_decision(shard_policy, 0, hit, evicted)
        else:
            shard_decision = Decision(hit=hit, evicted_tag=evicted)

        if hw_decision != shard_decision:
            return Divergence(step=step, event=(op, key), engine=hw_decision,
                              spec=shard_decision, label=label, seed=seed)
    return None


# ---------------------------------------------------------------------------
# Placement differential: the tiered KV walker versus its reference spec.


class TieredKVPair:
    """A :class:`~repro.tiers.kv.TieredKVCache` coupled with its spec.

    Events are the same ``(op, key)`` pairs the shard pairs replay
    (:func:`repro.oracle.streams.shard_ops`): the real walker runs over
    LRU-policy shard tiers, the spec restates the same topology as
    plain recency lists, and every operation's
    :class:`~repro.oracle.spec.PlacementDecision` — serving level and
    admitted tiers — must agree, then the full per-tier residency (and,
    for adaptive placement, the per-partition votes).
    """

    def __init__(self, cache, spec, label: str):
        self.cache = cache
        self.spec = spec
        self.label = label

    def apply(self, event: Tuple[str, int]) -> Tuple[
            "PlacementDecision", "PlacementDecision"]:
        """Replay one operation through both sides."""
        op, key = event
        if op == "get":
            result = self.cache.get_detailed(key)
            engine = PlacementDecision(result.found, result.served_by,
                                       result.admitted)
            spec = self.spec.get(key)
        elif op == "get_or_compute":
            result = self.cache.fetch(key, lambda k: ("value", k))
            engine = PlacementDecision(result.found, result.served_by,
                                       result.admitted)
            spec = self.spec.fetch(key)
        elif op == "put":
            result = self.cache.put(key, ("value", key))
            engine = PlacementDecision(result.found, result.served_by,
                                       result.admitted)
            spec = self.spec.put(key)
        elif op == "delete":
            engine = PlacementDecision(found=self.cache.delete(key))
            spec = self.spec.delete(key)
        else:
            raise ValueError(f"unknown tiered op {op!r}")
        return engine, spec

    def verify_state(self, event: Tuple[str, int]) -> Optional[str]:
        """Per-tier residency (and adaptive votes) must match the spec."""
        for index, tier in enumerate(self.cache.tiers):
            engine_keys = sorted(tier.store.resident_keys())
            spec_keys = self.spec.resident(index)
            if engine_keys != spec_keys:
                return (f"tier {tier.name!r} residency differs: "
                        f"engine={engine_keys} spec={spec_keys}")
        if isinstance(self.cache.placement, AdaptivePlacement):
            engine_votes = self.cache.placement.votes()
            spec_votes = self.spec.placement.votes()
            if engine_votes != spec_votes:
                return (f"adaptive votes differ: engine={engine_votes} "
                        f"spec={spec_votes}")
        return None


def build_tiered_kv_pair(
    placement_name: str,
    tier_capacities: Sequence[int] = (4, 12),
    seed: int = 0,
) -> TieredKVPair:
    """Couple a tiered KV cache and its spec for one placement strategy.

    Every tier is an LRU :class:`~repro.online.shard.CacheShard` (the
    spec restates LRU tiers only — replacement-policy variety is the
    policy campaign's job; here the variable under test is placement).
    """
    caps = list(tier_capacities)
    tiers = [
        KVTier(f"t{index}", CacheShard(cap, build_shard_policy("lru", cap)),
               cap)
        for index, cap in enumerate(caps)
    ]
    cache = TieredKVCache(
        tiers,
        placement=make_placement(
            placement_name, tier_capacities=caps, seed=seed
        ),
    )
    spec = SpecTieredKV(
        [tier.name for tier in tiers],
        caps,
        make_placement_spec(placement_name, tier_capacities=caps, seed=seed),
    )
    label = f"tiered[{'x'.join(map(str, caps))}]:{placement_name}"
    return TieredKVPair(cache, spec, label)


def placement_campaign(
    placements: Optional[Sequence[str]] = None,
    topologies: Sequence[Sequence[int]] = ((4, 12), (3, 6, 18)),
    streams_per_combo: int = 16,
    stream_length: int = 150,
    base_seed: int = 0,
) -> CampaignReport:
    """Differential-test placement strategies over seeded op streams.

    The placement analogue of :func:`differential_campaign`: every
    placement strategy with a spec (LCE, LCD, probabilistic LCD and the
    adaptive duel), on each topology shape, over independent seeded
    streams — first divergences are collected, the campaign continues.
    """
    if placements is None:
        placements = placement_spec_names()
    report = CampaignReport()
    for placement_index, placement_name in enumerate(placements):
        for topo_index, tier_capacities in enumerate(topologies):
            for stream_index in range(streams_per_combo):
                seed = (base_seed + 10007 * placement_index
                        + 101 * topo_index + stream_index)
                pair = build_tiered_kv_pair(
                    placement_name, tier_capacities, seed=seed
                )
                events = shard_ops(
                    seed, sum(tier_capacities), stream_length
                )
                report.runs += 1
                report.events += len(events)
                divergence = run_differential(pair, events, seed=seed)
                if divergence is not None:
                    report.divergences.append(divergence)
    return report
