"""Slow-but-obviously-correct executable policy specifications.

The production policies (:mod:`repro.policies`) are implemented with
per-way stamps and counters for speed; the specs here restate each
policy's *semantics* in textbook form — explicit per-set lists and
dicts keyed by tag — and are driven access-for-access against the real
engines by the differential harness (:mod:`repro.oracle.harness`). A
divergence means one of the two encodings of the semantics is wrong.

Two deliberate design points:

* Specs decide in terms of **tags**, not way indices, except where a
  policy's semantics genuinely depend on way order (Random's uniform
  choice over candidates, SRRIP's first-maximal scan) — there the
  surrounding :class:`SpecCache` supplies the resident tags in way
  order, reproducing the slot bookkeeping of both engines
  (``allocation="lowest"`` for :class:`~repro.cache.cache.SetAssociativeCache`
  fills, ``allocation="stack"`` for the online shard's LIFO free list).
* :class:`SpecAdaptive` restates Algorithm 1 *literally*: component
  contents are simulated by nested spec caches, the miss history is a
  plain list of decisive events rescanned on every decision, and each
  access yields the imitated component and the history state so the
  harness can compare selector behaviour, not just hit/miss outcomes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.tag_array import identity_tag
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class Decision:
    """One access's full decision record, engine- and spec-comparable.

    Attributes:
        hit: whether the access hit.
        evicted_tag: tag evicted to make room, or None (hit, fill into
            a free slot, or no-fill miss).
        imitated: adaptive only — the component imitated by the victim
            choice, or None (no eviction, or a non-adaptive policy).
        history: adaptive only — per-component recorded miss counts
            after the access, or None for non-adaptive policies.
    """

    hit: bool
    evicted_tag: Optional[int] = None
    imitated: Optional[int] = None
    history: Optional[Tuple[int, ...]] = None


class PolicySpec(abc.ABC):
    """Reference semantics of one replacement policy.

    A spec tracks metadata keyed by tag, one structure per set, and is
    driven by :class:`SpecCache` through the same five events the real
    engines drive their policies with.
    """

    name: str = "spec"

    def __init__(self, num_sets: int, ways: int):
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways

    def observe(self, set_index: int, tag: int, is_write: bool) -> None:
        """Pre-lookup hook (only the adaptive spec uses it)."""

    @abc.abstractmethod
    def on_hit(self, set_index: int, tag: int) -> None:
        """The access hit the resident block ``tag``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, tag: int) -> None:
        """``tag`` was installed into the set."""

    def on_remove(self, set_index: int, tag: int) -> None:
        """``tag`` left the set (eviction or invalidation)."""

    @abc.abstractmethod
    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        """The tag to evict; ``resident`` lists tags in way order."""

    def pop_imitated(self) -> Optional[int]:
        """Component imitated by the last ``victim_tag`` (adaptive only)."""
        return None

    def history_state(self, set_index: int) -> Optional[Tuple[int, ...]]:
        """Recorded per-component miss counts (adaptive only)."""
        return None


class SpecLRU(PolicySpec):
    """LRU spec: a per-set recency list, least-recent first."""

    name = "lru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._recency: List[List[int]] = [[] for _ in range(num_sets)]

    def on_hit(self, set_index: int, tag: int) -> None:
        order = self._recency[set_index]
        order.remove(tag)
        order.append(tag)

    def on_fill(self, set_index: int, tag: int) -> None:
        self._recency[set_index].append(tag)

    def on_remove(self, set_index: int, tag: int) -> None:
        self._recency[set_index].remove(tag)

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        return self._recency[set_index][0]


class SpecMRU(PolicySpec):
    """MRU spec: same recency list as LRU, evicting the other end."""

    name = "mru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._recency: List[List[int]] = [[] for _ in range(num_sets)]

    def on_hit(self, set_index: int, tag: int) -> None:
        order = self._recency[set_index]
        order.remove(tag)
        order.append(tag)

    def on_fill(self, set_index: int, tag: int) -> None:
        self._recency[set_index].append(tag)

    def on_remove(self, set_index: int, tag: int) -> None:
        self._recency[set_index].remove(tag)

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        return self._recency[set_index][-1]


class SpecFIFO(PolicySpec):
    """FIFO spec: a per-set fill-order queue; hits change nothing."""

    name = "fifo"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._queue: List[List[int]] = [[] for _ in range(num_sets)]

    def on_hit(self, set_index: int, tag: int) -> None:
        pass

    def on_fill(self, set_index: int, tag: int) -> None:
        self._queue[set_index].append(tag)

    def on_remove(self, set_index: int, tag: int) -> None:
        self._queue[set_index].remove(tag)

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        return self._queue[set_index][0]


class SpecLFU(PolicySpec):
    """LFU spec: saturating counts per tag, oldest-fill tie-break."""

    name = "lfu"

    def __init__(self, num_sets: int, ways: int, counter_bits: int = 5):
        super().__init__(num_sets, ways)
        self.max_count = (1 << counter_bits) - 1
        self._count: List[dict] = [dict() for _ in range(num_sets)]
        self._fill_seq: List[dict] = [dict() for _ in range(num_sets)]
        self._clock = 0

    def on_hit(self, set_index: int, tag: int) -> None:
        counts = self._count[set_index]
        counts[tag] = min(counts[tag] + 1, self.max_count)

    def on_fill(self, set_index: int, tag: int) -> None:
        self._clock += 1
        self._count[set_index][tag] = 1
        self._fill_seq[set_index][tag] = self._clock

    def on_remove(self, set_index: int, tag: int) -> None:
        del self._count[set_index][tag]
        del self._fill_seq[set_index][tag]

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        counts = self._count[set_index]
        seqs = self._fill_seq[set_index]
        return min(resident, key=lambda tag: (counts[tag], seqs[tag]))


class SpecEHC(PolicySpec):
    """EHC spec: per-tag lifetime hit EMAs, evict fewest expected
    remaining hits.

    Mirrors :class:`repro.policies.ehc.EHCPolicy` in tag-keyed form:
    every residency counts its hits; :meth:`on_remove` (how a lifetime
    ends in the spec cache, whether by replacement or invalidation)
    folds the count into the tag's moving average with the identical
    ``(old + observed) / 2`` float arithmetic, so expectations — and
    therefore victims — match bit-for-bit. Tags without a completed
    lifetime carry the same optimistic expectation of 1.0, and ties
    break toward the oldest fill.
    """

    name = "ehc"

    NEW_TAG_EXPECTATION = 1.0

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._hits: List[dict] = [dict() for _ in range(num_sets)]
        self._ema: List[dict] = [dict() for _ in range(num_sets)]
        self._fill_seq: List[dict] = [dict() for _ in range(num_sets)]
        self._clock = 0

    def on_hit(self, set_index: int, tag: int) -> None:
        self._hits[set_index][tag] += 1

    def on_fill(self, set_index: int, tag: int) -> None:
        self._clock += 1
        self._hits[set_index][tag] = 0
        self._fill_seq[set_index][tag] = self._clock

    def on_remove(self, set_index: int, tag: int) -> None:
        observed = float(self._hits[set_index].pop(tag))
        del self._fill_seq[set_index][tag]
        ema = self._ema[set_index]
        previous = ema.get(tag)
        ema[tag] = observed if previous is None else (previous + observed) / 2

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        hits = self._hits[set_index]
        ema = self._ema[set_index]
        seqs = self._fill_seq[set_index]
        return min(
            resident,
            key=lambda tag: (
                ema.get(tag, self.NEW_TAG_EXPECTATION) - hits[tag],
                seqs[tag],
            ),
        )


class SpecRandom(PolicySpec):
    """Random spec: a seeded uniform choice over tags in way order."""

    name = "random"

    def __init__(self, num_sets: int, ways: int, seed: int = 0):
        super().__init__(num_sets, ways)
        self._rng = DeterministicRNG(seed)

    def on_hit(self, set_index: int, tag: int) -> None:
        pass

    def on_fill(self, set_index: int, tag: int) -> None:
        pass

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        return resident[self._rng.choice_index(len(resident))]


class SpecSRRIP(PolicySpec):
    """SRRIP spec: an RRPV per tag, first-maximal scan in way order."""

    name = "srrip"

    def __init__(self, num_sets: int, ways: int, rrpv_bits: int = 2):
        super().__init__(num_sets, ways)
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv: List[dict] = [dict() for _ in range(num_sets)]

    def on_hit(self, set_index: int, tag: int) -> None:
        self._rrpv[set_index][tag] = 0

    def on_fill(self, set_index: int, tag: int) -> None:
        self._rrpv[set_index][tag] = self.max_rrpv - 1

    def on_remove(self, set_index: int, tag: int) -> None:
        del self._rrpv[set_index][tag]

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        rrpvs = self._rrpv[set_index]
        while True:
            for tag in resident:
                if rrpvs[tag] == self.max_rrpv:
                    return tag
            for tag in resident:
                rrpvs[tag] += 1


class SpecBIP(PolicySpec):
    """BIP spec: an LRU list whose fills usually enter at the LRU end.

    A fill is promoted to the MRU end with probability ``epsilon``;
    otherwise it is inserted at the *front* of the victim order, ahead
    of previously cold blocks — matching the engine's decreasing
    cold-stamp counter, where the newest LRU-inserted block is the next
    victim.
    """

    name = "bip"

    def __init__(self, num_sets: int, ways: int, epsilon: float = 1 / 32,
                 seed: int = 0):
        super().__init__(num_sets, ways)
        self.epsilon = epsilon
        self._rng = DeterministicRNG(seed)
        self._order: List[List[int]] = [[] for _ in range(num_sets)]

    def on_hit(self, set_index: int, tag: int) -> None:
        order = self._order[set_index]
        order.remove(tag)
        order.append(tag)

    def on_fill(self, set_index: int, tag: int) -> None:
        if self._rng.random() < self.epsilon:
            self._order[set_index].append(tag)
        else:
            self._order[set_index].insert(0, tag)

    def on_remove(self, set_index: int, tag: int) -> None:
        self._order[set_index].remove(tag)

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        return self._order[set_index][0]


class SpecCache:
    """A reference cache: explicit slot tables driven by a policy spec.

    Args:
        num_sets: geometry.
        ways: associativity (shard mode: entry capacity).
        spec: the policy spec making the decisions.
        allocation: free-slot discipline — ``"lowest"`` mirrors
            :meth:`repro.cache.cache_set.CacheSet.free_way` (hardware
            fills take the lowest-index invalid way), ``"stack"``
            mirrors the online shard's LIFO free list. The two only
            differ after invalidations/deletes; way-sensitive policies
            (random, srrip) need the right one.
    """

    def __init__(self, num_sets: int, ways: int, spec: PolicySpec,
                 allocation: str = "lowest"):
        if spec.num_sets != num_sets or spec.ways != ways:
            raise ValueError(
                f"spec geometry ({spec.num_sets}x{spec.ways}) does not "
                f"match ({num_sets}x{ways})"
            )
        if allocation not in ("lowest", "stack"):
            raise ValueError(f"unknown allocation {allocation!r}")
        self.num_sets = num_sets
        self.ways = ways
        self.spec = spec
        self.allocation = allocation
        self.slots: List[List[Optional[int]]] = [
            [None] * ways for _ in range(num_sets)
        ]
        self._free: List[List[int]] = [
            list(range(ways - 1, -1, -1)) for _ in range(num_sets)
        ]
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def resident_in_way_order(self, set_index: int) -> List[int]:
        """Tags of the set's valid slots, ascending way index."""
        return [t for t in self.slots[set_index] if t is not None]

    def contains(self, set_index: int, tag: int) -> bool:
        """Whether ``tag`` is resident in ``set_index``."""
        return tag in self.slots[set_index]

    def _claim_slot(self, set_index: int) -> Optional[int]:
        """A free way per the allocation discipline, or None if full."""
        if self.allocation == "lowest":
            slots = self.slots[set_index]
            for way, tag in enumerate(slots):
                if tag is None:
                    return way
            return None
        free = self._free[set_index]
        return free.pop() if free else None

    def _release_slot(self, set_index: int, way: int) -> None:
        self.slots[set_index][way] = None
        if self.allocation == "stack":
            self._free[set_index].append(way)

    def access(self, set_index: int, tag: int, is_write: bool = False,
               fill_on_miss: bool = True) -> Decision:
        """Replay one reference through the spec; returns its decision.

        ``fill_on_miss=False`` models the online shard's plain ``get``,
        which observes and misses without installing.
        """
        self.accesses += 1
        self.spec.observe(set_index, tag, is_write)
        slots = self.slots[set_index]

        if tag in slots:
            self.hits += 1
            self.spec.on_hit(set_index, tag)
            return Decision(hit=True,
                            history=self.spec.history_state(set_index))

        self.misses += 1
        if not fill_on_miss:
            return Decision(hit=False,
                            history=self.spec.history_state(set_index))

        evicted = None
        imitated = None
        way = self._claim_slot(set_index)
        if way is None:
            evicted = self.spec.victim_tag(
                set_index, self.resident_in_way_order(set_index)
            )
            imitated = self.spec.pop_imitated()
            way = slots.index(evicted)
            self.spec.on_remove(set_index, evicted)
            self._release_slot(set_index, way)
            if self.allocation == "stack":
                way = self._free[set_index].pop()
        slots[way] = tag
        self.spec.on_fill(set_index, tag)
        return Decision(hit=False, evicted_tag=evicted, imitated=imitated,
                        history=self.spec.history_state(set_index))

    def remove(self, set_index: int, tag: int) -> Decision:
        """Invalidate/delete ``tag``; ``hit`` reports whether it was there."""
        slots = self.slots[set_index]
        if tag not in slots:
            return Decision(hit=False)
        way = slots.index(tag)
        self.spec.on_remove(set_index, tag)
        self._release_slot(set_index, way)
        return Decision(hit=True)


class SpecAdaptive(PolicySpec):
    """Algorithm 1 restated literally, over nested component specs.

    Args:
        num_sets: geometry (components must match).
        ways: associativity.
        component_specs: the component policy specs; each is wrapped in
            its own tags-only :class:`SpecCache` (lowest-way allocation,
            exactly like the engines' :class:`~repro.cache.tag_array.TagArray`).
        tag_transform: identity for full tags, or a partial-tag fold —
            the same callable handed to the engine under test.
        window: miss-history window (the paper's m); None keeps every
            decisive event (the counter-history variant). Defaults to
            ``ways``, matching :class:`~repro.core.adaptive.AdaptivePolicy`.
        fallback: ``"lru"`` or ``"random"`` — the aliasing fallback.
        seed: RNG seed for the random fallback.
    """

    name = "adaptive"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        component_specs: Sequence[PolicySpec],
        tag_transform: Callable[[int], int] = identity_tag,
        window: Optional[int] = None,
        fallback: str = "lru",
        seed: int = 0,
    ):
        super().__init__(num_sets, ways)
        if len(component_specs) < 2:
            raise ValueError("adaptivity needs at least 2 components")
        if fallback not in ("lru", "random"):
            raise ValueError(f"unknown fallback {fallback!r}")
        self.components = [
            SpecCache(num_sets, ways, spec) for spec in component_specs
        ]
        self.tag_transform = tag_transform
        self.window = ways if window == "ways" else window
        self.fallback = fallback
        self._rng = DeterministicRNG(seed)
        self._events: List[List[Tuple[bool, ...]]] = [
            [] for _ in range(num_sets)
        ]
        self._recency: List[List[int]] = [[] for _ in range(num_sets)]
        self._last_set = -1
        self._last_outcomes: List[Decision] = []
        self._imitated: Optional[int] = None

    def observe(self, set_index: int, tag: int, is_write: bool) -> None:
        stored = self.tag_transform(tag)
        outcomes = [
            component.access(set_index, stored, is_write)
            for component in self.components
        ]
        missed = tuple(not o.hit for o in outcomes)
        if any(missed) and not all(missed):
            events = self._events[set_index]
            events.append(missed)
            if self.window is not None and len(events) > self.window:
                del events[: len(events) - self.window]
        self._last_set = set_index
        self._last_outcomes = outcomes

    def history_state(self, set_index: int) -> Tuple[int, ...]:
        events = self._events[set_index]
        return tuple(
            sum(1 for event in events if event[i])
            for i in range(len(self.components))
        )

    def on_hit(self, set_index: int, tag: int) -> None:
        order = self._recency[set_index]
        order.remove(tag)
        order.append(tag)

    def on_fill(self, set_index: int, tag: int) -> None:
        self._recency[set_index].append(tag)

    def on_remove(self, set_index: int, tag: int) -> None:
        self._recency[set_index].remove(tag)

    def victim_tag(self, set_index: int, resident: Sequence[int]) -> int:
        if set_index != self._last_set or not self._last_outcomes:
            raise RuntimeError("victim_tag without a preceding observe")
        counts = self.history_state(set_index)
        chosen = counts.index(min(counts))
        self._imitated = chosen
        outcome = self._last_outcomes[chosen]
        component = self.components[chosen]

        # Step 2: the imitated component just evicted a block the real
        # cache also holds — evict the same block (first way-order match,
        # as the engine scans ways ascending).
        if not outcome.hit and outcome.evicted_tag is not None:
            for tag in resident:
                if self.tag_transform(tag) == outcome.evicted_tag:
                    return tag

        # Step 3: any real block absent from the imitated component.
        for tag in resident:
            if not component.contains(set_index, self.tag_transform(tag)):
                return tag

        # Aliasing hid every candidate: the arbitrary-victim fallback.
        if self.fallback == "random":
            return resident[self._rng.choice_index(len(resident))]
        resident_set = set(resident)
        for tag in self._recency[set_index]:
            if tag in resident_set:
                return tag
        raise RuntimeError("recency order lost track of resident tags")

    def pop_imitated(self) -> Optional[int]:
        imitated, self._imitated = self._imitated, None
        return imitated


_SPEC_FACTORIES = {
    "lru": SpecLRU,
    "lfu": SpecLFU,
    "fifo": SpecFIFO,
    "mru": SpecMRU,
    "random": SpecRandom,
    "srrip": SpecSRRIP,
    "bip": SpecBIP,
    "ehc": SpecEHC,
}


def spec_names() -> List[str]:
    """Sorted names of all policies that have a reference spec."""
    return sorted(_SPEC_FACTORIES)


def make_spec(name: str, num_sets: int, ways: int, **kwargs) -> PolicySpec:
    """Instantiate the reference spec for a registry policy name."""
    try:
        factory = _SPEC_FACTORIES[name]
    except KeyError:
        known = ", ".join(spec_names())
        raise ValueError(f"no spec for policy {name!r}; known: {known}") from None
    return factory(num_sets, ways, **kwargs)


def make_adaptive_spec(
    num_sets: int,
    ways: int,
    component_names: Sequence[str] = ("lru", "lfu"),
    tag_transform: Callable[[int], int] = identity_tag,
    window: Optional[str] = "ways",
    fallback: str = "lru",
    seed: int = 0,
    component_kwargs: Optional[dict] = None,
) -> SpecAdaptive:
    """Build the Algorithm 1 spec from component names.

    Mirrors :func:`repro.core.multi.make_adaptive`: ``window="ways"``
    (the default) matches the engine's default bit-vector history with
    m = associativity; ``component_kwargs`` forwards per-name
    constructor arguments (e.g. ``{"random": {"seed": 7}}``).
    """
    component_kwargs = component_kwargs or {}
    specs = [
        make_spec(name, num_sets, ways, **component_kwargs.get(name, {}))
        for name in component_names
    ]
    window_value = ways if window == "ways" else window
    return SpecAdaptive(
        num_sets, ways, specs, tag_transform=tag_transform,
        window=window_value, fallback=fallback, seed=seed,
    )



# Placement specs live in their own module; re-exported here so
# `repro.oracle.spec` stays the one import point for every spec.
from repro.oracle.placement_spec import (  # noqa: E402
    PlacementDecision,
    PlacementSpec,
    SpecAdaptivePlacement,
    SpecLCDPlacement,
    SpecLCEPlacement,
    SpecProbLCDPlacement,
    SpecTieredKV,
    make_placement_spec,
    placement_spec_names,
)

__all__ = [
    "Decision",
    "PlacementDecision",
    "PlacementSpec",
    "PolicySpec",
    "SpecAdaptive",
    "SpecAdaptivePlacement",
    "SpecBIP",
    "SpecCache",
    "SpecEHC",
    "SpecFIFO",
    "SpecLCDPlacement",
    "SpecLCEPlacement",
    "SpecLFU",
    "SpecLRU",
    "SpecMRU",
    "SpecProbLCDPlacement",
    "SpecRandom",
    "SpecSRRIP",
    "SpecTieredKV",
    "make_adaptive_spec",
    "make_placement_spec",
    "make_spec",
    "placement_spec_names",
    "spec_names",
]
