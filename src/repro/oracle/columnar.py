"""Columnar-kernel differential lane for the oracle campaign.

The columnar batch kernel (:mod:`repro.perf.kernel`) promises *decision
identity*: replaying a batch through the generated per-duel-pair fast
path must leave every observable piece of state — :class:`CacheStats`,
per-set miss counters, the full policy ``state_dict()``, the resident
:class:`~repro.cache.cache_set.CacheSet` contents — byte-identical to
the scalar per-access loop, and must report the same per-access hit
stream. This lane proves it the same way the spec campaign proves the
engines: seeded random streams, every supported duel pair, first
divergence reported with its replayable seed.

Each run builds two identical adaptive caches, drives one through the
scalar :meth:`~repro.cache.cache.SetAssociativeCache.access` loop and
the other through
:func:`~repro.perf.kernel.columnar_access_many` (with the per-access
hit record enabled), and compares everything. Both saturation-skip
settings are exercised, because the skip guard is the one optimization
whose correctness rests on an argument rather than shared code.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Sequence, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.core.multi import make_adaptive
from repro.oracle.harness import CampaignReport, Divergence
from repro.oracle.streams import hardware_stream
from repro.perf.kernel import columnar_access_many

#: Component kinds the kernel specializes; the lane covers every
#: ordered pair (16 duels).
KERNEL_KINDS = ("lru", "fifo", "lfu", "mru")

#: Every ordered duel pair the kernel can specialize.
DUEL_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    product(KERNEL_KINDS, KERNEL_KINDS)
)


def _build_cache(
    components: Sequence[str], num_sets: int, ways: int, seed: int
) -> SetAssociativeCache:
    """One adaptive cache inside the kernel's supported envelope."""
    config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways)
    policy = make_adaptive(num_sets, ways, tuple(components), seed=seed)
    return SetAssociativeCache(config, policy)


def _addresses(
    events: Sequence[Tuple[int, int, bool]], config: CacheConfig
) -> Tuple[List[int], List[bool]]:
    """Byte addresses (and write flags) mapping to the events' sets/tags."""
    offset_bits, _, tag_shift = config.decomposition()
    addresses = []
    writes = []
    for set_index, tag, is_write in events:
        addresses.append((tag << tag_shift) | (set_index << offset_bits))
        writes.append(is_write)
    return addresses, writes


def _observable_state(cache: SetAssociativeCache) -> dict:
    """Everything the kernel contract says must match, as one dict."""
    stats = cache.stats
    return {
        "stats": {
            "accesses": stats.accesses,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "writebacks": stats.writebacks,
            "invalidations": stats.invalidations,
            "per_set_misses": list(stats.per_set_misses),
        },
        "policy": cache.policy.state_dict(),
        "sets": [cache_set.state_dict() for cache_set in cache.sets],
    }


def run_columnar_differential(
    components: Sequence[str],
    events: Sequence[Tuple[int, int, bool]],
    num_sets: int = 4,
    ways: int = 4,
    seed: Optional[int] = None,
    saturation_skip: bool = True,
) -> Optional[Divergence]:
    """Scalar vs columnar on one stream; returns the first divergence.

    The scalar cache replays the stream through per-access ``access``
    calls (the reference semantics by construction); the columnar cache
    replays it as one ``columnar_access_many`` batch with the hit
    record enabled. The per-access hit streams are compared first — a
    mismatch there reports the offending step — then the full
    observable state.
    """
    label = f"columnar:{'+'.join(components)}:skip={saturation_skip}"
    scalar = _build_cache(components, num_sets, ways, seed or 0)
    columnar = _build_cache(components, num_sets, ways, seed or 0)
    addresses, writes = _addresses(events, scalar.config)

    scalar_hits = [
        scalar.access(address, is_write=write).hit
        for address, write in zip(addresses, writes)
    ]
    record = [False] * len(addresses)
    columnar_access_many(
        columnar, addresses, writes=writes, record=record,
        saturation_skip=saturation_skip,
    )

    for step, (want, got) in enumerate(zip(scalar_hits, record)):
        if want != got:
            return Divergence(
                step=step, event=tuple(events[step]), engine=None, spec=None,
                label=label, seed=seed,
                detail=f"hit stream: scalar={want} columnar={got}",
            )
    scalar_state = _observable_state(scalar)
    columnar_state = _observable_state(columnar)
    if scalar_state != columnar_state:
        for key in scalar_state:
            if scalar_state[key] != columnar_state[key]:
                break
        return Divergence(
            step=len(events), event=(), engine=None, spec=None,
            label=label, seed=seed,
            detail=(
                f"observable state mismatch in {key!r}: "
                f"scalar={scalar_state[key]!r} "
                f"columnar={columnar_state[key]!r}"
            ),
        )
    return None


def columnar_campaign(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    streams_per_combo: int = 4,
    stream_length: int = 600,
    num_sets: int = 4,
    ways: int = 4,
    base_seed: int = 0,
) -> CampaignReport:
    """Differential-test the columnar kernel over every duel pair.

    Args:
        pairs: (kindA, kindB) duel pairs to cover; defaults to all 16
            ordered pairs over {lru, fifo, lfu, mru}.
        streams_per_combo: independent streams per (pair, skip mode).
        stream_length: accesses per stream — sized so selector windows
            fill, saturate, and flip mid-stream.
        num_sets, ways: cache geometry.
        base_seed: offset folded into each stream's seed.

    Returns:
        A :class:`~repro.oracle.harness.CampaignReport`; each failing
        run contributes its first :class:`Divergence` and the campaign
        continues, covering both saturation-skip settings for every
        pair.
    """
    if pairs is None:
        pairs = DUEL_PAIRS
    report = CampaignReport()
    for pair_index, pair in enumerate(pairs):
        for skip in (True, False):
            for stream_index in range(streams_per_combo):
                seed = (base_seed + 7919 * pair_index
                        + 311 * int(skip) + stream_index)
                events = hardware_stream(seed, num_sets, ways, stream_length)
                report.runs += 1
                report.events += len(events)
                divergence = run_columnar_differential(
                    pair, events, num_sets=num_sets, ways=ways,
                    seed=seed, saturation_skip=skip,
                )
                if divergence is not None:
                    report.divergences.append(divergence)
    return report
