"""Seeded event-stream generators for differential campaigns.

Each generator is a pure function of its seed, so a campaign failure
reports the seed and anyone can replay the exact stream that diverged.
Streams are deliberately *hot*: tag/key spaces are sized a small
multiple of the cache capacity so evictions — where replacement policies
actually act — dominate, instead of cold misses.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.utils.rng import DeterministicRNG

#: Operation names emitted by :func:`shard_ops`.
SHARD_OPS = ("get", "get_or_compute", "put", "delete")


def hardware_stream(
    seed: int,
    num_sets: int,
    ways: int,
    length: int,
    tag_multiple: float = 3.0,
    write_ratio: float = 0.25,
) -> List[Tuple[int, int, bool]]:
    """A random (set_index, tag, is_write) stream for hardware engines.

    Args:
        seed: replayable stream identity.
        num_sets: set indices are drawn uniformly from [0, num_sets).
        ways: associativity, used to size the tag space.
        length: number of accesses.
        tag_multiple: tag-space size as a multiple of ``ways`` —
            small enough that sets refill and evict repeatedly.
        write_ratio: fraction of accesses that are writes.
    """
    rng = DeterministicRNG(seed)
    tag_space = max(2, int(ways * tag_multiple))
    stream = []
    for _ in range(length):
        set_index = rng.choice_index(num_sets)
        tag = rng.choice_index(tag_space)
        is_write = rng.random() < write_ratio
        stream.append((set_index, tag, is_write))
    return stream


def shard_ops(
    seed: int,
    capacity: int,
    length: int,
    key_multiple: float = 3.0,
) -> List[Tuple[str, int]]:
    """A random (op, key) stream for the online shard.

    Ops are drawn from :data:`SHARD_OPS` with a mix that keeps the shard
    full — mostly demand fills (``get_or_compute``) and writes (``put``),
    some no-fill lookups (``get``) and occasional ``delete`` so the
    free-list discipline is exercised. TTL and byte budgets are *not*
    exercised here; those are wall-clock- and size-dependent behaviours
    covered by dedicated unit tests, not by the policy oracle.

    Args:
        seed: replayable stream identity.
        capacity: shard entry capacity, used to size the key space.
        length: number of operations.
        key_multiple: key-space size as a multiple of ``capacity``.
    """
    rng = DeterministicRNG(seed)
    key_space = max(2, int(capacity * key_multiple))
    ops = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.45:
            op = "get_or_compute"
        elif roll < 0.70:
            op = "put"
        elif roll < 0.90:
            op = "get"
        else:
            op = "delete"
        ops.append((op, rng.choice_index(key_space)))
    return ops
