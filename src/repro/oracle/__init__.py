"""The differential-testing oracle (independent correctness machinery).

Every engine in this repository — the set-indexed hardware simulator
(:mod:`repro.cache` / :mod:`repro.core`) and the sharded online engine
(:mod:`repro.online`) — is tested here against *independent* executable
specifications written for obviousness, not speed:

* :mod:`repro.oracle.spec` — textbook reference models of every
  registered replacement policy and of the paper's Algorithm 1;
* :mod:`repro.oracle.stack` — a single-pass Mattson stack-distance
  engine yielding LRU hit counts for all capacities at once;
* :mod:`repro.oracle.harness` — the differential harness that drives a
  real engine and its spec from one event stream and reports the first
  divergent decision, plus cross-engine equivalence checks;
* :mod:`repro.oracle.streams` — seeded random event-stream generators
  for differential campaigns;
* :mod:`repro.oracle.columnar` — the scalar-vs-columnar lane proving
  the batch kernel's decision-identity contract over every duel pair;
* :mod:`repro.oracle.golden` — pinned golden-trace digests for the
  named suite (``repro-experiments golden --check/--regen``).

See ``docs/testing.md`` for the workflow.
"""

from repro.oracle.columnar import (
    DUEL_PAIRS,
    columnar_campaign,
    run_columnar_differential,
)
from repro.oracle.harness import (
    CampaignReport,
    Divergence,
    build_hardware_pair,
    build_shard_pair,
    build_tiered_kv_pair,
    check_cross_engine,
    differential_campaign,
    placement_campaign,
    run_differential,
)
from repro.oracle.spec import (
    Decision,
    PlacementDecision,
    SpecCache,
    SpecTieredKV,
    make_adaptive_spec,
    make_placement_spec,
    make_spec,
    placement_spec_names,
)
from repro.oracle.stack import StackDistanceEngine, lru_hits_all_ways

__all__ = [
    "CampaignReport",
    "DUEL_PAIRS",
    "Decision",
    "Divergence",
    "PlacementDecision",
    "SpecCache",
    "SpecTieredKV",
    "StackDistanceEngine",
    "build_hardware_pair",
    "build_shard_pair",
    "build_tiered_kv_pair",
    "check_cross_engine",
    "columnar_campaign",
    "differential_campaign",
    "lru_hits_all_ways",
    "run_columnar_differential",
    "make_adaptive_spec",
    "make_placement_spec",
    "make_spec",
    "placement_campaign",
    "placement_spec_names",
    "run_differential",
]
