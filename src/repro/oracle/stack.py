"""Single-pass Mattson stack-distance analysis for LRU.

LRU has the *inclusion property* (Mattson et al., 1970): the contents of
an a-way LRU set are always a subset of the contents of an (a+1)-way
set. One pass over a trace, maintaining a per-set recency stack, can
therefore compute the LRU hit count for **every** associativity at once:
an access whose tag sits at stack depth d (0 = most recent) hits in any
set with more than d ways.

This gives the oracle an O(N·ways) sweep that replaces ``max_ways``
separate simulations, and — because it is derived from a textbook
theorem rather than from the repo's policy code — an independent
cross-check of :class:`repro.policies.lru.LRUPolicy` at every capacity
and of :func:`repro.policies.belady.belady_misses` as a lower bound.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


class StackDistanceEngine:
    """Per-set LRU recency stacks with a stack-distance histogram.

    Args:
        num_sets: number of sets; set index is ``block % num_sets``,
            matching :func:`repro.policies.belady.belady_misses`.
    """

    def __init__(self, num_sets: int):
        if num_sets <= 0:
            raise ValueError(f"num_sets must be positive, got {num_sets}")
        self.num_sets = num_sets
        self.accesses = 0
        self.cold_misses = 0
        # histogram[d] = accesses whose tag sat at recency depth d.
        self.histogram: Dict[int, int] = {}
        self._stacks: List[List[int]] = [[] for _ in range(num_sets)]

    def record(self, block: int) -> int:
        """Record one block reference; returns its stack distance.

        The distance is the tag's depth in its set's recency stack
        before the access (0 = most recently used), or -1 for a cold
        (first-touch) reference.
        """
        self.accesses += 1
        stack = self._stacks[block % self.num_sets]
        try:
            depth = stack.index(block)
        except ValueError:
            self.cold_misses += 1
            stack.insert(0, block)
            return -1
        del stack[depth]
        stack.insert(0, block)
        self.histogram[depth] = self.histogram.get(depth, 0) + 1
        return depth

    def hits_for_ways(self, ways: int) -> int:
        """LRU hit count at associativity ``ways`` over the trace so far."""
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        return sum(
            count for depth, count in self.histogram.items() if depth < ways
        )

    def misses_for_ways(self, ways: int) -> int:
        """LRU miss count at associativity ``ways`` over the trace so far."""
        return self.accesses - self.hits_for_ways(ways)


def lru_hits_all_ways(
    block_addresses: Sequence[int], num_sets: int, max_ways: int
) -> List[int]:
    """LRU hit counts for every associativity 1..``max_ways``, one pass.

    Args:
        block_addresses: block-number trace (addresses already shifted
            right by the line-offset bits).
        num_sets: number of sets (index = ``block % num_sets``).
        max_ways: largest associativity of interest.

    Returns:
        ``hits`` with ``hits[a - 1]`` = LRU hit count at ``a`` ways —
        monotonically non-decreasing in ``a`` by the inclusion property.
    """
    if max_ways <= 0:
        raise ValueError(f"max_ways must be positive, got {max_ways}")
    engine = StackDistanceEngine(num_sets)
    for block in block_addresses:
        engine.record(block)
    return [engine.hits_for_ways(a) for a in range(1, max_ways + 1)]
