"""Reference specs for placement strategies and the tiered KV walk.

Restates :mod:`repro.tiers` in the oracle's textbook style: each
placement strategy (:class:`repro.tiers.placement.PlacementStrategy`)
gets a slow-but-obvious spec, :class:`SpecAdaptivePlacement` transcribes
the adaptive duel literally (plain-list shadow LRU directories per
partition, a rescanned decisive-event window), and :class:`SpecTieredKV`
is a textbook tiered walker driven operation-for-operation against
:class:`repro.tiers.kv.TieredKVCache` by the harness's placement
campaign (:func:`repro.oracle.harness.placement_campaign`). A
divergence means one of the two encodings of the placement semantics
is wrong.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.online.keyspace import key_fingerprint
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class PlacementDecision:
    """One tiered-KV operation's decision record, engine/spec-comparable.

    Attributes:
        found: whether any tier (or the backing level) produced a value.
        served_by: name of the serving level, or None (plain-get total
            miss, and writes/deletes which serve nothing).
        admitted: names of tiers that installed a copy, near-to-far.
    """

    found: bool
    served_by: Optional[str] = None
    admitted: Tuple[str, ...] = ()


class PlacementSpec(abc.ABC):
    """Reference semantics of one placement strategy.

    Restates :class:`repro.tiers.placement.PlacementStrategy` in the
    oracle's textbook style: given the path position that served a
    request, which tiers admit a copy? Stateful strategies (seeded RNG
    draws, the adaptive duel) must reproduce the real strategy's
    decision sequence exactly when driven by the same operation stream.
    """

    name: str = "placement-spec"

    def observe_access(self, key, is_write: bool = False) -> None:
        """Pre-decision hook (only the adaptive spec uses it)."""

    @abc.abstractmethod
    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        """Tier indices (ascending) that should admit a copy of ``key``."""


class SpecLCEPlacement(PlacementSpec):
    """LCE spec: every tier above the serving one admits a copy."""

    name = "lce"

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        return tuple(range(min(served_index, num_tiers)))


class SpecLCDPlacement(PlacementSpec):
    """LCD spec: only the tier one level above the serving one admits."""

    name = "lcd"

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        if served_index < 1:
            return ()
        return (min(served_index, num_tiers) - 1,)


class SpecProbLCDPlacement(PlacementSpec):
    """Probabilistic-LCD spec: one seeded draw per consulted decision.

    The draw discipline is part of the contract: the real strategy
    draws exactly once per :meth:`copy_tiers` call with
    ``served_index >= 1`` and never otherwise, so identical seeds stay
    in lockstep for identical operation streams.
    """

    name = "problcd"

    def __init__(self, p: float = 0.5, seed: int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p
        self._rng = DeterministicRNG(seed)

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        if served_index < 1:
            return ()
        if self._rng.random() < self.p:
            return (min(served_index, num_tiers) - 1,)
        return ()


class SpecAdaptivePlacement(PlacementSpec):
    """Algorithm-1-over-placements restated literally.

    Mirrors :class:`repro.tiers.adaptive.AdaptivePlacement`: per
    keyspace partition, every access is replayed through one plain-list
    shadow LRU topology per component strategy; components whose shadow
    serves strictly deeper than the best one record a miss into the
    partition's decisive-event window (the paper's 8-event bit vector,
    restated as a rescanned list); the real decision imitates the
    component with the fewest windowed misses, ties to the lower index.
    """

    name = "adaptive"

    #: The engine-side default history is the paper's 8-event bit vector
    #: (:class:`repro.core.history.BitVectorHistory`).
    WINDOW = 8

    def __init__(
        self,
        tier_capacities: Sequence[int],
        components: Sequence[str] = ("lce", "lcd"),
        num_partitions: int = 8,
        seed: int = 0,
    ):
        if len(components) < 2:
            raise ValueError(
                f"adaptive placement needs >= 2 components, got "
                f"{len(components)}"
            )
        if "adaptive" in components:
            raise ValueError("adaptive placement cannot nest itself")
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if not tier_capacities or any(c <= 0 for c in tier_capacities):
            raise ValueError(
                f"tier_capacities must be positive, got {tier_capacities!r}"
            )
        self.component_names = tuple(components)
        self.num_partitions = num_partitions
        self.num_tiers = len(tier_capacities)
        # Same seed split as the engine: real delegates at seed + i,
        # shadow replays at seed + 100 + i, so stochastic components'
        # draw streams line up call-for-call.
        self._delegates = [
            make_placement_spec(name, seed=seed + i)
            for i, name in enumerate(components)
        ]
        self._shadow_strategies = [
            make_placement_spec(name, seed=seed + 100 + i)
            for i, name in enumerate(components)
        ]
        self._caps = [
            max(1, cap // num_partitions) for cap in tier_capacities
        ]
        # _shadows[partition][component][tier] -> key list, LRU first.
        self._shadows = [
            [
                [[] for _ in range(self.num_tiers)]
                for _ in components
            ]
            for _ in range(num_partitions)
        ]
        # Decisive-event windows, one per partition; each event is a
        # per-component missed tuple, rescanned on every decision.
        self._events: List[List[Tuple[bool, ...]]] = [
            [] for _ in range(num_partitions)
        ]

    def _partition(self, key) -> int:
        return key_fingerprint(key) % self.num_partitions

    @staticmethod
    def _touch(order: List, key) -> None:
        order.remove(key)
        order.append(key)

    def observe_access(self, key, is_write: bool = False) -> None:
        partition = self._partition(key)
        shadows = self._shadows[partition]
        depths = []
        for strategy, tiers in zip(self._shadow_strategies, shadows):
            served = self.num_tiers
            for level, order in enumerate(tiers):
                if key in order:
                    served = level
                    self._touch(order, key)
                    break
            depths.append(served)
            for level in strategy.copy_tiers(self.num_tiers, served, key):
                order = tiers[level]
                if key in order:
                    self._touch(order, key)
                else:
                    order.append(key)
                    if len(order) > self._caps[level]:
                        order.pop(0)
        best_depth = min(depths)
        missed = tuple(depth > best_depth for depth in depths)
        if any(missed) and not all(missed):
            events = self._events[partition]
            events.append(missed)
            if len(events) > self.WINDOW:
                del events[: len(events) - self.WINDOW]

    def best_component(self, partition: int) -> int:
        """Index of the component with the fewest decisive misses in
        the partition's window (ties go to the lower index)."""
        events = self._events[partition]
        counts = [
            sum(1 for event in events if event[i])
            for i in range(len(self._delegates))
        ]
        return counts.index(min(counts))

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        best = self.best_component(self._partition(key))
        return self._delegates[best].copy_tiers(num_tiers, served_index, key)

    def votes(self) -> Tuple[int, ...]:
        """Currently imitated component index, per partition."""
        return tuple(
            self.best_component(p) for p in range(self.num_partitions)
        )


_PLACEMENT_SPEC_FACTORIES = {
    "lce": SpecLCEPlacement,
    "lcd": SpecLCDPlacement,
    "problcd": SpecProbLCDPlacement,
    "adaptive": SpecAdaptivePlacement,
}


def placement_spec_names() -> List[str]:
    """Sorted names of all placement strategies that have a spec."""
    return sorted(_PLACEMENT_SPEC_FACTORIES)


def make_placement_spec(
    name: str,
    tier_capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    **kwargs,
) -> PlacementSpec:
    """Instantiate the reference spec for a placement-strategy name.

    Mirrors :func:`repro.tiers.placement.make_placement`: ``"adaptive"``
    requires ``tier_capacities``; ``seed`` feeds stochastic strategies.
    """
    if name == "lce":
        return SpecLCEPlacement(**kwargs)
    if name == "lcd":
        return SpecLCDPlacement(**kwargs)
    if name == "problcd":
        return SpecProbLCDPlacement(seed=seed, **kwargs)
    if name == "adaptive":
        if tier_capacities is None:
            raise ValueError(
                "adaptive placement needs tier_capacities to size its "
                "shadow topologies"
            )
        return SpecAdaptivePlacement(tier_capacities, seed=seed, **kwargs)
    known = ", ".join(placement_spec_names())
    raise ValueError(f"no spec for placement {name!r}; known: {known}")


class SpecTieredKV:
    """A reference tiered KV cache: plain LRU lists under a placement spec.

    Restates :class:`repro.tiers.kv.TieredKVCache` over LRU-policy
    shard tiers in the oracle's textbook style: each tier is a key list
    in recency order (LRU first), and every operation applies the
    placement spec's decisions at exactly the points the real walker
    consults its strategy — so operation streams replayed through both
    must agree on every serve, admit and residency set.

    Args:
        tier_names: tier names, near-to-far.
        tier_capacities: entry capacity per tier.
        placement: the placement spec making copy decisions.
        backing_name: reporting name for the backing level.
    """

    def __init__(
        self,
        tier_names: Sequence[str],
        tier_capacities: Sequence[int],
        placement: PlacementSpec,
        backing_name: str = "backing",
    ):
        if len(tier_names) != len(tier_capacities) or not tier_names:
            raise ValueError("need matching, non-empty names/capacities")
        self.names = list(tier_names)
        self.caps = list(tier_capacities)
        self.placement = placement
        self.backing_name = backing_name
        # Key list per tier, recency order: index 0 is the LRU victim.
        self.tiers: List[List] = [[] for _ in tier_names]

    def _probe(self, key) -> int:
        """Index of the first tier holding ``key`` (touched), else the
        tier count."""
        for index, order in enumerate(self.tiers):
            if key in order:
                order.remove(key)
                order.append(key)
                return index
        return len(self.tiers)

    def _admit(self, index: int, key) -> None:
        """LRU-install ``key`` into tier ``index`` (touch if resident)."""
        order = self.tiers[index]
        if key in order:
            order.remove(key)
            order.append(key)
            return
        if len(order) == self.caps[index]:
            order.pop(0)
        order.append(key)

    def _admit_copies(self, served: int, key) -> Tuple[str, ...]:
        targets = self.placement.copy_tiers(len(self.tiers), served, key)
        admitted = [
            self.names[index] for index in sorted(targets)
        ]
        for index in sorted(targets, reverse=True):
            self._admit(index, key)
        return tuple(admitted)

    def get(self, key) -> PlacementDecision:
        """Plain get: probe, promote per placement; no backing consult."""
        self.placement.observe_access(key, False)
        served = self._probe(key)
        if served == len(self.tiers):
            return PlacementDecision(found=False)
        admitted = self._admit_copies(served, key)
        return PlacementDecision(True, self.names[served], admitted)

    def fetch(self, key) -> PlacementDecision:
        """Demand fill: a total miss serves from backing and places."""
        self.placement.observe_access(key, False)
        served = self._probe(key)
        if served == len(self.tiers):
            served_name = self.backing_name
        else:
            served_name = self.names[served]
        admitted = self._admit_copies(served, key)
        return PlacementDecision(True, served_name, admitted)

    def put(self, key) -> PlacementDecision:
        """Write-through: place as a backing-served fill; skipped tiers
        are invalidated, and a nowhere decision lands in the far tier."""
        self.placement.observe_access(key, True)
        num_tiers = len(self.tiers)
        targets = set(
            self.placement.copy_tiers(num_tiers, num_tiers, key)
        ) or {num_tiers - 1}
        admitted = []
        for index in range(num_tiers - 1, -1, -1):
            if index in targets:
                self._admit(index, key)
                admitted.append(self.names[index])
            elif key in self.tiers[index]:
                self.tiers[index].remove(key)
        admitted.reverse()
        return PlacementDecision(True, None, tuple(admitted))

    def delete(self, key) -> PlacementDecision:
        """Drop ``key`` from every tier."""
        removed = False
        for order in self.tiers:
            if key in order:
                order.remove(key)
                removed = True
        return PlacementDecision(found=removed)

    def resident(self, index: int) -> List:
        """Sorted keys resident in tier ``index``."""
        return sorted(self.tiers[index])
