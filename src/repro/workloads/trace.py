"""Trace container and record kinds.

A trace is a flat list of records, each a ``(kind, address, gap)`` tuple:

* ``kind`` — one of the ``KIND_*`` constants below.
* ``address`` — byte address for memory records, branch PC for branches.
* ``gap`` — number of plain (non-memory, non-branch) instructions that
  execute before this record.

Plain tuples (rather than objects) keep long-trace simulation cheap; the
:class:`Trace` wrapper carries the name, derived statistics and helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

KIND_LOAD = 0
KIND_STORE = 1
KIND_BRANCH_TAKEN = 2
KIND_BRANCH_NOT_TAKEN = 3

Record = Tuple[int, int, int]


@dataclass
class Trace:
    """A named instruction/memory trace.

    Attributes:
        name: workload name (benchmark names mirror the paper's).
        records: the record tuples, in program order.
    """

    name: str
    records: List[Record] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        """Total instructions: every record is one instruction plus its gap."""
        return sum(r[2] for r in self.records) + len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def memory_records(self) -> Iterator[Record]:
        """Only the load/store records, in order."""
        return (r for r in self.records if r[0] <= KIND_STORE)

    def branch_records(self) -> Iterator[Record]:
        """Only the branch records, in order."""
        return (r for r in self.records if r[0] >= KIND_BRANCH_TAKEN)

    def memory_stream(self) -> Tuple[List[int], List[bool]]:
        """Addresses and write flags of the load/store records, in order.

        The shape :meth:`~repro.cache.cache.SetAssociativeCache.access_many`
        consumes; replay loops that only need aggregate statistics
        extract the stream once and hand it to the batched entry point.
        """
        addresses: List[int] = []
        writes: List[bool] = []
        for kind, address, _gap in self.records:
            if kind <= KIND_STORE:
                addresses.append(address)
                writes.append(kind == KIND_STORE)
        return addresses, writes

    def memory_access_count(self) -> int:
        """Number of load/store records."""
        return sum(1 for r in self.records if r[0] <= KIND_STORE)

    def store_count(self) -> int:
        """Number of store records."""
        return sum(1 for r in self.records if r[0] == KIND_STORE)

    def branch_count(self) -> int:
        """Number of branch records."""
        return sum(1 for r in self.records if r[0] >= KIND_BRANCH_TAKEN)

    def footprint_lines(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines touched by memory records."""
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be positive, got {line_bytes}")
        shift = line_bytes.bit_length() - 1
        return len({r[1] >> shift for r in self.memory_records()})

    def block_addresses(self, line_bytes: int = 64) -> List[int]:
        """Line-granular addresses of the memory records, in order."""
        shift = line_bytes.bit_length() - 1
        return [r[1] >> shift for r in self.memory_records()]
