"""Composing address streams: phases, interleavings, set confinement.

Programs like ammp and mgrid (Figure 7) switch locality class over time
*and* across cache sets. These combinators build such behaviour out of
the primitives in :mod:`repro.workloads.synth`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def concat_phases(*streams: Sequence[int]) -> List[int]:
    """Run streams back to back — temporal phase behaviour (ammp)."""
    out: List[int] = []
    for stream in streams:
        out.extend(stream)
    return out


def interleave_streams(
    streams: Sequence[Sequence[int]],
    weights: Sequence[float] = None,
    seed: int = 0,
) -> List[int]:
    """Probabilistically interleave several streams into one.

    Each output reference is drawn from stream ``i`` with probability
    ``weights[i]`` (uniform by default); a stream that runs dry restarts
    from its beginning. Models independent data structures accessed
    concurrently (different arrays, heap vs stack).
    """
    if not streams:
        raise ValueError("need at least one stream")
    if any(len(s) == 0 for s in streams):
        raise ValueError("streams must be non-empty")
    n = len(streams)
    if weights is None:
        weights = [1.0 / n] * n
    if len(weights) != n:
        raise ValueError(f"expected {n} weights, got {len(weights)}")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = [w / total for w in weights]
    length = sum(len(s) for s in streams)
    rng = np.random.default_rng(seed)
    choices = rng.choice(n, size=length, p=probs)
    positions = [0] * n
    out: List[int] = []
    for c in choices:
        stream = streams[c]
        out.append(stream[positions[c] % len(stream)])
        positions[c] += 1
    return out


def confine_to_sets(
    stream: Sequence[int],
    set_lo: int,
    set_hi: int,
    num_sets: int,
) -> List[int]:
    """Remap a line stream so it only lands in sets [set_lo, set_hi).

    A line's set is ``line % num_sets`` in a conventional cache; the
    remapping preserves each line's identity (distinct lines stay
    distinct) while pinning the stream to a band of sets. Used to build
    spatially varying behaviour: one region of the data is scanned while
    another is reused, and they fall in different sets (mgrid).
    """
    if not 0 <= set_lo < set_hi <= num_sets:
        raise ValueError(
            f"need 0 <= set_lo < set_hi <= num_sets, got "
            f"[{set_lo}, {set_hi}) of {num_sets}"
        )
    band = set_hi - set_lo
    return [
        (line // band) * num_sets + set_lo + (line % band)
        for line in stream
    ]
