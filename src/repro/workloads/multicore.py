"""Shared-cache workload mixes — the paper's multi-core future work.

Section 6: "We plan on evaluating adaptive caching policies for shared
last-level caches in a multi-core environment. We believe that the
combination of memory traffic from dissimilar threads or applications
will provide even more opportunities for the adaptive mechanism."

This module builds that combined traffic: each core's trace keeps its
own (disjoint) address space — so the cores *compete* for shared-cache
capacity without sharing data — and the record streams are interleaved
in proportion to their lengths, approximating simultaneous execution.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cache.config import CacheConfig
from repro.workloads.suite import build_workload
from repro.workloads.trace import KIND_STORE, Record, Trace

# Per-core address-space separation: above any synthetic footprint, and
# aligned so it never changes a reference's set index.
CORE_ADDRESS_STRIDE = 1 << 36


def offset_core_records(records: Sequence[Record], core: int) -> List[Record]:
    """Rebase a core's memory addresses into its private address space.

    Branch PCs are left alone (each core has its own predictor in a real
    system; the timing model treats the combined branch stream as one,
    which only makes the shared baseline *harder*, not easier).
    """
    if core < 0:
        raise ValueError(f"core must be >= 0, got {core}")
    offset = core * CORE_ADDRESS_STRIDE
    rebased = []
    for kind, address, gap in records:
        if kind <= KIND_STORE:
            rebased.append((kind, address + offset, gap))
        else:
            rebased.append((kind, address, gap))
    return rebased


def interleave_traces(traces: Sequence[Trace], seed: int = 0) -> Trace:
    """Merge per-core traces into one shared-cache reference stream.

    Records are drawn from the cores in random order, weighted by how
    many records each core has left, so all cores finish together —
    a simple model of symmetric simultaneous execution.
    """
    if not traces:
        raise ValueError("need at least one trace")
    streams = [
        offset_core_records(trace.records, core)
        for core, trace in enumerate(traces)
    ]
    remaining = [len(s) for s in streams]
    total = sum(remaining)
    rng = np.random.default_rng(seed)
    positions = [0] * len(streams)
    merged: List[Record] = []
    # Draw cores in bulk for speed; redraw when a core runs dry.
    while len(merged) < total:
        weights = np.asarray(remaining, dtype=np.float64)
        alive = weights.sum()
        draws = rng.choice(
            len(streams), size=min(4096, total - len(merged)),
            p=weights / alive,
        )
        for core in draws:
            if remaining[core] == 0:
                continue
            merged.append(streams[core][positions[core]])
            positions[core] += 1
            remaining[core] -= 1
    name = "+".join(trace.name for trace in traces)
    return Trace(name=name, records=merged)


def build_shared_workload(
    names: Sequence[str],
    config: CacheConfig,
    accesses_per_core: int = 30_000,
    seed: int = 0,
) -> Trace:
    """Build and interleave the named workloads for a shared cache.

    Footprints still scale against ``config`` (the *shared* cache), so
    an N-core mix pressures the cache roughly N times harder than any
    solo run — the regime the paper expects adaptivity to enjoy.
    """
    traces = [
        build_workload(name, config, accesses=accesses_per_core,
                       seed_offset=core)
        for core, name in enumerate(names)
    ]
    return interleave_traces(traces, seed=seed)
