"""Address-pattern primitives.

Each generator returns a list of *line numbers* (cache-line-granular
addresses). The builder later scales them to byte addresses and wraps
them with instruction gaps, stores and branches.

The primitives correspond to the locality classes the paper's Section
2.1 discusses:

* :func:`working_set` — "scattered data with good temporal locality":
  near-optimal for LRU, bad for nothing.
* :func:`linear_loop` — "a linear loop slightly larger than the cache is
  bad for a set-associative, LRU-managed cache" (and great for MRU/LFU).
* :func:`zipf_stream` / :func:`scan_with_hot` — "LFU is ideal for
  separating large regions of blocks that are only used once from
  commonly accessed data — a common pattern in media-management
  applications".
* :func:`pointer_chase` — pointer-intensive codes (mcf and friends).
* :func:`strided_sweep` — array codes that skip elements (mgrid's RPRJ3).
"""

from __future__ import annotations

from typing import List

import numpy as np


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def linear_loop(footprint_lines: int, accesses: int, start_line: int = 0) -> List[int]:
    """Repeatedly sweep a contiguous region of ``footprint_lines`` lines.

    With a footprint slightly larger than (its share of) the cache this
    is the canonical LRU-thrashing pattern: every reference misses under
    LRU while MRU/LFU retain a stable prefix of the loop.
    """
    if footprint_lines <= 0 or accesses < 0:
        raise ValueError("footprint_lines must be positive, accesses >= 0")
    reps = -(-accesses // footprint_lines)
    stream = np.tile(np.arange(footprint_lines, dtype=np.int64), reps)[:accesses]
    return (stream + start_line).tolist()


def working_set(
    hot_lines: int,
    accesses: int,
    seed: int = 0,
    start_line: int = 0,
    locality: float = 0.0,
) -> List[int]:
    """Random references within a hot set of ``hot_lines`` lines.

    ``locality`` in [0, 1) mixes in stack-distance locality: with
    probability ``locality`` the next reference repeats one of the 4 most
    recent distinct lines, concentrating reuse the way integer codes do.
    """
    if hot_lines <= 0 or accesses < 0:
        raise ValueError("hot_lines must be positive, accesses >= 0")
    if not 0.0 <= locality < 1.0:
        raise ValueError(f"locality must be in [0, 1), got {locality}")
    rng = _rng(seed)
    uniform = rng.integers(0, hot_lines, size=accesses)
    if locality == 0.0:
        return (uniform + start_line).tolist()
    stream: List[int] = []
    recent: List[int] = []
    reuse = rng.random(accesses)
    picks = rng.integers(0, 4, size=accesses)
    for i in range(accesses):
        if recent and reuse[i] < locality:
            line = recent[picks[i] % len(recent)]
        else:
            line = int(uniform[i])
        stream.append(line + start_line)
        if not recent or recent[-1] != line:
            recent.append(line)
            if len(recent) > 4:
                recent.pop(0)
    return stream


def zipf_stream(
    universe_lines: int,
    accesses: int,
    alpha: float = 1.1,
    seed: int = 0,
    start_line: int = 0,
    shuffle_ranks: bool = True,
) -> List[int]:
    """Zipf-distributed references over ``universe_lines`` lines.

    A few lines receive most references while a long tail is touched
    rarely — the frequency-skewed behaviour LFU exploits. Ranks are
    shuffled across the address space by default so the hot lines spread
    over all cache sets instead of clustering at low set indices.
    """
    if universe_lines <= 0 or accesses < 0:
        raise ValueError("universe_lines must be positive, accesses >= 0")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = _rng(seed)
    weights = 1.0 / np.power(np.arange(1, universe_lines + 1, dtype=np.float64), alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    ranks = np.searchsorted(cdf, rng.random(accesses))
    if shuffle_ranks:
        perm = rng.permutation(universe_lines)
        ranks = perm[ranks]
    return (ranks.astype(np.int64) + start_line).tolist()


def scan_with_hot(
    hot_lines: int,
    scan_lines: int,
    accesses: int,
    hot_fraction: float = 0.5,
    seed: int = 0,
    start_line: int = 0,
) -> List[int]:
    """Interleave a reused hot set with a one-pass streaming scan.

    The media-management pattern: ``hot_fraction`` of references go to a
    small, heavily reused region (above ``start_line``); the rest stream
    through fresh lines exactly once. LFU keeps the hot set resident;
    LRU lets the single-use scan evict it.
    """
    if hot_lines <= 0 or scan_lines <= 0 or accesses < 0:
        raise ValueError("hot_lines and scan_lines must be positive")
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    rng = _rng(seed)
    hot_picks = rng.integers(0, hot_lines, size=accesses)
    is_hot = rng.random(accesses) < hot_fraction
    scan_base = start_line + hot_lines
    stream: List[int] = []
    scan_pos = 0
    for i in range(accesses):
        if is_hot[i]:
            stream.append(start_line + int(hot_picks[i]))
        else:
            stream.append(scan_base + scan_pos % scan_lines)
            scan_pos += 1
    return stream


def drifting_working_set(
    hot_lines: int,
    accesses: int,
    drift_per_kaccess: float = 8.0,
    seed: int = 0,
    start_line: int = 0,
) -> List[int]:
    """A hot window that slides slowly across the address space.

    References are uniform within the current window; the window's base
    advances ``drift_per_kaccess`` lines per thousand accesses. Recency
    tracks the drift immediately (LRU-friendly), while frequency counts
    accumulated on the old window keep stale blocks resident under LFU —
    the behaviour the paper reports for lucas ("much better miss rates
    with an LRU policy").
    """
    if hot_lines <= 0 or accesses < 0:
        raise ValueError("hot_lines must be positive, accesses >= 0")
    if drift_per_kaccess < 0:
        raise ValueError(f"drift must be >= 0, got {drift_per_kaccess}")
    rng = _rng(seed)
    offsets = rng.integers(0, hot_lines, size=accesses)
    bases = (
        np.arange(accesses, dtype=np.float64) * (drift_per_kaccess / 1000.0)
    ).astype(np.int64)
    return (bases + offsets + start_line).tolist()


def pointer_chase(
    nodes: int,
    accesses: int,
    lines_per_node: int = 1,
    seed: int = 0,
    start_line: int = 0,
) -> List[int]:
    """Random walk over a fixed pointer graph of ``nodes`` nodes.

    Each node occupies ``lines_per_node`` consecutive lines; following a
    pointer touches the first line of the successor node. The successor
    table is fixed per seed, so the walk revisits nodes with the skewed
    reuse typical of pointer codes (mcf, ft, ks).
    """
    if nodes <= 0 or lines_per_node <= 0 or accesses < 0:
        raise ValueError("nodes and lines_per_node must be positive")
    rng = _rng(seed)
    successors = rng.integers(0, nodes, size=(nodes, 2))
    pick = rng.integers(0, 2, size=accesses)
    stream: List[int] = []
    node = 0
    for i in range(accesses):
        stream.append(start_line + node * lines_per_node)
        node = int(successors[node][pick[i]])
    return stream


def strided_sweep(
    footprint_lines: int,
    stride_lines: int,
    accesses: int,
    start_line: int = 0,
) -> List[int]:
    """Sweep a region with a fixed stride, wrapping around.

    Strides that are multiples of the number of sets concentrate
    pressure on a subset of sets — the spatially varying behaviour of
    mgrid's subroutines (Figure 7b).
    """
    if footprint_lines <= 0 or stride_lines <= 0 or accesses < 0:
        raise ValueError("footprint_lines and stride_lines must be positive")
    idx = (np.arange(accesses, dtype=np.int64) * stride_lines) % footprint_lines
    return (idx + start_line).tolist()
