"""Key streams: workloads for the online key-value engine.

The online engine (:mod:`repro.online`) is driven by *keys*, not
addresses. These generators re-express the locality classes of
:mod:`repro.workloads.synth` as key streams — Zipf skew (the pattern
LFU exploits), one-pass scans over a hot set (LRU's nemesis), loops
slightly larger than the cache (LRU-thrashing), and phase changes that
flip between those regimes, the workload shape the adaptive scheme
exists for. A bridge, :func:`keys_from_trace`, replays the simulator's
address traces as key streams so the same named benchmarks (ammp, mcf,
...) can exercise the engine.

Keys are strings (``"prefix:line"``) so generators compose without
colliding: distinct prefixes are distinct key universes.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.utils.rng import DeterministicRNG
from repro.workloads.synth import (
    linear_loop,
    scan_with_hot,
    zipf_stream,
)
from repro.workloads.trace import Trace


def _name(prefix: str, lines: Sequence[int]) -> List[str]:
    """Render a line stream as namespaced string keys."""
    return [f"{prefix}:{line}" for line in lines]


def zipf_keys(
    universe: int,
    accesses: int,
    alpha: float = 1.1,
    seed: int = 0,
    prefix: str = "z",
) -> List[str]:
    """Zipf-distributed keys: few hot keys, a long cold tail.

    The canonical web/memoization key distribution — frequency skew
    that LFU-style retention exploits.
    """
    return _name(prefix, zipf_stream(universe, accesses, alpha=alpha, seed=seed))


def loop_keys(
    footprint: int, accesses: int, prefix: str = "loop"
) -> List[str]:
    """A cyclic sweep over ``footprint`` keys.

    With a footprint slightly above capacity this thrashes LRU (every
    access misses) while MRU/LFU retain a stable resident subset.
    """
    return _name(prefix, linear_loop(footprint, accesses))


def scan_keys(
    hot: int,
    scan: int,
    accesses: int,
    hot_fraction: float = 0.5,
    seed: int = 0,
    prefix: str = "s",
) -> List[str]:
    """A reused hot set interleaved with a one-pass scan.

    The media/batch pattern: LFU keeps the hot set resident, LRU lets
    the single-use scan flush it.
    """
    return _name(
        prefix,
        scan_with_hot(hot, scan, accesses, hot_fraction=hot_fraction, seed=seed),
    )


def phase_change_keys(
    hot_universe: int,
    loop_footprint: int,
    accesses: int,
    phases: int = 4,
    alpha: float = 1.1,
    seed: int = 0,
    prefix: str = "p",
) -> List[str]:
    """Alternating Zipf and loop phases over disjoint key universes.

    Even phases draw Zipf-skewed keys from one universe (frequency
    locality — LFU's regime); odd phases sweep a loop over another
    (recency-hostile — where LFU's stale counts hurt and an adaptive
    cache must switch). This is the workload class the paper's Figure 7
    shows for ammp, expressed over keys; the ``ext-online`` acceptance
    check runs on it.
    """
    if phases <= 0:
        raise ValueError(f"phases must be positive, got {phases}")
    per_phase = -(-accesses // phases)
    stream: List[str] = []
    for phase in range(phases):
        want = min(per_phase, accesses - len(stream))
        if want <= 0:
            break
        if phase % 2 == 0:
            stream.extend(
                zipf_keys(hot_universe, want, alpha=alpha,
                          seed=seed + phase, prefix=f"{prefix}-hot")
            )
        else:
            stream.extend(
                loop_keys(loop_footprint, want, prefix=f"{prefix}-loop")
            )
    return stream


# ----------------------------------------------------------------------
# Open-loop load generation (the serving harness's event layer)
# ----------------------------------------------------------------------
#
# A closed-loop replay issues the next key as soon as the previous one
# answers; production serving is *open-loop* — requests arrive on their
# own schedule whether or not the server keeps up. The generators below
# produce timestamped request events for :mod:`repro.serve`: Poisson or
# bursty MMPP arrivals, Zipf popularity, YCSB-style A-D op mixes,
# per-client rate skew via a beta mixture (icarus's
# ``StationaryPacketLevelWorkload`` client model), and a trace-driven
# mode that replays a saved simulator trace on a Poisson clock.
#
# Everything is deterministic: a stream is a pure function of its spec
# and seed, regenerated from fresh forked RNGs on every iteration, so
# the same spec yields bit-identical events no matter how (or how many
# times, or in what chunking) it is consumed.


class Request(NamedTuple):
    """One open-loop request event.

    Attributes:
        at: arrival time in seconds from stream start (monotonically
            non-decreasing within a stream).
        key: the cache key addressed.
        op: ``"read"``, ``"update"`` or ``"insert"`` (YCSB verbs).
        client: issuing client id in ``[0, clients)``.
    """

    at: float
    key: str
    op: str
    client: int


#: YCSB core workload op mixes (read/update/insert fractions). D's
#: inserts grow the key universe and its reads skew toward the newest
#: keys ("read latest").
YCSB_MIXES = {
    "A": (("read", 0.5), ("update", 0.5)),
    "B": (("read", 0.95), ("update", 0.05)),
    "C": (("read", 1.0),),
    "D": (("read", 0.95), ("insert", 0.05)),
}


def poisson_arrivals(rate: float, seed: int = 0,
                     start: float = 0.0) -> Iterator[float]:
    """Unbounded Poisson arrival times at ``rate`` per second.

    Inter-arrivals are i.i.d. exponential with mean ``1/rate`` — the
    open-loop arrival model where the offered load is independent of
    how fast the server drains it.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = DeterministicRNG(seed).fork(11)
    now = start
    while True:
        now += rng.expovariate(rate)
        yield now


def mmpp_arrivals(
    rate: float,
    burst_rate: float,
    seed: int = 0,
    mean_dwell: float = 2.0,
    burst_dwell: float = 0.5,
    start: float = 0.0,
) -> Iterator[float]:
    """Two-state Markov-modulated Poisson arrivals (bursty traffic).

    The process alternates a *base* state (Poisson at ``rate``, mean
    dwell ``mean_dwell`` seconds) with a *burst* state (Poisson at
    ``burst_rate``, mean dwell ``burst_dwell``); dwell times are
    exponential. An arrival that would land past the current state's
    end is discarded and redrawn in the next state — the standard
    state-switch construction, kept deterministic by drawing every
    quantity from one forked stream.
    """
    if rate <= 0 or burst_rate <= 0:
        raise ValueError(
            f"rates must be positive, got {rate} and {burst_rate}"
        )
    if mean_dwell <= 0 or burst_dwell <= 0:
        raise ValueError(
            f"dwell times must be positive, got {mean_dwell} and "
            f"{burst_dwell}"
        )
    rng = DeterministicRNG(seed).fork(13)
    now = start
    bursting = False
    switch_at = start + rng.expovariate(1.0 / mean_dwell)
    while True:
        gap = rng.expovariate(burst_rate if bursting else rate)
        while now + gap >= switch_at:
            now = switch_at
            bursting = not bursting
            dwell = burst_dwell if bursting else mean_dwell
            switch_at = now + rng.expovariate(1.0 / dwell)
            gap = rng.expovariate(burst_rate if bursting else rate)
        now += gap
        yield now


class ZipfSampler:
    """Zipf(alpha) rank sampling by inversion over cumulative weights.

    Rank 0 is the most popular item. Sampling consumes exactly one
    uniform per draw, so streams sharing an RNG stay aligned.
    """

    def __init__(self, universe: int, alpha: float):
        if universe <= 0:
            raise ValueError(f"universe must be positive, got {universe}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.universe = universe
        self.alpha = alpha
        total = 0.0
        cumulative = []
        for rank in range(1, universe + 1):
            total += rank ** -alpha
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: DeterministicRNG) -> int:
        """One rank in ``[0, universe)``."""
        return bisect.bisect_left(
            self._cumulative, rng.random() * self._total
        )


def beta_client_weights(
    clients: int, alpha: float, beta: float, seed: int
) -> List[float]:
    """Per-client request-share weights from a Beta(alpha, beta) draw.

    Models heterogeneous client demand (a few heavy clients, a long
    tail of light ones); weights are normalized to sum to 1. A draw of
    exactly zero is nudged to a tiny floor so no client is silently
    dropped from the mixture.
    """
    if clients <= 0:
        raise ValueError(f"clients must be positive, got {clients}")
    rng = DeterministicRNG(seed).fork(17)
    weights = [max(rng.betavariate(alpha, beta), 1e-9)
               for _ in range(clients)]
    total = sum(weights)
    return [w / total for w in weights]


@dataclass(frozen=True)
class StreamSpec:
    """Deterministic open-loop request-stream specification.

    A spec is inert data; :meth:`requests` builds a fresh event
    iterator from it. Two iterations of the same spec are bit-identical
    (fresh forked RNGs each time), and chunked consumption cannot
    perturb the stream.

    Attributes:
        rate: mean arrival rate, requests/second.
        universe: initial key-universe size (Zipf-ranked).
        alpha: Zipf skew exponent (0 = uniform).
        mix: YCSB mix letter (``"A"``-``"D"``).
        clients: number of issuing clients.
        client_beta: Beta(a, b) shape of the per-client rate skew.
        process: ``"poisson"`` or ``"mmpp"``.
        burst_rate: MMPP burst-state rate (default ``4 * rate``).
        mean_dwell: MMPP base-state mean dwell, seconds.
        burst_dwell: MMPP burst-state mean dwell, seconds.
        seed: master seed; every sub-stream forks from it.
        prefix: key namespace prefix.
    """

    rate: float = 100.0
    universe: int = 512
    alpha: float = 1.0
    mix: str = "C"
    clients: int = 8
    client_beta: Tuple[float, float] = (2.0, 5.0)
    process: str = "poisson"
    burst_rate: Optional[float] = None
    mean_dwell: float = 2.0
    burst_dwell: float = 0.5
    seed: int = 0
    prefix: str = "r"

    def __post_init__(self):
        if self.mix not in YCSB_MIXES:
            raise ValueError(
                f"unknown YCSB mix {self.mix!r}; use one of "
                f"{sorted(YCSB_MIXES)}"
            )
        if self.process not in ("poisson", "mmpp"):
            raise ValueError(
                f"unknown arrival process {self.process!r}; use "
                "'poisson' or 'mmpp'"
            )

    def arrivals(self) -> Iterator[float]:
        """The spec's arrival-time stream (fresh iterator each call)."""
        if self.process == "mmpp":
            return mmpp_arrivals(
                self.rate,
                self.burst_rate if self.burst_rate else 4.0 * self.rate,
                seed=self.seed,
                mean_dwell=self.mean_dwell,
                burst_dwell=self.burst_dwell,
            )
        return poisson_arrivals(self.rate, seed=self.seed)

    def requests(self) -> Iterator[Request]:
        """The spec's request events, lazily and deterministically.

        Arrival times, popularity ranks, op choices and client
        assignment each draw from an independently forked RNG, so the
        marginal statistics of one dimension are unaffected by the
        others (and testable in isolation).
        """
        sampler = ZipfSampler(self.universe, self.alpha)
        op_rng = DeterministicRNG(self.seed).fork(19)
        pop_rng = DeterministicRNG(self.seed).fork(23)
        client_rng = DeterministicRNG(self.seed).fork(29)
        weights = beta_client_weights(
            self.clients, self.client_beta[0], self.client_beta[1],
            self.seed,
        )
        client_cumulative = []
        total = 0.0
        for weight in weights:
            total += weight
            client_cumulative.append(total)
        mix = YCSB_MIXES[self.mix]
        inserted = 0
        for at in self.arrivals():
            draw = op_rng.random()
            op = mix[-1][0]
            acc = 0.0
            for name, fraction in mix:
                acc += fraction
                if draw < acc:
                    op = name
                    break
            client = bisect.bisect_left(
                client_cumulative, client_rng.random() * total
            )
            client = min(client, self.clients - 1)
            if op == "insert":
                key = f"{self.prefix}:new:{inserted}"
                inserted += 1
            else:
                rank = sampler.sample(pop_rng)
                if self.mix == "D":
                    # Read-latest: rank 0 is the *newest* key. Inserts
                    # prepend to the recency order; the initial universe
                    # forms its tail.
                    index = (self.universe + inserted) - 1 - min(
                        rank, self.universe + inserted - 1
                    )
                    key = (
                        f"{self.prefix}:new:{index - self.universe}"
                        if index >= self.universe
                        else f"{self.prefix}:{index}"
                    )
                else:
                    key = f"{self.prefix}:{rank}"
            yield Request(at, key, op, client)

    def take(self, count: int) -> List[Request]:
        """The first ``count`` events, materialized (testing helper)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out = []
        for request in self.requests():
            if len(out) >= count:
                break
            out.append(request)
        return out


@dataclass(frozen=True)
class TraceStreamSpec:
    """Trace-driven open-loop stream: saved trace keys on a Poisson clock.

    Reuses the simulator's trace serialization
    (:mod:`repro.workloads.io`): ``source`` may be a
    :class:`~repro.workloads.trace.Trace` or a path to a saved ``.npz``
    trace, whose block addresses become read keys in file order while
    arrival times come from a Poisson process — the open-loop analogue
    of :func:`keys_from_trace`.
    """

    source: Union[str, os.PathLike, Trace] = ""
    rate: float = 100.0
    line_bytes: int = 64
    seed: int = 0
    prefix: str = "blk"
    # Cached key list (a Trace is immutable; loading is the slow part).
    _keys: Optional[Tuple[str, ...]] = field(default=None, repr=False,
                                             compare=False)

    def keys(self) -> Tuple[str, ...]:
        """The trace's key sequence (loaded once per spec call)."""
        if self._keys is not None:
            return self._keys
        trace = self.source
        if not isinstance(trace, Trace):
            from repro.workloads.io import load_trace

            trace = load_trace(trace)
        keys = tuple(
            keys_from_trace(trace, self.line_bytes, prefix=self.prefix)
        )
        object.__setattr__(self, "_keys", keys)
        return keys

    def requests(self) -> Iterator[Request]:
        """The trace replayed as timestamped read requests."""
        keys = self.keys()
        for key, at in zip(keys, poisson_arrivals(self.rate,
                                                  seed=self.seed)):
            yield Request(at, key, "read", 0)


def keys_from_trace(
    trace: Trace, line_bytes: int = 64, prefix: str = "blk"
) -> List[str]:
    """Replay a simulator address trace as a key stream.

    Each memory record becomes the key of its cache line, so the
    engine sees exactly the block-reuse structure the set-indexed
    simulator saw — the bridge that lets the named suite workloads
    (ammp, mcf, lucas, ...) exercise the online engine.
    """
    return _name(prefix, trace.block_addresses(line_bytes))
