"""Key streams: workloads for the online key-value engine.

The online engine (:mod:`repro.online`) is driven by *keys*, not
addresses. These generators re-express the locality classes of
:mod:`repro.workloads.synth` as key streams — Zipf skew (the pattern
LFU exploits), one-pass scans over a hot set (LRU's nemesis), loops
slightly larger than the cache (LRU-thrashing), and phase changes that
flip between those regimes, the workload shape the adaptive scheme
exists for. A bridge, :func:`keys_from_trace`, replays the simulator's
address traces as key streams so the same named benchmarks (ammp, mcf,
...) can exercise the engine.

Keys are strings (``"prefix:line"``) so generators compose without
colliding: distinct prefixes are distinct key universes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.synth import (
    linear_loop,
    scan_with_hot,
    zipf_stream,
)
from repro.workloads.trace import Trace


def _name(prefix: str, lines: Sequence[int]) -> List[str]:
    """Render a line stream as namespaced string keys."""
    return [f"{prefix}:{line}" for line in lines]


def zipf_keys(
    universe: int,
    accesses: int,
    alpha: float = 1.1,
    seed: int = 0,
    prefix: str = "z",
) -> List[str]:
    """Zipf-distributed keys: few hot keys, a long cold tail.

    The canonical web/memoization key distribution — frequency skew
    that LFU-style retention exploits.
    """
    return _name(prefix, zipf_stream(universe, accesses, alpha=alpha, seed=seed))


def loop_keys(
    footprint: int, accesses: int, prefix: str = "loop"
) -> List[str]:
    """A cyclic sweep over ``footprint`` keys.

    With a footprint slightly above capacity this thrashes LRU (every
    access misses) while MRU/LFU retain a stable resident subset.
    """
    return _name(prefix, linear_loop(footprint, accesses))


def scan_keys(
    hot: int,
    scan: int,
    accesses: int,
    hot_fraction: float = 0.5,
    seed: int = 0,
    prefix: str = "s",
) -> List[str]:
    """A reused hot set interleaved with a one-pass scan.

    The media/batch pattern: LFU keeps the hot set resident, LRU lets
    the single-use scan flush it.
    """
    return _name(
        prefix,
        scan_with_hot(hot, scan, accesses, hot_fraction=hot_fraction, seed=seed),
    )


def phase_change_keys(
    hot_universe: int,
    loop_footprint: int,
    accesses: int,
    phases: int = 4,
    alpha: float = 1.1,
    seed: int = 0,
    prefix: str = "p",
) -> List[str]:
    """Alternating Zipf and loop phases over disjoint key universes.

    Even phases draw Zipf-skewed keys from one universe (frequency
    locality — LFU's regime); odd phases sweep a loop over another
    (recency-hostile — where LFU's stale counts hurt and an adaptive
    cache must switch). This is the workload class the paper's Figure 7
    shows for ammp, expressed over keys; the ``ext-online`` acceptance
    check runs on it.
    """
    if phases <= 0:
        raise ValueError(f"phases must be positive, got {phases}")
    per_phase = -(-accesses // phases)
    stream: List[str] = []
    for phase in range(phases):
        want = min(per_phase, accesses - len(stream))
        if want <= 0:
            break
        if phase % 2 == 0:
            stream.extend(
                zipf_keys(hot_universe, want, alpha=alpha,
                          seed=seed + phase, prefix=f"{prefix}-hot")
            )
        else:
            stream.extend(
                loop_keys(loop_footprint, want, prefix=f"{prefix}-loop")
            )
    return stream


def keys_from_trace(
    trace: Trace, line_bytes: int = 64, prefix: str = "blk"
) -> List[str]:
    """Replay a simulator address trace as a key stream.

    Each memory record becomes the key of its cache line, so the
    engine sees exactly the block-reuse structure the set-indexed
    simulator saw — the bridge that lets the named suite workloads
    (ammp, mcf, lucas, ...) exercise the online engine.
    """
    return _name(prefix, trace.block_addresses(line_bytes))
