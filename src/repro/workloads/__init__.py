"""Synthetic workload traces.

The paper evaluates on ~100 SimPoint samples of SPEC2000 / MediaBench /
MiBench / BioBench / pointer-intensive / graphics programs compiled for
Alpha — binaries and simulation infrastructure we cannot rerun. What the
adaptive cache responds to, however, is each program's *locality class*
(temporal-reuse vs frequency-skew vs streaming loops vs phase changes),
so this package substitutes parameterized synthetic generators and gives
each named benchmark of the paper the locality class the paper reports
for it (see DESIGN.md, Section 2).
"""

from repro.workloads.trace import (
    KIND_LOAD,
    KIND_STORE,
    KIND_BRANCH_TAKEN,
    KIND_BRANCH_NOT_TAKEN,
    Trace,
)
from repro.workloads.synth import (
    linear_loop,
    working_set,
    drifting_working_set,
    zipf_stream,
    scan_with_hot,
    pointer_chase,
    strided_sweep,
)
from repro.workloads.phases import concat_phases, interleave_streams, confine_to_sets
from repro.workloads.keystreams import (
    keys_from_trace,
    loop_keys,
    phase_change_keys,
    scan_keys,
    zipf_keys,
)
from repro.workloads.builder import BranchProfile, WorkloadBuilder
from repro.workloads.suite import (
    PRIMARY_SET,
    EXTENDED_SET,
    WorkloadSpec,
    build_workload,
    workload_names,
)
from repro.workloads.io import TraceFormatError, load_trace, save_trace
from repro.workloads.characterize import (
    TraceProfile,
    characterize,
    miss_ratio_curve,
    stack_distances,
)
from repro.workloads.multicore import build_shared_workload, interleave_traces

__all__ = [
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_BRANCH_TAKEN",
    "KIND_BRANCH_NOT_TAKEN",
    "Trace",
    "linear_loop",
    "working_set",
    "drifting_working_set",
    "zipf_stream",
    "scan_with_hot",
    "pointer_chase",
    "strided_sweep",
    "concat_phases",
    "interleave_streams",
    "confine_to_sets",
    "zipf_keys",
    "loop_keys",
    "scan_keys",
    "phase_change_keys",
    "keys_from_trace",
    "BranchProfile",
    "WorkloadBuilder",
    "PRIMARY_SET",
    "EXTENDED_SET",
    "WorkloadSpec",
    "build_workload",
    "workload_names",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "TraceProfile",
    "characterize",
    "miss_ratio_curve",
    "stack_distances",
    "build_shared_workload",
    "interleave_traces",
]
