"""Trace characterization: the numbers that predict cache behaviour.

Locality classes are claims about a trace's *structure*; this module
measures that structure directly, independent of any cache:

* **stack-distance histogram** — for each reference, the number of
  distinct lines touched since the previous reference to the same line
  (the classic LRU stack distance, computed exactly in O(N log N) with
  a Fenwick tree). A fully-associative LRU cache of capacity C hits
  exactly the references with distance < C, so the histogram's CDF *is*
  the miss-ratio curve.
* **footprint and single-use fraction** — how many distinct lines, and
  how many are touched exactly once (the scan component LFU separates
  out).
* **instruction mix** — loads/stores/branches per kilo-instruction.

Used by ``repro-sim --characterize`` and the workload tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.workloads.trace import Trace


class _Fenwick:
    """Binary indexed tree over positions, for counting live lines."""

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions < index."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def stack_distances(blocks: Sequence[int]) -> List[int]:
    """Exact LRU stack distance per reference; -1 for cold references.

    Distance = number of *distinct* blocks referenced since the last
    reference to this block (0 = immediate re-reference).
    """
    tree = _Fenwick(len(blocks))
    last_position: Dict[int, int] = {}
    distances: List[int] = []
    for position, block in enumerate(blocks):
        previous = last_position.get(block)
        if previous is None:
            distances.append(-1)
        else:
            # Live distinct blocks strictly after `previous`.
            distances.append(
                tree.prefix_sum(position) - tree.prefix_sum(previous + 1)
            )
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[block] = position
    return distances


def miss_ratio_curve(
    blocks: Sequence[int], capacities: Sequence[int]
) -> List[float]:
    """Fully-associative LRU miss ratio at each capacity (in lines).

    Computed from the stack-distance histogram in one pass — the
    Mattson et al. inclusion property in action.
    """
    if not blocks:
        raise ValueError("need at least one reference")
    for capacity in capacities:
        if capacity <= 0:
            raise ValueError(f"capacities must be positive, got {capacity}")
    distances = stack_distances(blocks)
    histogram = Counter(distances)
    total = len(blocks)
    curve = []
    for capacity in capacities:
        hits = sum(
            count for distance, count in histogram.items()
            if 0 <= distance < capacity
        )
        curve.append(1.0 - hits / total)
    return curve


@dataclass(frozen=True)
class TraceProfile:
    """Structural summary of one trace.

    Attributes:
        references: memory references analysed.
        footprint_lines: distinct lines touched.
        single_use_fraction: fraction of lines touched exactly once —
            the scan component.
        store_fraction: stores / memory references.
        branches_per_kinst: branch records per 1000 instructions.
        median_stack_distance: median over warm references (-1 if none).
        miss_curve: {capacity_lines: fully-associative LRU miss ratio}.
    """

    references: int
    footprint_lines: int
    single_use_fraction: float
    store_fraction: float
    branches_per_kinst: float
    median_stack_distance: int
    miss_curve: Dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"references:            {self.references}",
            f"footprint:             {self.footprint_lines} lines",
            f"single-use lines:      {self.single_use_fraction:.1%}",
            f"store fraction:        {self.store_fraction:.2f}",
            f"branches/kinst:        {self.branches_per_kinst:.1f}",
            f"median stack distance: {self.median_stack_distance}",
        ]
        for capacity, ratio in sorted(self.miss_curve.items()):
            lines.append(
                f"FA-LRU miss ratio @ {capacity:>6d} lines: {ratio:.3f}"
            )
        return "\n".join(lines)


def characterize(
    trace: Trace,
    line_bytes: int = 64,
    curve_capacities: Sequence[int] = (64, 256, 1024, 4096),
) -> TraceProfile:
    """Build a :class:`TraceProfile` for ``trace``."""
    blocks = trace.block_addresses(line_bytes)
    if not blocks:
        raise ValueError("trace has no memory references")
    touch_counts = Counter(blocks)
    single_use = sum(1 for count in touch_counts.values() if count == 1)
    distances = [d for d in stack_distances(blocks) if d >= 0]
    distances.sort()
    median = distances[len(distances) // 2] if distances else -1
    instructions = trace.instruction_count
    return TraceProfile(
        references=len(blocks),
        footprint_lines=len(touch_counts),
        single_use_fraction=single_use / len(touch_counts),
        store_fraction=(
            trace.store_count() / len(blocks) if blocks else 0.0
        ),
        branches_per_kinst=1000.0 * trace.branch_count() / instructions
        if instructions else 0.0,
        median_stack_distance=median,
        miss_curve=dict(
            zip(curve_capacities, miss_ratio_curve(blocks, curve_capacities))
        ),
    )
