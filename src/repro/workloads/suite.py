"""The named workload suite.

The paper simulates 100 application/input pairs from SPECcpu2000,
MediaBench, MiBench, BioBench, pointer-intensive codes and graphics
programs, and focuses on a *primary set* of 26 whose LRU-managed 512 KB
L2 suffers more than 1 MPKI. This module mirrors that structure with
synthetic stand-ins: every benchmark name from the paper's Figures 3-8
appears here with a recipe matching the locality class the paper
reports for it (lucas is strongly LRU-friendly, art is loop/LFU
friendly, ammp and mgrid switch behaviour over time and across sets,
unepic dithers, ...). The extended set fills out the remaining 74
programs, mostly with cache-resident footprints, to reproduce the
paper's robustness claim (adaptivity never hurts by more than ~1%).

Footprints are expressed relative to the target cache's capacity, so
the suite scales from the benchmark-friendly 16 KB configuration up to
the paper's 512 KB one.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.cache.config import CacheConfig
from repro.workloads.builder import BranchProfile, WorkloadBuilder
from repro.workloads.phases import concat_phases, confine_to_sets, interleave_streams
from repro.workloads.synth import (
    drifting_working_set,
    linear_loop,
    pointer_chase,
    scan_with_hot,
    strided_sweep,
    working_set,
    zipf_stream,
)
from repro.workloads.trace import Trace

Recipe = Callable[[CacheConfig, int, int], List[int]]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named synthetic benchmark.

    Attributes:
        name: benchmark name (paper's naming, input pairs suffixed).
        suite: origin suite in the paper (spec-fp, spec-int, mediabench,
            mibench, biobench, pointer, graphics).
        locality: dominant locality class — ``"lru"``, ``"lfu"``,
            ``"mru"``, ``"phase"``, ``"stream"``, ``"dither"`` or
            ``"low"`` (fits in cache); used by tests and reports.
        recipe: ``(config, accesses, seed) -> line stream``.
        mean_gap: mean plain instructions between records.
        write_fraction: store fraction of memory references.
        branches: branch stream shape.
    """

    name: str
    suite: str
    locality: str
    recipe: Recipe
    mean_gap: float = 3.0
    write_fraction: float = 0.3
    branches: BranchProfile = field(default_factory=BranchProfile)


def workload_seed(name: str, offset: int = 0) -> int:
    """Stable per-name seed (crc32 of the name plus an offset)."""
    return (zlib.crc32(name.encode()) + offset) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Recipe factories. Footprints scale with config.num_lines (cache capacity
# in lines) so behaviour classes survive cache-size scaling.
# ---------------------------------------------------------------------------


def loop_recipe(scale: float) -> Recipe:
    """Linear loop of ``scale`` x cache capacity (LRU-hostile when >1)."""

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        footprint = max(config.ways + 1, int(scale * config.num_lines))
        return linear_loop(footprint, accesses)

    return recipe


def drift_recipe(hot_scale: float, drift: float = 8.0) -> Recipe:
    """Sliding hot window (LRU-friendly, LFU-hostile)."""

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        hot = max(config.ways, int(hot_scale * config.num_lines))
        return drifting_working_set(hot, accesses, drift, seed=seed)

    return recipe


def zipf_recipe(universe_scale: float, alpha: float = 1.2) -> Recipe:
    """Frequency-skewed references (LFU-friendly)."""

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        universe = max(2 * config.ways, int(universe_scale * config.num_lines))
        return zipf_stream(universe, accesses, alpha=alpha, seed=seed)

    return recipe


def scan_hot_recipe(hot_scale: float, hot_fraction: float = 0.5) -> Recipe:
    """Reused hot set + one-pass scan (media pattern, LFU-friendly)."""

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        hot = max(config.ways, int(hot_scale * config.num_lines))
        scan = max(4 * config.num_lines, accesses)
        return scan_with_hot(hot, scan, accesses, hot_fraction, seed=seed)

    return recipe


def chase_recipe(nodes_scale: float, lines_per_node: int = 1) -> Recipe:
    """Pointer graph walk (pointer-intensive codes)."""

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        nodes = max(2 * config.ways, int(nodes_scale * config.num_lines))
        return pointer_chase(nodes, accesses, lines_per_node, seed=seed)

    return recipe


def stride_recipe(footprint_scale: float, stride_lines: int) -> Recipe:
    """Strided array sweep (FP array codes).

    The footprint is nudged to be coprime with the stride: otherwise a
    stride dividing the footprint silently collapses coverage to
    ``footprint/stride`` lines (e.g. stride 3 over 1.5 x a power-of-two
    cache), turning an intended streaming workload into a resident one.
    """

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        footprint = max(config.ways + 1, int(footprint_scale * config.num_lines))
        from math import gcd

        while gcd(footprint, stride_lines) != 1:
            footprint += 1
        return strided_sweep(footprint, stride_lines, accesses)

    return recipe


def resident_recipe(hot_scale: float = 0.4, locality: float = 0.3) -> Recipe:
    """Working set that fits in the cache (low-MPKI extended programs)."""

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        hot = max(config.ways, int(hot_scale * config.num_lines))
        return working_set(hot, accesses, seed=seed, locality=locality)

    return recipe


def dither_recipe(
    loop_scale: float = 1.25,
    hot_scale: float = 0.3,
    phase_per_set: float = 3.0,
    loop_fraction: float = 0.5,
) -> Recipe:
    """Rapidly alternating LRU/LFU-friendly micro-phases.

    Phases shorter than the adaptation window make the selector chase a
    moving target — the worst realistic case for adaptivity. Models the
    paper's unepic (max CPI deterioration, 1.2%) and tigr (max miss
    increase, 2.7%). Phase length scales with the set count
    (``phase_per_set`` accesses per set) so each set sees only a few
    decisive events per phase regardless of cache size.
    """

    def recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
        loop = max(config.ways + 1, int(loop_scale * config.num_lines))
        hot = max(config.ways, int(hot_scale * config.num_lines))
        phase_accesses = max(48, int(phase_per_set * config.num_sets))
        phases: List[List[int]] = []
        produced = 0
        phase_index = 0
        loop_cursor = 0  # the loop resumes where it stopped, so it
        # keeps cycling its full footprint across phases
        while produced < accesses:
            if phase_index % 2 == 0:
                n = min(
                    max(1, int(2 * loop_fraction * phase_accesses)),
                    accesses - produced,
                )
                segment = [
                    (loop_cursor + i) % loop for i in range(n)
                ]
                loop_cursor = (loop_cursor + n) % loop
                phases.append(segment)
            else:
                n = min(
                    max(1, int(2 * (1 - loop_fraction) * phase_accesses)),
                    accesses - produced,
                )
                phases.append(
                    drifting_working_set(hot, n, 24.0, seed=seed + phase_index)
                )
            produced += n
            phase_index += 1
        return concat_phases(*phases)

    return recipe


def ammp_recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
    """ammp: set-dependent behaviour early, then LFU phase, then LRU.

    Mirrors Figure 7(a): at first the best policy differs per set (one
    half of the sets sees a scan-with-hot region while the other half
    sees a drifting working set); a clearly LFU-favourable phase follows
    (~34M-46M cycles in the paper); LRU wins for the rest of the run.
    """
    num_sets = config.num_sets
    third = accesses // 3
    half = num_sets // 2 or 1
    lfu_half = confine_to_sets(
        scan_with_hot(
            max(config.ways, config.num_lines // 4),
            4 * config.num_lines,
            third // 2,
            hot_fraction=0.55,
            seed=seed,
        ),
        0,
        half,
        num_sets,
    )
    lru_half = confine_to_sets(
        drifting_working_set(
            max(config.ways, config.num_lines // 3), third - third // 2, 12.0,
            seed=seed + 1,
        ),
        half,
        num_sets,
        num_sets,
    )
    phase1 = interleave_streams([lfu_half, lru_half], seed=seed + 2)
    phase2 = scan_with_hot(
        max(config.ways, config.num_lines // 3),
        4 * config.num_lines,
        third,
        hot_fraction=0.5,
        seed=seed + 3,
    )
    phase3 = drifting_working_set(
        max(config.ways, int(0.75 * config.num_lines)),
        accesses - len(phase1) - len(phase2),
        max(30.0, 2000.0 * config.num_lines / accesses),
        seed=seed + 4,
    )
    return concat_phases(phase1, phase2, phase3)


def mgrid_recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
    """mgrid: LFU-favourable strided phase fading into LRU behaviour.

    Mirrors Figure 7(b): subroutines like RPRJ3 skip elements but touch
    neighbours (strided sweep + hot neighbourhood -> LFU-friendly), while
    ZERO3/NORM2U3 traverse linearly; over the run the balance moves
    towards linear/temporal (LRU) behaviour at a per-set-varying rate.
    """
    third = accesses // 3
    strided = interleave_streams(
        [
            strided_sweep(2 * config.num_lines, config.num_sets // 4 or 1, third // 2),
            zipf_stream(config.num_lines // 2 or 1, third - third // 2,
                        alpha=1.3, seed=seed),
        ],
        seed=seed + 1,
    )
    mixed = interleave_streams(
        [
            strided_sweep(2 * config.num_lines, config.num_sets // 4 or 1, third // 2),
            drifting_working_set(
                max(config.ways, config.num_lines // 3),
                third - third // 2, 10.0, seed=seed + 2,
            ),
        ],
        seed=seed + 3,
    )
    tail = drifting_working_set(
        max(config.ways, int(0.8 * config.num_lines)),
        accesses - len(strided) - len(mixed),
        16.0,
        seed=seed + 4,
    )
    return concat_phases(strided, mixed, tail)


def gcc1_recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
    """gcc-1: large linear loops mixed with temporal reuse (MRU-friendly
    in the FIFO/MRU pairing of Figure 8)."""
    return interleave_streams(
        [
            linear_loop(int(1.4 * config.num_lines), accesses // 2),
            working_set(
                max(config.ways, config.num_lines // 4),
                accesses - accesses // 2,
                seed=seed,
                locality=0.3,
            ),
        ],
        weights=[0.7, 0.3],
        seed=seed + 1,
    )


def art_recipe(config: CacheConfig, accesses: int, seed: int) -> List[int]:
    """art: neural-net weight sweeps — loops slightly larger than the
    cache interleaved with a frequency-skewed kernel (LFU and MRU
    friendly).

    The kernel's per-set reuse distance exceeds the associativity, so
    recency cannot hold it against the loop's pollution while frequency
    counts can — and the loop itself favours MRU (Figure 8 shows MRU
    beneficial for art).
    """
    return interleave_streams(
        [
            linear_loop(int(1.3 * config.num_lines), accesses * 13 // 20),
            zipf_stream(
                max(4 * config.ways, config.num_lines // 2),
                accesses - accesses * 13 // 20,
                alpha=1.3,
                seed=seed,
            ),
        ],
        weights=[0.65, 0.35],
        seed=seed + 1,
    )


# ---------------------------------------------------------------------------
# The primary set: the 26 programs of Figures 3, 4, 6, 8.
# ---------------------------------------------------------------------------

_FP = BranchProfile(density=0.35, loop_bias=0.97, random_fraction=0.08)
_INT = BranchProfile(density=0.9, loop_bias=0.92, random_fraction=0.2)
_PTR = BranchProfile(density=1.0, loop_bias=0.9, random_fraction=0.3)
_MEDIA = BranchProfile(density=0.6, loop_bias=0.95, random_fraction=0.12)

PRIMARY_SET: List[WorkloadSpec] = [
    WorkloadSpec("ammp", "spec-fp", "phase", ammp_recipe, 4.0, 0.28, _FP),
    WorkloadSpec("applu", "spec-fp", "stream", stride_recipe(1.6, 5), 5.0, 0.3, _FP),
    WorkloadSpec("art-1", "spec-fp", "lfu", art_recipe, 4.0, 0.2, _FP),
    WorkloadSpec(
        "art-2", "spec-fp", "lfu",
        lambda cfg, n, seed: art_recipe(cfg, n, seed + 17), 4.0, 0.2, _FP,
    ),
    WorkloadSpec("bzip2", "spec-int", "lru", drift_recipe(0.7, 14.0), 2.5, 0.3, _INT),
    WorkloadSpec("equake", "spec-fp", "stream", stride_recipe(1.8, 3), 4.5, 0.25, _FP),
    WorkloadSpec("facerec", "spec-fp", "lru", drift_recipe(0.8, 10.0), 4.0, 0.25, _FP),
    WorkloadSpec("fma3d", "spec-fp", "lru", drift_recipe(0.9, 9.0), 4.5, 0.3, _FP),
    WorkloadSpec("ft", "pointer", "lfu", chase_recipe(1.6), 2.0, 0.2, _PTR),
    WorkloadSpec("gap", "spec-int", "lru", drift_recipe(0.6, 12.0), 2.5, 0.3, _INT),
    WorkloadSpec("gcc-1", "spec-int", "mru", gcc1_recipe, 2.5, 0.3, _INT),
    WorkloadSpec("gcc-2", "spec-int", "lru", drift_recipe(0.8, 16.0), 2.5, 0.3, _INT),
    WorkloadSpec("lucas", "spec-fp", "lru", drift_recipe(0.9, 20.0), 5.0, 0.25, _FP),
    WorkloadSpec("mcf", "spec-int", "lfu", chase_recipe(3.0), 1.5, 0.2, _PTR),
    WorkloadSpec("mgrid", "spec-fp", "phase", mgrid_recipe, 5.0, 0.3, _FP),
    WorkloadSpec("parser", "spec-int", "lru", drift_recipe(0.75, 13.0), 2.0, 0.3, _INT),
    WorkloadSpec("swim", "spec-fp", "stream", stride_recipe(2.0, 7), 5.5, 0.35, _FP),
    WorkloadSpec(
        "tiff2rgba", "mibench", "lfu", scan_hot_recipe(0.3, 0.45), 3.0, 0.35, _MEDIA,
    ),
    WorkloadSpec("twolf", "spec-int", "phase",
                 dither_recipe(1.2, 0.5, phase_per_set=32.0), 2.0, 0.3, _INT),
    WorkloadSpec("unepic", "mediabench", "dither",
                 dither_recipe(1.25, 0.3, phase_per_set=3.0), 3.0, 0.25, _MEDIA),
    WorkloadSpec("vpr-1", "spec-int", "lru", drift_recipe(0.7, 11.0), 2.5, 0.3, _INT),
    WorkloadSpec("vpr-2", "spec-int", "lru", drift_recipe(0.8, 15.0), 2.5, 0.3, _INT),
    WorkloadSpec("wupwise", "spec-fp", "stream", stride_recipe(1.5, 3), 5.0, 0.3, _FP),
    WorkloadSpec(
        "x11quake-1", "graphics", "lfu", scan_hot_recipe(0.35, 0.5), 3.0, 0.25, _MEDIA,
    ),
    WorkloadSpec(
        "x11quake-2", "graphics", "lfu", scan_hot_recipe(0.4, 0.55), 3.0, 0.25, _MEDIA,
    ),
    WorkloadSpec("xanim", "graphics", "lfu",
                 scan_hot_recipe(0.3, 0.5), 3.0, 0.3, _MEDIA),
]


# ---------------------------------------------------------------------------
# The extended set: 74 further programs, mostly cache-resident, completing
# the paper's 100-application robustness suite.
# ---------------------------------------------------------------------------


def _low(name: str, suite: str, hot: float, seed_salt: int = 0) -> WorkloadSpec:
    gap = 4.0 if suite in ("spec-fp",) else 2.5
    return WorkloadSpec(
        name, suite, "low",
        resident_recipe(hot, 0.3),
        gap, 0.3, _INT if suite.endswith("int") else _MEDIA,
    )


_EXTENDED_EXTRA: List[WorkloadSpec] = [
    # SPEC CPU2000 integer, cache-resident inputs.
    _low("gzip-1", "spec-int", 0.35), _low("gzip-2", "spec-int", 0.5),
    _low("crafty", "spec-int", 0.3), _low("eon", "spec-int", 0.25),
    _low("perlbmk-1", "spec-int", 0.4), _low("perlbmk-2", "spec-int", 0.45),
    _low("vortex-1", "spec-int", 0.5), _low("vortex-2", "spec-int", 0.55),
    _low("vortex-3", "spec-int", 0.6),
    WorkloadSpec("gcc-3", "spec-int", "low", resident_recipe(0.55, 0.35),
                 2.5, 0.3, _INT),
    # SPEC CPU2000 floating point, resident or gently streaming.
    _low("mesa", "spec-fp", 0.4), _low("galgel", "spec-fp", 0.55),
    _low("apsi", "spec-fp", 0.5), _low("sixtrack", "spec-fp", 0.35),
    WorkloadSpec("ft-fft", "spec-fp", "low", stride_recipe(0.9, 3),
                 5.0, 0.3, _FP),
    # MediaBench codec pairs.
    WorkloadSpec("epic", "mediabench", "lfu", scan_hot_recipe(0.25, 0.5),
                 3.0, 0.25, _MEDIA),
    _low("g721enc", "mediabench", 0.2), _low("g721dec", "mediabench", 0.2),
    _low("gsmenc", "mediabench", 0.25), _low("gsmdec", "mediabench", 0.25),
    WorkloadSpec("jpegenc", "mediabench", "lfu", scan_hot_recipe(0.2, 0.4),
                 3.0, 0.3, _MEDIA),
    WorkloadSpec("jpegdec", "mediabench", "lfu", scan_hot_recipe(0.2, 0.45),
                 3.0, 0.3, _MEDIA),
    WorkloadSpec("mpeg2enc", "mediabench", "lfu", scan_hot_recipe(0.3, 0.4),
                 3.5, 0.3, _MEDIA),
    WorkloadSpec("mpeg2dec", "mediabench", "lfu", scan_hot_recipe(0.3, 0.5),
                 3.5, 0.3, _MEDIA),
    _low("pegwitenc", "mediabench", 0.3), _low("pegwitdec", "mediabench", 0.3),
    _low("rasta", "mediabench", 0.35),
    # MiBench embedded kernels.
    _low("basicmath", "mibench", 0.15), _low("bitcount", "mibench", 0.1),
    _low("qsort", "mibench", 0.45), _low("susan-s", "mibench", 0.3),
    _low("susan-e", "mibench", 0.3), _low("susan-c", "mibench", 0.3),
    WorkloadSpec("dijkstra", "mibench", "low", chase_recipe(0.5),
                 2.0, 0.2, _PTR),
    WorkloadSpec("patricia", "mibench", "low", chase_recipe(0.6),
                 2.0, 0.25, _PTR),
    _low("stringsearch", "mibench", 0.2), _low("blowfish", "mibench", 0.2),
    _low("rijndael", "mibench", 0.25), _low("sha", "mibench", 0.15),
    _low("adpcm", "mibench", 0.1), _low("crc32", "mibench", 0.1),
    WorkloadSpec("fft-mi", "mibench", "low", stride_recipe(0.8, 2),
                 4.0, 0.3, _FP),
    _low("gsm-mi", "mibench", 0.25), _low("lame", "mibench", 0.45),
   
    # BioBench.
    WorkloadSpec("tigr", "biobench", "dither", dither_recipe(1.2, 0.25, phase_per_set=2.5),
                 2.5, 0.25, _INT),
    WorkloadSpec("blastn", "biobench", "lru", drift_recipe(0.5, 9.0),
                 2.5, 0.25, _INT),
    WorkloadSpec("blastp", "biobench", "lru", drift_recipe(0.55, 8.0),
                 2.5, 0.25, _INT),
    _low("clustalw", "biobench", 0.4), _low("fasta-dna", "biobench", 0.5),
    _low("fasta-prot", "biobench", 0.45), _low("hmmer", "biobench", 0.5),
    WorkloadSpec("mummer", "biobench", "lfu", zipf_recipe(2.5, 1.25),
                 2.5, 0.2, _INT),
    _low("phylip", "biobench", 0.3),
    # Pointer-intensive suite (Austin et al.).
    WorkloadSpec("anagram", "pointer", "low", chase_recipe(0.4), 2.0, 0.2, _PTR),
    WorkloadSpec("bc", "pointer", "low", chase_recipe(0.5), 2.0, 0.25, _PTR),
    WorkloadSpec("ks", "pointer", "lfu", chase_recipe(1.3), 2.0, 0.2, _PTR),
    WorkloadSpec("yacr2", "pointer", "low", chase_recipe(0.6), 2.0, 0.25, _PTR),
    WorkloadSpec("tsp", "pointer", "lfu", chase_recipe(1.5), 2.0, 0.2, _PTR),
    WorkloadSpec("bh", "pointer", "low", chase_recipe(0.7), 2.5, 0.25, _PTR),
    WorkloadSpec("em3d", "pointer", "stream", stride_recipe(1.4, 3),
                 2.5, 0.25, _PTR),
    WorkloadSpec("health", "pointer", "lfu", chase_recipe(1.8), 2.0, 0.25, _PTR),
    WorkloadSpec("mst", "pointer", "low", chase_recipe(0.8), 2.0, 0.2, _PTR),
    WorkloadSpec("perimeter", "pointer", "low", chase_recipe(0.5),
                 2.0, 0.2, _PTR),
    WorkloadSpec("power", "pointer", "low", chase_recipe(0.45), 2.5, 0.25, _PTR),
    WorkloadSpec("treeadd", "pointer", "stream", stride_recipe(1.2, 1),
                 2.0, 0.2, _PTR),
    WorkloadSpec("tsort", "pointer", "low", chase_recipe(0.55), 2.0, 0.25, _PTR),
    # Graphics: 3D games and ray tracing.
    WorkloadSpec("quake3-1", "graphics", "lfu", scan_hot_recipe(0.4, 0.5),
                 3.0, 0.25, _MEDIA),
    WorkloadSpec("quake3-2", "graphics", "lfu", scan_hot_recipe(0.45, 0.55),
                 3.0, 0.25, _MEDIA),
    WorkloadSpec("raytrace-1", "graphics", "lru", drift_recipe(0.6, 10.0),
                 3.5, 0.2, _MEDIA),
    WorkloadSpec("raytrace-2", "graphics", "lru", drift_recipe(0.7, 12.0),
                 3.5, 0.2, _MEDIA),
    WorkloadSpec("povray", "graphics", "low", resident_recipe(0.5, 0.4),
                 3.5, 0.2, _MEDIA),
    WorkloadSpec("unreal", "graphics", "lfu", scan_hot_recipe(0.35, 0.45),
                 3.0, 0.25, _MEDIA),
    WorkloadSpec("doom3", "graphics", "lfu", scan_hot_recipe(0.4, 0.5),
                 3.0, 0.25, _MEDIA),
    WorkloadSpec("viewperf", "graphics", "stream", stride_recipe(1.3, 2),
                 3.5, 0.3, _MEDIA),
]

EXTENDED_SET: List[WorkloadSpec] = PRIMARY_SET + _EXTENDED_EXTRA

_BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in EXTENDED_SET}
if len(_BY_NAME) != len(EXTENDED_SET):
    raise RuntimeError("duplicate workload names in the suite")


def workload_names(primary_only: bool = False) -> List[str]:
    """Names of the suite's workloads, in figure order."""
    specs = PRIMARY_SET if primary_only else EXTENDED_SET
    return [spec.name for spec in specs]


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}") from None


def build_workload(
    name: str,
    config: CacheConfig,
    accesses: int = 100_000,
    seed_offset: int = 0,
) -> Trace:
    """Materialize a named workload as a full instruction trace.

    Args:
        name: a suite workload name (see :func:`workload_names`).
        config: the target L2 configuration footprints scale against.
        accesses: number of memory references to generate.
        seed_offset: perturbs the per-name deterministic seed, for
            generating independent samples of the same workload.
    """
    if accesses <= 0:
        raise ValueError(f"accesses must be positive, got {accesses}")
    spec = get_spec(name)
    seed = workload_seed(name, seed_offset)
    stream = spec.recipe(config, accesses, seed)
    builder = WorkloadBuilder(
        seed=seed + 1,
        mean_gap=spec.mean_gap,
        write_fraction=spec.write_fraction,
        branches=spec.branches,
        line_bytes=config.line_bytes,
    )
    return builder.build(name, stream)
