"""Trace serialization.

Long traces are expensive to regenerate (and the paper's methodology —
SimPoint samples — treats a trace as a fixed artifact), so traces can
be saved to and loaded from compressed ``.npz`` files. The format
stores the three record fields as parallel integer arrays plus the
trace name; it is stable, compact (a few bytes per record), and loads
orders of magnitude faster than regeneration.

Robustness: writes are atomic (tmp file + ``os.replace``), so an
interrupted save never leaves a half-written archive; loads validate
the archive end to end — readability, format version, required fields,
dtypes, shapes, record-kind range — and raise a typed
:class:`TraceFormatError` on any defect. The experiment runner catches
that error and regenerates the trace instead of aborting a sweep.
"""

from __future__ import annotations

import os
import struct
import zipfile
import zlib
from typing import Union

import numpy as np

from repro.utils.atomicio import atomic_output
from repro.workloads.trace import KIND_BRANCH_NOT_TAKEN, KIND_LOAD, Trace

FORMAT_VERSION = 1

REQUIRED_FIELDS = ("version", "name", "kinds", "addresses", "gaps")

# Everything numpy/zipfile can throw at us while parsing a damaged
# archive: bad zip directory, truncated members, zlib stream errors,
# short header reads.
_DECODE_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    struct.error,
    OSError,
    EOFError,
    ValueError,
)


class TraceFormatError(ValueError):
    """A trace file is unreadable, truncated, or structurally invalid.

    Subclasses :class:`ValueError` so existing callers that caught the
    old untyped errors keep working; the experiment runner catches this
    type specifically to regenerate the trace instead of crashing.
    """


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive.

    The write is atomic: the archive is assembled in a temporary file in
    the destination directory and moved into place with ``os.replace``,
    so a Ctrl-C mid-save leaves either the old file or no file — never
    a truncated one.
    """
    if len(trace) == 0:
        kinds = addresses = gaps = np.zeros(0, dtype=np.int64)
    else:
        records = np.asarray(trace.records, dtype=np.int64)
        kinds, addresses, gaps = records[:, 0], records[:, 1], records[:, 2]
    with atomic_output(path, "wb") as handle:
        np.savez_compressed(
            handle,
            version=np.int64(FORMAT_VERSION),
            name=np.str_(trace.name),
            kinds=kinds.astype(np.int8),
            addresses=addresses,
            gaps=gaps.astype(np.int32),
        )


def _validated_array(archive, field: str, path) -> np.ndarray:
    """Read one record array, checking dimensionality and dtype."""
    array = archive[field]
    if array.ndim != 1:
        raise TraceFormatError(
            f"corrupt trace file {path}: field {field!r} has shape "
            f"{array.shape}, expected a 1-D array"
        )
    if not np.issubdtype(array.dtype, np.integer):
        raise TraceFormatError(
            f"corrupt trace file {path}: field {field!r} has dtype "
            f"{array.dtype}, expected an integer dtype"
        )
    return array.astype(int)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises:
        TraceFormatError: if the file cannot be read as an npz archive
            (missing, truncated, not a zip), declares an unsupported
            ``FORMAT_VERSION``, lacks a required field, or holds arrays
            of the wrong shape, dtype, length, or record-kind range.
    """
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except _DECODE_ERRORS as exc:
        raise TraceFormatError(
            f"cannot read trace file {path}: {exc}"
        ) from exc
    try:
        with archive_cm as archive:
            missing = [f for f in REQUIRED_FIELDS if f not in archive.files]
            if missing:
                raise TraceFormatError(
                    f"corrupt trace file {path}: missing required "
                    f"field(s) {', '.join(missing)} "
                    f"(expected {', '.join(REQUIRED_FIELDS)})"
                )
            version = int(archive["version"])
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} in {path} "
                    f"(this build reads {FORMAT_VERSION})"
                )
            name = str(archive["name"])
            kinds = _validated_array(archive, "kinds", path)
            addresses = _validated_array(archive, "addresses", path)
            gaps = _validated_array(archive, "gaps", path)
    except TraceFormatError:
        raise
    except _DECODE_ERRORS as exc:
        # Truncated or bit-rotted member data surfaces here, during the
        # actual decompression of an array.
        raise TraceFormatError(
            f"corrupt trace file {path}: {exc}"
        ) from exc
    if not (len(kinds) == len(addresses) == len(gaps)):
        raise TraceFormatError(
            f"corrupt trace file {path}: ragged arrays "
            f"(kinds={len(kinds)}, addresses={len(addresses)}, "
            f"gaps={len(gaps)})"
        )
    if len(kinds) and not (
        int(kinds.min()) >= KIND_LOAD
        and int(kinds.max()) <= KIND_BRANCH_NOT_TAKEN
    ):
        raise TraceFormatError(
            f"corrupt trace file {path}: record kinds outside "
            f"[{KIND_LOAD}, {KIND_BRANCH_NOT_TAKEN}]"
        )
    records = list(zip(kinds.tolist(), addresses.tolist(), gaps.tolist()))
    return Trace(name=name, records=records)
