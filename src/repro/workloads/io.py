"""Trace serialization.

Long traces are expensive to regenerate (and the paper's methodology —
SimPoint samples — treats a trace as a fixed artifact), so traces can
be saved to and loaded from compressed ``.npz`` files. The format
stores the three record fields as parallel integer arrays plus the
trace name; it is stable, compact (a few bytes per record), and loads
orders of magnitude faster than regeneration.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.workloads.trace import Trace

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    if len(trace) == 0:
        kinds = addresses = gaps = np.zeros(0, dtype=np.int64)
    else:
        records = np.asarray(trace.records, dtype=np.int64)
        kinds, addresses, gaps = records[:, 0], records[:, 1], records[:, 2]
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        name=np.str_(trace.name),
        kinds=kinds.astype(np.int8),
        addresses=addresses,
        gaps=gaps.astype(np.int32),
    )


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        name = str(archive["name"])
        kinds = archive["kinds"].astype(int)
        addresses = archive["addresses"].astype(int)
        gaps = archive["gaps"].astype(int)
    if not (len(kinds) == len(addresses) == len(gaps)):
        raise ValueError(f"corrupt trace file {path}: ragged arrays")
    records = list(zip(kinds.tolist(), addresses.tolist(), gaps.tolist()))
    return Trace(name=name, records=records)
