"""Turning address streams into full instruction traces.

A line stream only says *what* is referenced; the timing model also
needs to know how much independent work surrounds each reference
(instruction gaps), which references are stores, and what the branch
stream looks like. :class:`WorkloadBuilder` adds all three, drawing from
per-workload parameters so e.g. pointer codes get thin gaps (little ILP
to hide misses behind) and FP codes get wide ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workloads.trace import (
    KIND_BRANCH_NOT_TAKEN,
    KIND_BRANCH_TAKEN,
    KIND_LOAD,
    KIND_STORE,
    Trace,
)

DATA_SEGMENT_BASE = 0x1000_0000
CODE_SEGMENT_BASE = 0x0040_0000


@dataclass(frozen=True)
class BranchProfile:
    """Statistical shape of a workload's branch stream.

    Attributes:
        density: branches per memory reference (≈0.5-1.5 for typical
            codes once non-memory instructions are folded into gaps).
        loop_bias: probability that a loop-site branch is taken; loop
            branches are highly predictable (taken until the exit).
        random_fraction: fraction of branches drawn from a pool of
            data-dependent sites with ``random_bias`` taken probability —
            these are what the predictors actually mispredict.
        random_bias: taken probability of the data-dependent sites.
        sites: number of distinct data-dependent branch PCs.
    """

    density: float = 0.75
    loop_bias: float = 0.95
    random_fraction: float = 0.15
    random_bias: float = 0.5
    sites: int = 64

    def __post_init__(self):
        if self.density < 0:
            raise ValueError(f"density must be >= 0, got {self.density}")
        if not 0 <= self.loop_bias <= 1 or not 0 <= self.random_bias <= 1:
            raise ValueError("branch biases must be in [0, 1]")
        if not 0 <= self.random_fraction <= 1:
            raise ValueError(
                f"random_fraction must be in [0, 1], got {self.random_fraction}"
            )
        if self.sites <= 0:
            raise ValueError(f"sites must be positive, got {self.sites}")


class WorkloadBuilder:
    """Builds a :class:`Trace` from a line-number stream.

    Args:
        seed: RNG seed; the same seed and stream give identical traces.
        mean_gap: mean plain instructions between consecutive records
            (geometric distribution). Wide gaps = high ILP around
            references; thin gaps = dependent chains.
        write_fraction: fraction of memory references that are stores.
        branches: branch stream shape; None disables branch records.
        line_bytes: line size used to scale line numbers to addresses.
    """

    def __init__(
        self,
        seed: int = 0,
        mean_gap: float = 3.0,
        write_fraction: float = 0.3,
        branches: BranchProfile = BranchProfile(),
        line_bytes: int = 64,
    ):
        if mean_gap < 0:
            raise ValueError(f"mean_gap must be >= 0, got {mean_gap}")
        if not 0 <= write_fraction <= 1:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        self.seed = seed
        self.mean_gap = mean_gap
        self.write_fraction = write_fraction
        self.branches = branches
        self.line_bytes = line_bytes

    def build(self, name: str, line_stream: Sequence[int]) -> Trace:
        """Assemble the full trace around ``line_stream``."""
        n = len(line_stream)
        rng = np.random.default_rng(self.seed)

        if self.mean_gap > 0:
            p = 1.0 / (1.0 + self.mean_gap)
            gaps = rng.geometric(p, size=n) - 1
        else:
            gaps = np.zeros(n, dtype=np.int64)
        is_store = rng.random(n) < self.write_fraction

        profile = self.branches
        if profile is None or profile.density == 0:
            branch_here = np.zeros(n, dtype=bool)
        else:
            # Bernoulli thinning approximates `density` branches/reference.
            branch_here = rng.random(n) < min(profile.density, 1.0)
        is_random_site = rng.random(n) < (
            profile.random_fraction if profile else 0.0
        )
        site_pick = rng.integers(0, profile.sites if profile else 1, size=n)
        taken_roll = rng.random(n)

        addresses = (
            np.asarray(line_stream, dtype=np.int64) * self.line_bytes
            + DATA_SEGMENT_BASE
        )

        records = []
        append = records.append
        for i in range(n):
            if branch_here[i]:
                if is_random_site[i]:
                    pc = CODE_SEGMENT_BASE + 0x1000 + int(site_pick[i]) * 4
                    taken = taken_roll[i] < profile.random_bias
                else:
                    pc = CODE_SEGMENT_BASE + int(site_pick[i]) % 8 * 4
                    taken = taken_roll[i] < profile.loop_bias
                kind = KIND_BRANCH_TAKEN if taken else KIND_BRANCH_NOT_TAKEN
                append((kind, pc, int(gaps[i]) // 2))
                mem_gap = int(gaps[i]) - int(gaps[i]) // 2
            else:
                mem_gap = int(gaps[i])
            kind = KIND_STORE if is_store[i] else KIND_LOAD
            append((kind, int(addresses[i]), mem_gap))
        return Trace(name=name, records=records)
