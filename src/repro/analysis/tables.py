"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Sequence


def _format_cell(value, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_digits: int = 3,
    title: str = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are rounded to ``float_digits``; column widths fit the widest
    cell. Used by every experiment driver to print the rows of its
    paper figure/table.
    """
    if not headers:
        raise ValueError("need at least one header")
    text_rows: List[List[str]] = [
        [_format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
