"""Metrics, tables and per-set maps for the evaluation harness."""

from repro.analysis.metrics import (
    arithmetic_mean,
    percent_reduction,
    percent_improvement,
    summarize_policy_metric,
)
from repro.analysis.tables import render_table
from repro.analysis.setmap import SetMap, collect_setmap
from repro.analysis.report import build_report, result_to_markdown
from repro.analysis.pressure import (
    DisagreementReport,
    component_disagreement,
    miss_imbalance,
    per_set_summary,
)

__all__ = [
    "build_report",
    "result_to_markdown",
    "DisagreementReport",
    "component_disagreement",
    "miss_imbalance",
    "per_set_summary",
    "arithmetic_mean",
    "percent_reduction",
    "percent_improvement",
    "summarize_policy_metric",
    "render_table",
    "SetMap",
    "collect_setmap",
]
