"""Aggregate metrics, following the paper's averaging conventions.

The paper deliberately reports *linear* cost metrics (MPKI, CPI) "so
that they can be meaningfully averaged with a simple arithmetic
average. For instance, our arithmetic mean of CPI rates is equivalent
to the harmonic mean of IPC, and provides a metric proportional to
overall execution time." We follow the same convention.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)


def percent_reduction(baseline: float, improved: float) -> float:
    """How much lower ``improved`` is than ``baseline``, in percent.

    Positive numbers mean the improved value is better (lower); this is
    the paper's "reduces the average MPKI rate by 19%" direction.
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return 100.0 * (baseline - improved) / baseline


def percent_improvement(baseline: float, improved: float) -> float:
    """Alias of :func:`percent_reduction` for cost metrics like CPI."""
    return percent_reduction(baseline, improved)


def summarize_policy_metric(
    per_workload: Mapping[str, Mapping[str, float]],
    baseline: str,
    candidate: str,
) -> Dict[str, float]:
    """Summarize a per-workload {workload: {policy: metric}} table.

    Returns the baseline and candidate averages, the average reduction
    (computed on the averages, as the paper does), and the worst
    per-workload degradation of the candidate in percent.
    """
    base_values = [row[baseline] for row in per_workload.values()]
    cand_values = [row[candidate] for row in per_workload.values()]
    worst_degradation = 0.0
    for row in per_workload.values():
        if row[baseline] > 0:
            change = percent_reduction(row[baseline], row[candidate])
            worst_degradation = min(worst_degradation, change)
    return {
        f"avg_{baseline}": arithmetic_mean(base_values),
        f"avg_{candidate}": arithmetic_mean(cand_values),
        "avg_reduction_percent": percent_reduction(
            arithmetic_mean(base_values), arithmetic_mean(cand_values)
        ),
        "worst_degradation_percent": -worst_degradation,
    }
