"""Markdown report generation for experiment results.

Turns :class:`~repro.experiments.base.ExperimentResult` objects into
markdown sections, and a collection of them into a full report — the
programmatic counterpart of EXPERIMENTS.md, so a user who re-runs the
harness at any scale can regenerate the whole paper-vs-measured record
with one command (``repro-experiments report``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def result_to_markdown(result, float_digits: int = 3) -> str:
    """Render one ExperimentResult as a markdown section."""
    lines: List[str] = [f"## {result.experiment}", "", result.description, ""]
    header = "| " + " | ".join(str(h) for h in result.headers) + " |"
    divider = "|" + "|".join(" --- " for _ in result.headers) + "|"
    lines.append(header)
    lines.append(divider)
    for row in result.rows:
        cells = [_format_cell(cell, float_digits) for cell in row]
        lines.append("| " + " | ".join(cells) + " |")
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def build_report(
    results: Iterable,
    title: str = "Reproduction report",
    preamble: Sequence[str] = (),
    float_digits: int = 3,
) -> str:
    """Assemble a full markdown report from experiment results."""
    parts: List[str] = [f"# {title}", ""]
    for line in preamble:
        parts.append(line)
    if preamble:
        parts.append("")
    for result in results:
        parts.append(result_to_markdown(result, float_digits))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
