"""Per-set policy-choice maps over time (Figure 7).

Figure 7 paints, for every cache set and every time quantum, which
component policy the adaptive cache's replacement decisions followed —
white for LFU-favourable regions, black for LRU. :func:`collect_setmap`
reproduces the data behind the figure by draining the adaptive policy's
per-set decision counters every ``sample_every`` memory references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.cache import SetAssociativeCache
from repro.core.adaptive import AdaptivePolicy
from repro.workloads.trace import KIND_STORE, Trace

NO_DECISION = -1


@dataclass
class SetMap:
    """A (sets x time-samples) majority-decision matrix.

    ``cells[s][t]`` is the index of the component that made the majority
    of replacement decisions in set ``s`` during quantum ``t``, or
    ``NO_DECISION`` if the set saw no replacements.
    """

    component_names: List[str]
    cells: List[List[int]]

    @property
    def num_sets(self) -> int:
        return len(self.cells)

    @property
    def num_samples(self) -> int:
        return len(self.cells[0]) if self.cells else 0

    def component_fraction(self, component: int, sample: int = None) -> float:
        """Fraction of deciding cells that chose ``component``.

        Restricted to one time sample if given, otherwise over the whole
        map. Returns 0.0 when no cell made a decision.
        """
        deciding = 0
        chosen = 0
        for row in self.cells:
            samples = [row[sample]] if sample is not None else row
            for cell in samples:
                if cell != NO_DECISION:
                    deciding += 1
                    if cell == component:
                        chosen += 1
        return chosen / deciding if deciding else 0.0

    def render(self, glyphs: str = "#.o+x", empty: str = " ") -> str:
        """ASCII rendering: one row per set, one column per quantum.

        Component i paints ``glyphs[i]``; the paper's convention maps
        component 0 (LRU) to dark and component 1 (LFU) to light.
        """
        if len(glyphs) < len(self.component_names):
            raise ValueError("not enough glyphs for the component count")
        lines = []
        for row in self.cells:
            lines.append(
                "".join(empty if c == NO_DECISION else glyphs[c] for c in row)
            )
        return "\n".join(lines)


def collect_setmap(
    trace: Trace,
    cache: SetAssociativeCache,
    sample_every: int = 5000,
) -> SetMap:
    """Run ``trace``'s memory references through ``cache`` and sample.

    ``cache`` must be managed by an :class:`AdaptivePolicy`; its per-set
    decision counters are drained every ``sample_every`` references.
    """
    policy = cache.policy
    if not isinstance(policy, AdaptivePolicy):
        raise TypeError(
            f"setmaps need an AdaptivePolicy-managed cache, got {type(policy)}"
        )
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")

    columns: List[List[List[int]]] = []
    seen = 0
    policy.drain_decisions()  # clear anything accumulated before the run
    for kind, address, _gap in trace.records:
        if kind > KIND_STORE:
            continue
        cache.access(address, is_write=(kind == KIND_STORE))
        seen += 1
        if seen % sample_every == 0:
            columns.append(policy.drain_decisions())
    if seen % sample_every != 0:
        columns.append(policy.drain_decisions())

    num_sets = cache.config.num_sets
    cells = [[NO_DECISION] * len(columns) for _ in range(num_sets)]
    for t, column in enumerate(columns):
        for s in range(num_sets):
            counts = column[s]
            if any(counts):
                best = max(range(len(counts)), key=counts.__getitem__)
                cells[s][t] = best
    return SetMap(
        component_names=[c.name for c in policy.components],
        cells=cells,
    )
