"""Per-set pressure analysis.

The paper's third argument for per-set adaptivity (end of Section 2.5)
is that "if the best component policy changes from one set of the cache
to the other, the adaptive policy will outperform both component
policies overall just by selecting the better one for every set." These
helpers quantify the preconditions: how unevenly misses distribute over
sets, and how often sets disagree about the better component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


def miss_imbalance(per_set_misses: Sequence[int]) -> float:
    """Gini coefficient of the per-set miss distribution.

    0.0 = perfectly even pressure; values toward 1.0 = a few sets take
    all the misses (conflict hot spots). Uses the standard
    mean-absolute-difference formulation.
    """
    values = sorted(per_set_misses)
    n = len(values)
    if n == 0:
        raise ValueError("need at least one set")
    total = sum(values)
    if total == 0:
        return 0.0
    # sum_i (2i - n - 1) * x_i  over sorted values.
    weighted = sum((2 * (i + 1) - n - 1) * v for i, v in enumerate(values))
    return weighted / (n * total)


@dataclass(frozen=True)
class DisagreementReport:
    """How much the cache's sets disagree about the better component.

    Attributes:
        prefer_first: sets where component 0 misses strictly less.
        prefer_second: sets where component 1 misses strictly less.
        indifferent: sets with equal misses (including zero-miss sets).
    """

    prefer_first: int
    prefer_second: int
    indifferent: int

    @property
    def total_sets(self) -> int:
        return self.prefer_first + self.prefer_second + self.indifferent

    @property
    def disagreement(self) -> float:
        """Fraction of opinionated sets in the minority camp.

        0.0 = every opinionated set prefers the same component (a global
        selector like SBAR's loses nothing); approaching 0.5 = the sets
        split evenly (only per-set adaptivity can serve both camps).
        """
        opinionated = self.prefer_first + self.prefer_second
        if opinionated == 0:
            return 0.0
        return min(self.prefer_first, self.prefer_second) / opinionated


def component_disagreement(
    first_per_set: Sequence[int], second_per_set: Sequence[int]
) -> DisagreementReport:
    """Compare two components' per-set miss vectors.

    Feed it the adaptive policy's shadow counters
    (``policy.shadows[i].per_set_misses``) after a run.
    """
    if len(first_per_set) != len(second_per_set):
        raise ValueError(
            f"per-set vectors differ in length: {len(first_per_set)} vs "
            f"{len(second_per_set)}"
        )
    prefer_first = prefer_second = indifferent = 0
    for a, b in zip(first_per_set, second_per_set):
        if a < b:
            prefer_first += 1
        elif b < a:
            prefer_second += 1
        else:
            indifferent += 1
    return DisagreementReport(prefer_first, prefer_second, indifferent)


def per_set_summary(per_set_misses: Sequence[int], buckets: int = 8) -> List[int]:
    """Downsample a per-set miss vector into ``buckets`` sums.

    For compact textual reporting of the pressure profile across the
    index space (e.g. eight numbers instead of 1024).
    """
    n = len(per_set_misses)
    if not 0 < buckets <= n:
        raise ValueError(f"buckets must be in (0, {n}], got {buckets}")
    out = []
    for b in range(buckets):
        lo = b * n // buckets
        hi = (b + 1) * n // buckets
        out.append(sum(per_set_misses[lo:hi]))
    return out
