"""The sharded, thread-safe adaptive key-value cache.

:class:`AdaptiveKVCache` is the paper's machinery lifted into a serving
shape: keys are fingerprinted (:mod:`repro.online.keyspace`), routed to
one of N locked shards (:mod:`repro.online.shard`), and each shard's
contents are managed by a replacement policy — fixed, fully adaptive
(Algorithm 1 with shadow directories per shard), or sampled (leader
shards train a global PSEL selector that everyone else imitates,
Section 4.7 at shard granularity).

Capacity is expressed in entries, optionally also in bytes; entries may
carry TTLs. ``stats()`` returns one merged
:class:`~repro.online.stats.KVCacheStats` snapshot.

Example::

    cache = AdaptiveKVCache(capacity_entries=4096, num_shards=8)
    cache.put("user:17", profile)
    profile = cache.get("user:17")
    value = cache.get_or_compute(("q", 42), expensive)
    print(cache.stats().hit_ratio)
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence, Tuple

from repro.core.sbar import spread_leader_sets
from repro.core.selector import GlobalSelector
from repro.online.keyspace import key_fingerprint, shard_of
from repro.online.policies import (
    DuelingResidentPolicy,
    LockedVoteSink,
    build_shard_policy,
)
from repro.online.shard import CacheShard
from repro.online.stats import KVCacheStats
from repro.utils.bitops import is_power_of_two

#: Engine modes: every shard adaptive, sampled leaders + followers, or
#: a fixed registry policy in every shard.
MODES = ("adaptive", "sampled", "fixed")


def default_sizeof(value) -> int:
    """Shallow byte-size estimate of a cached value.

    ``sys.getsizeof`` on the value itself — containers are *not*
    traversed. Pass an explicit ``size=`` to ``put`` (or a custom
    ``sizeof``) when deep accounting matters.
    """
    return sys.getsizeof(value)


class AdaptiveKVCache:
    """An in-process, sharded, adaptive key-value cache.

    Args:
        capacity_entries: total entry capacity, spread over the shards
            (shards differing by at most one entry).
        num_shards: power-of-two shard count; each shard has its own
            lock, so this bounds write concurrency.
        policy: ``"adaptive"`` (default — Algorithm 1 per shard),
            ``"sampled"`` (SBAR-style leaders + followers) or any
            registry policy name (``"lru"``, ``"lfu"``, ...).
        components: the two-or-more component policies the adaptive
            modes select between.
        partial_bits: shadow-directory fingerprint width (None = full
            64-bit fingerprints; 16 keeps Section 3.1's storage story).
        num_leader_shards: leader count for ``"sampled"``.
        default_ttl: seconds before entries expire (lazily), or None.
        capacity_bytes: optional byte budget, split over shards.
        sizeof: value-size estimator for byte accounting.
        history_factory: per-shard miss-history override (the theory
            bound check passes a counter history here).
        seed: deterministic seed for stochastic components.
        clock: monotonic time source (injectable for TTL tests).
    """

    def __init__(
        self,
        capacity_entries: int = 1024,
        num_shards: int = 8,
        policy: str = "adaptive",
        components: Sequence[str] = ("lru", "lfu"),
        partial_bits: Optional[int] = 16,
        num_leader_shards: int = 2,
        default_ttl: Optional[float] = None,
        capacity_bytes: Optional[int] = None,
        sizeof: Optional[Callable] = None,
        history_factory=None,
        seed: int = 0,
        clock: Callable[[], float] = None,
    ):
        if not is_power_of_two(num_shards):
            raise ValueError(
                f"num_shards must be a power of two, got {num_shards}"
            )
        if capacity_entries < num_shards:
            raise ValueError(
                f"capacity_entries ({capacity_entries}) must be at least "
                f"num_shards ({num_shards})"
            )
        mode = "fixed" if policy not in ("adaptive", "sampled") else policy
        if mode == "sampled" and len(components) != 2:
            raise ValueError("sampled mode adapts over exactly two components")
        if capacity_bytes is not None and sizeof is None:
            sizeof = default_sizeof
        self.policy_kind = policy
        self.mode = mode
        self.components = tuple(components)
        self.num_shards = num_shards
        self.capacity_entries = capacity_entries
        # The JSON-serializable constructor arguments, retained so the
        # persistence layer can record them in a snapshot manifest and
        # rebuild an identically-configured engine at recovery time.
        # Callable arguments (sizeof/history_factory/clock) cannot be
        # serialized; recover() takes them as overrides instead.
        self.config = {
            "capacity_entries": capacity_entries,
            "num_shards": num_shards,
            "policy": policy,
            "components": list(components),
            "partial_bits": partial_bits,
            "num_leader_shards": num_leader_shards,
            "default_ttl": default_ttl,
            "capacity_bytes": capacity_bytes,
            "seed": seed,
        }

        self.global_selector: Optional[GlobalSelector] = None
        vote_sink = None
        leaders = ()
        if mode == "sampled":
            self.global_selector = GlobalSelector()
            vote_sink = LockedVoteSink(self.global_selector)
            leaders = frozenset(
                spread_leader_sets(num_shards,
                                   min(num_leader_shards, num_shards))
            )
        self.leader_shards: Tuple[int, ...] = tuple(sorted(leaders))

        # Build context retained so rebuild_shard() can construct a
        # replacement shard identical to the original (quarantine
        # recovery swaps shard objects rather than scrubbing in place).
        self._leaders = leaders
        self._vote_sink = vote_sink
        self._partial_bits = partial_bits
        self._history_factory = history_factory
        self._seed = seed
        self._sizeof = sizeof
        self._clock = clock
        self._default_ttl = default_ttl
        self._capacity_bytes = capacity_bytes

        base, remainder = divmod(capacity_entries, num_shards)
        self.shards = []
        for index in range(num_shards):
            self.shards.append(self._build_shard(index, base, remainder))

    def _build_shard(self, index: int, base: int, remainder: int) -> CacheShard:
        """Construct shard ``index`` from the retained build context."""
        capacity = base + (1 if index < remainder else 0)
        shard_policy = self._build_policy(
            index, capacity, self._leaders, self._partial_bits,
            self._history_factory, self._seed, self._vote_sink,
        )
        shard_bytes = None
        if self._capacity_bytes is not None:
            byte_base, byte_rem = divmod(self._capacity_bytes, self.num_shards)
            shard_bytes = byte_base + (1 if index < byte_rem else 0)
        return CacheShard(
            capacity,
            shard_policy,
            default_ttl=self._default_ttl,
            capacity_bytes=shard_bytes,
            sizeof=self._sizeof,
            clock=self._clock,
        )

    def rebuild_shard(self, index: int, shard_state: Optional[dict] = None
                      ) -> CacheShard:
        """Replace shard ``index`` with a freshly built one.

        The quarantine-recovery primitive: the old shard object (and
        whatever corruption it carries) is dropped wholesale; the new
        shard starts empty — counters included — or, when
        ``shard_state`` (one element of a persisted snapshot's
        ``"shards"`` list) is given, restored from it. In-flight
        operations holding the old shard's lock finish against the old
        object; new routes see the replacement.

        Returns:
            The new shard.
        """
        if not 0 <= index < self.num_shards:
            raise IndexError(f"shard index {index} out of range")
        base, remainder = divmod(self.capacity_entries, self.num_shards)
        shard = self._build_shard(index, base, remainder)
        if shard_state is not None:
            shard.load_state_dict(shard_state)
        self.shards[index] = shard
        return shard

    def _build_policy(self, index, capacity, leaders, partial_bits,
                      history_factory, seed, vote_sink):
        """The replacement policy for shard ``index``."""
        if self.mode == "fixed":
            return build_shard_policy(
                self.policy_kind, capacity, seed=seed + index
            )
        if self.mode == "adaptive" or index in leaders:
            return build_shard_policy(
                "adaptive",
                capacity,
                components=self.components,
                partial_bits=partial_bits,
                history_factory=history_factory,
                seed=seed + index,
                vote_sink=vote_sink if index in leaders else None,
            )
        return DuelingResidentPolicy(
            capacity, self.components, self.global_selector, seed=seed + index
        )

    # ------------------------------------------------------------------
    # The serving API
    # ------------------------------------------------------------------

    def _shard_for(self, key) -> CacheShard:
        """The shard responsible for ``key``."""
        return self.shards[shard_of(key_fingerprint(key), self.num_shards)]

    def get(self, key, default=None):
        """Value stored under ``key``, or ``default`` on a miss."""
        return self._shard_for(key).get(key, default)

    def get_many(self, keys, default=None) -> list:
        """Batched :meth:`get` over a sequence of keys.

        Keys are grouped by shard (preserving per-shard key order, so
        each shard's policy sees exactly the event stream it would see
        from sequential gets) and each group is served under a single
        lock acquisition via :meth:`CacheShard.get_many`. Values come
        back in the original key order, ``default`` for misses.
        """
        keys = list(keys)
        num_shards = self.num_shards
        groups: dict = {}
        for position, key in enumerate(keys):
            shard_index = shard_of(key_fingerprint(key), num_shards)
            groups.setdefault(shard_index, []).append(position)
        out = [default] * len(keys)
        for shard_index, positions in groups.items():
            values = self.shards[shard_index].get_many(
                [keys[p] for p in positions], default
            )
            for position, value in zip(positions, values):
                out[position] = value
        return out

    def put(self, key, value, ttl: Optional[float] = None,
            size: Optional[int] = None) -> None:
        """Store ``value`` under ``key`` (insert or overwrite).

        Args:
            ttl: per-entry TTL override, seconds.
            size: explicit byte size for byte-capacity accounting.
        """
        self._shard_for(key).put(key, value, ttl=ttl, size=size)

    def get_or_compute(self, key, compute, ttl: Optional[float] = None):
        """Return the cached value, computing and caching it on a miss.

        ``compute(key)`` runs under the key's shard lock — concurrent
        callers of the same shard wait rather than stampede — so it
        must not call back into this cache.
        """
        return self._shard_for(key).get_or_compute(key, compute, ttl=ttl)

    def delete(self, key) -> bool:
        """Remove ``key``; returns True if it was resident."""
        return self._shard_for(key).delete(key)

    def __contains__(self, key) -> bool:
        """Whether ``key`` is resident and unexpired (no policy events)."""
        return self._shard_for(key).contains(key)

    def __len__(self) -> int:
        """Total resident entries across shards."""
        return sum(shard.occupancy() for shard in self.shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def selected_component(self) -> Optional[int]:
        """Sampled mode: the globally imitated component; else None."""
        if self.global_selector is None:
            return None
        return self.global_selector.selected()

    def stats(self) -> KVCacheStats:
        """Merged counter snapshot across all shards.

        Each shard is snapshotted under its own lock; the merge itself
        is not a global atomic cut (shards keep serving while others
        are read), which is the standard sharded-stats trade-off.
        """
        totals = {}
        per_shard_occupancy = []
        for shard in self.shards:
            snap = shard.snapshot()
            per_shard_occupancy.append(snap["occupancy"])
            for field, value in snap.items():
                totals[field] = totals.get(field, 0) + value
        if self.global_selector is not None:
            totals["policy_switches"] = (
                totals.get("policy_switches", 0) + self.global_selector.switches
            )
        return KVCacheStats(
            gets=totals.get("gets", 0),
            hits=totals.get("hits", 0),
            misses=totals.get("misses", 0),
            puts=totals.get("puts", 0),
            inserts=totals.get("inserts", 0),
            updates=totals.get("updates", 0),
            deletes=totals.get("deletes", 0),
            evictions=totals.get("evictions", 0),
            expirations=totals.get("expirations", 0),
            stale_hits=totals.get("stale_hits", 0),
            degraded=totals.get("degraded", 0),
            policy_switches=totals.get("policy_switches", 0),
            occupancy=totals.get("occupancy", 0),
            occupancy_bytes=totals.get("occupancy_bytes", 0),
            capacity_entries=self.capacity_entries,
            shards=self.num_shards,
            per_shard_occupancy=per_shard_occupancy,
        )

    # ------------------------------------------------------------------
    # Crash-recovery state capture
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Pickle-safe snapshot of every shard plus the global selector.

        Shards are snapshotted one at a time under their own locks
        (same consistency model as :meth:`stats`); quiesce writes first
        if a globally atomic cut is required — the persistence layer's
        snapshot path does exactly that.
        """
        state = {
            "config": dict(self.config),
            "shards": [shard.state_dict() for shard in self.shards],
        }
        if self.global_selector is not None:
            state["global_selector"] = self.global_selector.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this engine.

        The engine must have been constructed with the same
        configuration (shard count, capacities, policy kind, seed);
        :func:`repro.online.persistence.recover` checks this against
        the manifest before calling here. Afterwards the engine issues
        byte-identical replacement decisions to the one that produced
        the snapshot.
        """
        saved = state.get("config")
        if saved is not None and saved != self.config:
            raise ValueError(
                "engine configuration does not match the snapshot: "
                f"snapshot {saved!r} vs engine {self.config!r}"
            )
        for shard, shard_state in zip(self.shards, state["shards"]):
            shard.load_state_dict(shard_state)
        if self.global_selector is not None:
            self.global_selector.load_state_dict(state["global_selector"])
