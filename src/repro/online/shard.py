"""One shard of the online key-value cache.

A shard is the online analogue of a cache *set*: a bounded pool of
entries managed by one :class:`~repro.policies.base.ReplacementPolicy`
(fixed or adaptive) through the exact event protocol the simulator's
:class:`~repro.cache.cache.SetAssociativeCache` drives — ``observe``
before lookup, ``on_hit`` on a hit, ``victim``/``on_fill`` on a miss
that installs, ``on_invalidate`` on removal. The policy sees the shard
as a single set whose associativity equals the shard's entry capacity,
with key fingerprints standing in for tags; the paper's machinery
therefore runs unmodified on top (an
:class:`~repro.core.adaptive.AdaptivePolicy` shard carries two shadow
*directories* — tags-only :class:`~repro.cache.tag_array.TagArray`
instances over partial key fingerprints — plus a miss history, exactly
as Figure 1 adds structures beside a conventional cache).

Each shard carries its own lock; all public methods are thread-safe.
The engine (:mod:`repro.online.engine`) routes keys to shards and
aggregates their counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

from repro.online.keyspace import key_fingerprint
from repro.policies.base import ReplacementPolicy, SetView


class _Entry:
    """One resident key-value pair (internal)."""

    __slots__ = ("key", "value", "fingerprint", "size", "expires_at")

    def __init__(self, key, value, fingerprint, size, expires_at):
        self.key = key
        self.value = value
        self.fingerprint = fingerprint
        self.size = size
        self.expires_at = expires_at


class ShardView(SetView):
    """The shard's slot table, viewed as one cache set.

    ``tag_at`` returns the resident entry's *full* fingerprint; the
    policy applies its own tag transform, mirroring how the simulator's
    real cache stores full tags while shadow arrays store partial ones.
    """

    def __init__(self, slots: List[Optional[_Entry]]):
        self._slots = slots

    @property
    def ways(self) -> int:
        """Entry capacity of the shard."""
        return len(self._slots)

    def tag_at(self, way: int) -> Optional[int]:
        """Fingerprint of the entry in ``way``, or None if empty."""
        entry = self._slots[way]
        return None if entry is None else entry.fingerprint

    def valid_ways(self) -> Sequence[int]:
        """Ways currently holding entries."""
        return [w for w, e in enumerate(self._slots) if e is not None]

    def valid_count(self) -> int:
        """Number of occupied ways (no list materialisation)."""
        count = 0
        for entry in self._slots:
            if entry is not None:
                count += 1
        return count


class _ProtectedView(SetView):
    """A view that hides one way from the policy (internal).

    Used by byte-pressure eviction so the entry just written is never
    chosen as its own victim.
    """

    def __init__(self, inner: SetView, protected_way: int):
        self._inner = inner
        self._protected = protected_way

    @property
    def ways(self) -> int:
        return self._inner.ways

    def tag_at(self, way: int) -> Optional[int]:
        return self._inner.tag_at(way)

    def valid_ways(self) -> Sequence[int]:
        return [w for w in self._inner.valid_ways() if w != self._protected]

    def valid_count(self) -> int:
        """One fewer than the inner view: the protected way (the entry
        just written) is always valid."""
        return self._inner.valid_count() - 1


class CacheShard:
    """A thread-safe, policy-managed pool of at most ``capacity`` entries.

    Args:
        capacity: entry capacity; must equal ``policy.ways``.
        policy: the replacement policy managing the shard, built for a
            1 x ``capacity`` geometry (``num_sets=1``).
        default_ttl: seconds before an entry expires, or None for no
            expiry. Expiry is lazy: expired entries are dropped when a
            lookup or store touches their key.
        capacity_bytes: optional byte budget; stores evict (other)
            entries until the accounted total fits. A lone entry larger
            than the budget stays resident — the budget bounds hoarding,
            not single-object size.
        sizeof: value-size estimator used when a ``put`` gives no
            explicit size (required if ``capacity_bytes`` is set).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        default_ttl: Optional[float] = None,
        capacity_bytes: Optional[int] = None,
        sizeof: Optional[Callable] = None,
        clock: Callable[[], float] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if policy.num_sets != 1 or policy.ways != capacity:
            raise ValueError(
                f"shard policy geometry ({policy.num_sets}x{policy.ways}) "
                f"must be 1x{capacity}"
            )
        if capacity_bytes is not None and sizeof is None:
            raise ValueError("capacity_bytes requires a sizeof estimator")
        if default_ttl is not None and default_ttl <= 0:
            raise ValueError(f"default_ttl must be positive, got {default_ttl}")
        self.capacity = capacity
        self.policy = policy
        self.default_ttl = default_ttl
        self.capacity_bytes = capacity_bytes
        self._sizeof = sizeof
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._slots: List[Optional[_Entry]] = [None] * capacity
        self._view = ShardView(self._slots)
        self._key_to_way = {}
        self._free = list(range(capacity - 1, -1, -1))
        self.bytes_used = 0
        # Counters; read via snapshot() for a consistent view.
        self.gets = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.evictions = 0
        self.expirations = 0
        # Degraded-mode counters, bumped by the resilience layer
        # (repro.online.resilience): kept separate from hits/misses so
        # stale serves never inflate the real hit rate.
        self.stale_hits = 0
        self.degraded = 0

    # ------------------------------------------------------------------
    # Public, thread-safe operations
    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """Value stored under ``key``, or ``default`` on a miss."""
        fingerprint = key_fingerprint(key)
        with self._lock:
            self.gets += 1
            self.policy.observe(0, fingerprint, False)
            entry, way = self._live_entry(key)
            if entry is None:
                self.misses += 1
                return default
            self.hits += 1
            self.policy.on_hit(0, way)
            return entry.value

    def get_many(self, keys, default=None) -> list:
        """Batched :meth:`get`: one lock acquisition for the whole batch.

        Decision-identical to calling :meth:`get` per key in order —
        the policy sees the same event stream — but amortises the lock
        round-trip and per-call overhead, which is what makes bulk
        replays (the online experiment, the hot-path benchmark) cheap.

        Returns:
            Values in key order, ``default`` for misses.
        """
        key_fp = key_fingerprint
        out = []
        append = out.append
        with self._lock:
            policy = self.policy
            observe = policy.observe
            on_hit = policy.on_hit
            live = self._live_entry
            for key in keys:
                self.gets += 1
                observe(0, key_fp(key), False)
                entry, way = live(key)
                if entry is None:
                    self.misses += 1
                    append(default)
                else:
                    self.hits += 1
                    on_hit(0, way)
                    append(entry.value)
        return out

    def get_or_compute(self, key, compute, ttl: Optional[float] = None):
        """Return the cached value, computing and inserting on a miss.

        This is the demand-caching access the paper's theory assumes —
        every miss fills — and the memoization primitive the engine
        exposes. ``compute`` runs under the shard lock (no stampede per
        shard); it must not reenter the cache.
        """
        fingerprint = key_fingerprint(key)
        with self._lock:
            self.gets += 1
            self.policy.observe(0, fingerprint, False)
            entry, way = self._live_entry(key)
            if entry is not None:
                self.hits += 1
                self.policy.on_hit(0, way)
                return entry.value
            self.misses += 1
            value = compute(key)
            self._store(key, fingerprint, value, ttl, None, count_put=False)
            return value

    def put(self, key, value, ttl: Optional[float] = None,
            size: Optional[int] = None) -> None:
        """Store ``value`` under ``key``, inserting or overwriting.

        Args:
            ttl: per-entry override of the shard's default TTL.
            size: byte size to account for this entry; defaults to
                ``sizeof(value)`` when byte capacity is tracked.
        """
        fingerprint = key_fingerprint(key)
        with self._lock:
            self.policy.observe(0, fingerprint, True)
            self._store(key, fingerprint, value, ttl, size, count_put=True)

    def delete(self, key) -> bool:
        """Remove ``key``; returns True if it was (validly) resident."""
        with self._lock:
            entry, way = self._live_entry(key)
            if entry is None:
                return False
            self._remove_way(way)
            self.deletes += 1
            return True

    def contains(self, key) -> bool:
        """Whether ``key`` is resident and unexpired (no policy events)."""
        with self._lock:
            return self._live_entry(key)[0] is not None

    def peek_stale(self, key):
        """(found, value) for ``key`` even if expired — non-destructively.

        The stale-while-revalidate read: no policy events fire, no lazy
        expiry runs, counters stay untouched, so probing for a stale
        fallback before a loader attempt cannot perturb replacement
        decisions (and cannot destroy the stale value the probe is
        looking for, which the destructive :meth:`get` path would).
        """
        with self._lock:
            way = self._key_to_way.get(key)
            if way is None:
                return False, None
            return True, self._slots[way].value

    def record_stale_serve(self) -> None:
        """Count one expired entry served in degraded mode."""
        with self._lock:
            self.stale_hits += 1

    def record_degraded(self) -> None:
        """Count one request answered degraded (loader down, no stale)."""
        with self._lock:
            self.degraded += 1

    def occupancy(self) -> int:
        """Number of resident entries (expired-but-untouched included)."""
        with self._lock:
            return len(self._key_to_way)

    def resident_keys(self) -> list:
        """Keys currently resident (snapshot; order unspecified)."""
        with self._lock:
            return list(self._key_to_way)

    def selector_switches(self) -> int:
        """Imitation-target changes of this shard's policy (0 if fixed)."""
        counter = getattr(self.policy, "selector_switches", None)
        return counter() if callable(counter) else 0

    def snapshot(self) -> dict:
        """One consistent dict of all counters plus occupancy."""
        with self._lock:
            return {
                "gets": self.gets,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "inserts": self.inserts,
                "updates": self.updates,
                "deletes": self.deletes,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "stale_hits": self.stale_hits,
                "degraded": self.degraded,
                "occupancy": len(self._key_to_way),
                "occupancy_bytes": self.bytes_used,
                "policy_switches": self.selector_switches(),
            }

    def state_dict(self) -> dict:
        """Pickle-safe snapshot of the entire shard: entries, way
        allocation, counters and the policy's replacement state.

        TTLs are stored as *remaining* seconds relative to the shard
        clock at snapshot time — monotonic clocks do not survive a
        process restart, so absolute deadlines would be meaningless in
        the recovering process. Already-expired-but-untouched entries
        keep their (non-positive) remaining TTL and are restored still
        expired, preserving lazy-expiry decision identity.

        The free-list order is captured verbatim: way allocation is part
        of the oracle-equivalence contract, so a restored shard must
        hand out exactly the ways the original would have.
        """
        with self._lock:
            now = self._clock()
            entries = []
            for entry in self._slots:
                if entry is None:
                    entries.append(None)
                else:
                    remaining = (
                        None if entry.expires_at is None
                        else entry.expires_at - now
                    )
                    entries.append(
                        [entry.key, entry.value, entry.fingerprint,
                         entry.size, remaining]
                    )
            return {
                "entries": entries,
                "free": list(self._free),
                "bytes_used": self.bytes_used,
                "counters": {
                    "gets": self.gets,
                    "hits": self.hits,
                    "misses": self.misses,
                    "puts": self.puts,
                    "inserts": self.inserts,
                    "updates": self.updates,
                    "deletes": self.deletes,
                    "evictions": self.evictions,
                    "expirations": self.expirations,
                    "stale_hits": self.stale_hits,
                    "degraded": self.degraded,
                },
                "policy": self.policy.state_dict(),
            }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this shard.

        The shard must have been constructed with the same capacity and
        an identically-configured policy; afterwards it issues the same
        replacement decisions as the shard that produced the snapshot.
        """
        with self._lock:
            now = self._clock()
            self._key_to_way = {}
            self.bytes_used = 0
            for way, row in enumerate(state["entries"]):
                if row is None:
                    self._slots[way] = None
                    continue
                key, value, fingerprint, size, remaining = row
                expires_at = None if remaining is None else now + remaining
                self._slots[way] = _Entry(
                    key, value, fingerprint, size, expires_at
                )
                self._key_to_way[key] = way
            self.bytes_used = int(state["bytes_used"])
            self._free = list(state["free"])
            counters = state["counters"]
            self.gets = int(counters["gets"])
            self.hits = int(counters["hits"])
            self.misses = int(counters["misses"])
            self.puts = int(counters["puts"])
            self.inserts = int(counters["inserts"])
            self.updates = int(counters["updates"])
            self.deletes = int(counters["deletes"])
            self.evictions = int(counters["evictions"])
            self.expirations = int(counters["expirations"])
            self.stale_hits = int(counters["stale_hits"])
            self.degraded = int(counters["degraded"])
            self.policy.load_state_dict(state["policy"])

    # ------------------------------------------------------------------
    # Internals (caller holds the lock)
    # ------------------------------------------------------------------

    def _live_entry(self, key):
        """(entry, way) for a resident, unexpired key; expires lazily."""
        way = self._key_to_way.get(key)
        if way is None:
            return None, None
        entry = self._slots[way]
        if entry.expires_at is not None and self._clock() >= entry.expires_at:
            self._remove_way(way)
            self.expirations += 1
            return None, None
        return entry, way

    def _store(self, key, fingerprint, value, ttl, size, count_put):
        expires_at = self._expiry(ttl)
        if size is None:
            size = self._sizeof(value) if self._sizeof is not None else 0
        if count_put:
            self.puts += 1
        entry, way = self._live_entry(key)
        if entry is not None:
            self.bytes_used += size - entry.size
            entry.value = value
            entry.size = size
            entry.expires_at = expires_at
            self.policy.on_hit(0, way)
            if count_put:
                self.updates += 1
            self._evict_for_bytes(protect_way=way)
            return
        way = self._claim_way()
        self._slots[way] = _Entry(key, value, fingerprint, size, expires_at)
        self._key_to_way[key] = way
        self.bytes_used += size
        self.policy.on_fill(0, way, fingerprint)
        if count_put:
            self.inserts += 1
        self._evict_for_bytes(protect_way=way)

    def _claim_way(self) -> int:
        """A free way, evicting the policy's victim if the shard is full."""
        if self._free:
            return self._free.pop()
        way = self.policy.victim(0, self._view)
        self._remove_way(way, notify_policy=False)
        self.evictions += 1
        self._free.pop()
        return way

    def _remove_way(self, way: int, notify_policy: bool = True) -> None:
        entry = self._slots[way]
        self._slots[way] = None
        del self._key_to_way[entry.key]
        self.bytes_used -= entry.size
        self._free.append(way)
        if notify_policy:
            self.policy.on_invalidate(0, way)

    def _evict_for_bytes(self, protect_way: int) -> None:
        """Shed (other) entries until the byte budget is respected."""
        if self.capacity_bytes is None:
            return
        view = _ProtectedView(self._view, protect_way)
        while (self.bytes_used > self.capacity_bytes
               and len(self._key_to_way) > 1):
            way = self.policy.victim(0, view)
            self._remove_way(way)
            self.evictions += 1

    def _expiry(self, ttl: Optional[float]) -> Optional[float]:
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        effective = ttl if ttl is not None else self.default_ttl
        if effective is None:
            return None
        return self._clock() + effective
