"""The online subsystem: a serving-shaped adaptive key-value cache.

This package lifts the paper's adaptive-replacement machinery out of
the set-indexed hardware simulator into an in-process, thread-safe,
sharded KV cache — the shape that transfers to memoization layers and
KV-block caches in serving stacks:

* :mod:`repro.online.keyspace` — stable 64-bit key fingerprints (the
  online analogue of tags), shard routing, partial-fingerprint folding.
* :mod:`repro.online.shard` — one locked shard, driven through the
  standard replacement-policy event protocol (a shard is a single
  "set" whose associativity is its entry capacity).
* :mod:`repro.online.policies` — fixed, adaptive (shadow directories +
  per-shard selector) and sampled (leader shards + global selector)
  shard policies.
* :mod:`repro.online.engine` — :class:`AdaptiveKVCache`: get/put/
  delete/get_or_compute, TTL, entry- and byte-capacity, stats.
* :mod:`repro.online.bound` — the Appendix's 2x miss bound checked on
  the engine (shards standing in for sets).
* :mod:`repro.online.persistence` — crash-safe durability: periodic
  snapshots plus a CRC-framed write-ahead log, with recovery that
  reissues byte-identical replacement decisions.
* :mod:`repro.online.liverecovery` — live recovery: the same snapshot
  + WAL chain replayed in bounded chunks interleaved with request
  service (per-shard replay cursors, honest stale/refused reads,
  dual-logged deferred writes), converging to a state byte-identical
  to stop-the-world recovery.
* :mod:`repro.online.resilience` — resilient serving: bounded retries,
  per-shard circuit breakers, stale-while-unavailable fallback, shard
  quarantine/rebuild, and health/readiness probes.

See docs/online.md for the design and its mapping to the paper.
"""

from repro.online.bound import check_online_miss_bound
from repro.online.engine import MODES, AdaptiveKVCache, default_sizeof
from repro.online.liverecovery import (
    LiveRecoveringKVCache,
    LiveRecoveryStats,
    RecoveryInProgress,
    live_recover,
)
from repro.online.persistence import (
    PersistentKVCache,
    SnapshotCorruptError,
    apply_wal_record,
    iter_wal,
    kv_stats_digest,
    load_snapshot_engine,
    read_snapshot,
    read_wal,
    recover,
    replay_into,
    write_snapshot,
)
from repro.online.resilience import (
    BREAKER_STATES,
    CircuitBreaker,
    LoaderUnavailable,
    ResilientKVCache,
    RetryPolicy,
)
from repro.online.keyspace import (
    FINGERPRINT_BITS,
    key_fingerprint,
    partial_fingerprint_transform,
    shard_of,
)
from repro.online.policies import (
    DuelingResidentPolicy,
    LockedVoteSink,
    build_shard_policy,
)
from repro.online.shard import CacheShard, ShardView
from repro.online.stats import KVCacheStats

__all__ = [
    "AdaptiveKVCache",
    "MODES",
    "default_sizeof",
    "CacheShard",
    "ShardView",
    "KVCacheStats",
    "DuelingResidentPolicy",
    "LockedVoteSink",
    "build_shard_policy",
    "FINGERPRINT_BITS",
    "key_fingerprint",
    "shard_of",
    "partial_fingerprint_transform",
    "check_online_miss_bound",
    "PersistentKVCache",
    "SnapshotCorruptError",
    "apply_wal_record",
    "iter_wal",
    "kv_stats_digest",
    "load_snapshot_engine",
    "read_snapshot",
    "read_wal",
    "recover",
    "replay_into",
    "write_snapshot",
    "LiveRecoveringKVCache",
    "LiveRecoveryStats",
    "RecoveryInProgress",
    "live_recover",
    "BREAKER_STATES",
    "CircuitBreaker",
    "LoaderUnavailable",
    "ResilientKVCache",
    "RetryPolicy",
]
