"""Resilient serving on top of the online engine.

:class:`ResilientKVCache` wraps a cache (an
:class:`~repro.online.engine.AdaptiveKVCache` or its persistent
wrapper) and hardens the ``get_or_compute`` path against flaky
loaders, the classic serving ladder:

1. **Cache hit** — answered normally, nothing else runs.
2. **Miss, breaker closed** — the loader runs under a bounded
   retry/backoff schedule with a total elapsed-time budget
   (:class:`RetryPolicy`); success fills the cache and closes the
   ladder.
3. **Miss, loader failing or breaker open** — *stale-while-unavailable*:
   an expired-but-still-resident entry is served rather than an error
   (:meth:`~repro.online.shard.CacheShard.peek_stale` reads it without
   policy events, so degraded serving never perturbs replacement
   decisions). Stale serves are counted separately (``stale_hits``) —
   they never inflate the real hit ratio.
4. **Nothing to serve** — the request is counted ``degraded`` and
   :class:`LoaderUnavailable` is raised.

Loader failures are tracked per shard by a
:class:`CircuitBreaker` (closed → open on consecutive failures →
half-open probe after a cooldown), so one collapsing backend partition
stops burning retry budget almost immediately while healthy shards
keep loading.

Shards can additionally be **quarantined** (e.g. after a detected
corruption): a quarantined shard serves nothing and swallows writes;
:meth:`ResilientKVCache.rebuild` swaps in a freshly built shard —
empty, or restored from a persisted snapshot's shard state.

When the wrapped cache is a
:class:`~repro.online.liverecovery.LiveRecoveringKVCache` (detected by
its ``shard_serving`` probe), the ladder adds a **recovery rung**: a
read whose shard is still replaying its WAL prefix never runs the
loader (filling a half-replayed shard would break recovery's
byte-identity guarantee) — it is answered from the wrapper's honest
recovering path (pending write, stale peek) or refused with
:class:`~repro.online.liverecovery.RecoveryInProgress`. Writes pass
through unconditionally; the wrapper dual-logs and defers them itself.
:meth:`ResilientKVCache.serving_fraction` folds replay progress into
one number the serving front uses for admission backpressure.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Callable, Optional

from repro.online.keyspace import key_fingerprint, shard_of

#: Circuit-breaker states.
BREAKER_STATES = ("closed", "open", "half_open")


class LoaderUnavailable(RuntimeError):
    """The loader failed (or was skipped) and no stale value existed."""


class RetryPolicy:
    """A bounded retry schedule for loader calls.

    Args:
        attempts: maximum loader invocations per request (>= 1).
        backoff: sleep before the second attempt, seconds.
        multiplier: backoff growth factor per further attempt.
        budget: optional total elapsed-seconds budget for the whole
            schedule; checked *between* attempts (cooperative — a hung
            loader is not preempted, further attempts are just not
            started).
    """

    def __init__(
        self,
        attempts: int = 3,
        backoff: float = 0.05,
        multiplier: float = 2.0,
        budget: Optional[float] = None,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.attempts = attempts
        self.backoff = backoff
        self.multiplier = multiplier
        self.budget = budget


class RetryBudget:
    """A shared cap on in-flight retry attempts across all requests.

    Per-request retry schedules compose badly under overload: when a
    backend browns out, every in-flight request retries and the offered
    load *multiplies* exactly when capacity is scarcest. A retry budget
    bounds the blast radius: each retry (never the first attempt) must
    take a token; requests that find the pool empty skip straight to
    the stale/degraded ladder instead of queueing more retries.

    Tokens are returned when the attempt settles — including
    settlement-by-cancellation. The async ladder releases its token in
    a ``finally`` block, so a request cancelled mid-backoff or
    mid-loader cannot leak pool capacity; :meth:`release` raises on
    over-release, making double-counting a loud bug rather than a
    silent pool inflation.

    Thread-safe (a lock guards the counters) so one budget can span
    event loops and threads.
    """

    def __init__(self, tokens: int = 32):
        if tokens < 1:
            raise ValueError(f"tokens must be >= 1, got {tokens}")
        self.tokens = tokens
        self._lock = threading.Lock()
        self._in_use = 0
        #: Retries skipped because the pool was exhausted.
        self.denied = 0

    def try_acquire(self) -> bool:
        """Take one token if available; False means skip the retry."""
        with self._lock:
            if self._in_use < self.tokens:
                self._in_use += 1
                return True
            self.denied += 1
            return False

    def release(self) -> None:
        """Return one token.

        Raises:
            RuntimeError: released more than acquired — an accounting
                bug (e.g. a cancellation path releasing twice).
        """
        with self._lock:
            if self._in_use <= 0:
                raise RuntimeError(
                    "retry budget released more tokens than were acquired"
                )
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        """Tokens currently held by in-flight retries."""
        with self._lock:
            return self._in_use


class CircuitBreaker:
    """A per-shard circuit breaker over loader outcomes.

    Closed: calls flow. After ``failure_threshold`` *consecutive*
    failures the breaker opens: calls are refused for
    ``recovery_timeout`` seconds, after which **exactly one** probe
    call is let through (half-open); its success recloses the breaker,
    its failure reopens it for another cooldown.

    The single-probe guarantee is lock-guarded: when the cooldown
    expires, concurrent callers race for one half-open trial token and
    only the winner's :meth:`allow` returns True — the rest are
    refused until the probe's outcome is recorded. Without the token a
    thundering herd of callers would all see ``half_open`` and re-slam
    the recovering backend with the very burst the breaker exists to
    prevent.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        recovery_timeout: open-state cooldown, seconds.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_timeout <= 0:
            raise ValueError(
                f"recovery_timeout must be positive, got {recovery_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0

    def _advance_locked(self) -> str:
        """Apply cooldown expiry lazily; caller holds the lock."""
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.recovery_timeout):
            self._state = "half_open"
            self._probe_inflight = False
        return self._state

    @property
    def state(self) -> str:
        """Current state, cooldown expiry applied lazily."""
        with self._lock:
            return self._advance_locked()

    def allow(self) -> bool:
        """Whether a loader call may proceed right now.

        In half-open, True for exactly one caller (the trial probe)
        until :meth:`record_success` / :meth:`record_failure` settles
        the probe's outcome.
        """
        return self.admit()[0]

    def admit(self) -> "tuple[bool, bool]":
        """:meth:`allow`, plus whether this caller now holds the probe.

        Returns ``(allowed, is_probe)``. A caller that was admitted as
        the half-open trial probe owns the probe slot until it settles
        the outcome (:meth:`record_success` / :meth:`record_failure`)
        — or, if it is cancelled before the loader resolves, until it
        releases the slot with :meth:`abort_probe`. Callers that cannot
        be interrupted mid-call (the sync ladder) may keep using
        :meth:`allow`; cancellable callers (the async ladder) must use
        this form so a cancelled probe does not wedge the breaker in
        half-open forever.
        """
        with self._lock:
            state = self._advance_locked()
            if state == "open":
                return False, False
            if state == "half_open":
                if self._probe_inflight:
                    return False, False
                self._probe_inflight = True
                return True, True
            return True, False

    def abort_probe(self) -> None:
        """Release a held probe slot without recording an outcome.

        For a probe holder that was cancelled before its loader
        settled: the trial never happened, so the breaker learns
        nothing — the slot simply reopens for the next caller. Without
        this, a cancelled probe would leave ``_probe_inflight`` set and
        every future call refused: an accounting leak with no recovery
        path.
        """
        with self._lock:
            self._probe_inflight = False

    def record_success(self) -> None:
        """Note a successful loader call; recloses a half-open breaker."""
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probe_inflight = False

    def record_failure(self) -> None:
        """Note a failed loader call; may trip or re-trip the breaker."""
        with self._lock:
            self._advance_locked()
            self._failures += 1
            if (self._state == "half_open"
                    or self._failures >= self.failure_threshold):
                if self._state != "open":
                    self.trips += 1
                self._state = "open"
                self._opened_at = self._clock()
                self._failures = 0
                self._probe_inflight = False


class ResilientKVCache:
    """Retry, circuit-break, stale-serve and quarantine around a cache.

    Args:
        cache: the cache to serve through — an
            :class:`~repro.online.engine.AdaptiveKVCache` or a
            :class:`~repro.online.persistence.PersistentKVCache`
            (detected via its ``cache`` attribute; shard-level probes
            go to the engine, logged operations to the wrapper).
        retry: loader retry schedule; default ``RetryPolicy()``.
        breaker_factory: builds one :class:`CircuitBreaker` per shard;
            default uses the breaker's defaults.
        sleep: backoff sleep function (injectable for tests).
        clock: monotonic time source for the retry budget.
        min_ready_fraction: smallest fraction of unquarantined shards
            for which :meth:`ready` still answers True.
    """

    def __init__(
        self,
        cache,
        retry: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        min_ready_fraction: float = 0.5,
    ):
        if not 0.0 < min_ready_fraction <= 1.0:
            raise ValueError(
                f"min_ready_fraction must be in (0, 1], got "
                f"{min_ready_fraction}"
            )
        self.cache = cache
        self.engine = getattr(cache, "cache", cache)
        # A live-recovering wrapper exposes per-shard readiness; plain
        # caches don't, and every shard counts as serving.
        self._recovery = (
            cache if callable(getattr(cache, "shard_serving", None)) else None
        )
        self.retry = retry if retry is not None else RetryPolicy()
        if breaker_factory is None:
            breaker_factory = CircuitBreaker
        self.breakers = [
            breaker_factory() for _ in range(self.engine.num_shards)
        ]
        self._sleep = sleep
        self._clock = clock
        self.min_ready_fraction = min_ready_fraction
        self._quarantined = set()

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _shard_index(self, key) -> int:
        return shard_of(key_fingerprint(key), self.engine.num_shards)

    def _shard_recovering(self, index: int) -> bool:
        """Whether ``index``'s shard is still replaying its WAL."""
        return (self._recovery is not None
                and not self._recovery.shard_serving(index))

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """``get`` with quarantine guarding (a quarantined shard
        answers ``default`` and counts the request as degraded)."""
        index = self._shard_index(key)
        if index in self._quarantined:
            self.engine.shards[index].record_degraded()
            return default
        return self.cache.get(key, default)

    def put(self, key, value, ttl=None, size=None) -> None:
        """``put`` with quarantine guarding (writes to a quarantined
        shard are dropped — its state is suspect until rebuilt)."""
        if self._shard_index(key) in self._quarantined:
            return
        self.cache.put(key, value, ttl=ttl, size=size)

    def delete(self, key) -> bool:
        """``delete`` with quarantine guarding."""
        if self._shard_index(key) in self._quarantined:
            return False
        return self.cache.delete(key)

    def get_or_compute(self, key, loader, ttl=None):
        """The resilient serving ladder (see module docstring).

        Raises:
            LoaderUnavailable: the loader could not produce a value
                (failed, skipped by an open breaker, or quarantined)
                and no stale entry was resident to serve instead.
        """
        index = self._shard_index(key)
        shard = self.engine.shards[index]
        if index in self._quarantined:
            return self._serve_stale(shard, key, None, (False, None))
        if self._shard_recovering(index):
            # Never run the loader against a half-replayed shard; the
            # wrapper serves a pending write or stale peek, or refuses.
            return self.cache.recovering_read(key)

        # Capture any resident value *before* the real lookup: the
        # cache expires lazily, so the get below would destroy an
        # expired entry — the very value stale serving needs later.
        stale = shard.peek_stale(key)
        missing = object()
        value = self.cache.get(key, missing)
        if value is not missing:
            return value

        breaker = self.breakers[index]
        if not breaker.allow():
            return self._serve_stale(shard, key, None, stale)

        last_error = None
        started = self._clock()
        pause = self.retry.backoff
        for attempt in range(self.retry.attempts):
            if attempt > 0:
                if (self.retry.budget is not None
                        and self._clock() - started >= self.retry.budget):
                    break
                if pause > 0:
                    self._sleep(pause)
                pause *= self.retry.multiplier
            try:
                value = loader(key)
            except Exception as error:  # noqa: BLE001 — loader boundary
                last_error = error
                breaker.record_failure()
                if not breaker.allow():
                    break
                continue
            breaker.record_success()
            self.cache.put(key, value, ttl=ttl)
            return value
        return self._serve_stale(shard, key, last_error, stale)

    async def aget_or_compute(self, key, loader, ttl=None,
                              retry_budget: Optional[RetryBudget] = None):
        """The resilient serving ladder, asynchronously.

        Decision-identical to :meth:`get_or_compute` — same breaker,
        stale and quarantine ladder, same retry schedule — but backoff
        pauses are ``await asyncio.sleep`` (virtual under a
        virtual-time loop) and ``loader`` may be a plain callable or a
        coroutine function, so thousands of requests overlap on one
        event loop.

        Cancellation safety (the accounting audit this path exists
        for): a request cancelled mid-backoff or mid-loader

        * releases its :class:`RetryBudget` token (``finally``), so the
          shared pool cannot leak;
        * records *no* breaker outcome — a cancelled attempt is not a
          backend failure, and counting it would double-charge the
          failure threshold;
        * releases a held half-open probe slot
          (:meth:`CircuitBreaker.abort_probe`), so the breaker cannot
          wedge with a probe owner that no longer exists.

        Args:
            retry_budget: optional shared retry-token pool; when
                exhausted, retries are skipped (the ladder falls
                through to stale/degraded) rather than queued.

        Raises:
            LoaderUnavailable: as :meth:`get_or_compute`.
            asyncio.CancelledError: the caller was cancelled; state is
                consistent as described above.
        """
        index = self._shard_index(key)
        shard = self.engine.shards[index]
        if index in self._quarantined:
            return self._serve_stale(shard, key, None, (False, None))
        if self._shard_recovering(index):
            return self.cache.recovering_read(key)

        stale = shard.peek_stale(key)
        missing = object()
        value = self.cache.get(key, missing)
        if value is not missing:
            return value

        breaker = self.breakers[index]
        admitted, probe = breaker.admit()
        if not admitted:
            return self._serve_stale(shard, key, None, stale)

        last_error = None
        started = self._clock()
        pause = self.retry.backoff
        try:
            for attempt in range(self.retry.attempts):
                token = False
                try:
                    if attempt > 0:
                        if (self.retry.budget is not None
                                and self._clock() - started
                                >= self.retry.budget):
                            break
                        if (retry_budget is not None
                                and not retry_budget.try_acquire()):
                            break
                        token = retry_budget is not None
                        if pause > 0:
                            await asyncio.sleep(pause)
                        pause *= self.retry.multiplier
                    try:
                        value = loader(key)
                        if asyncio.iscoroutine(value):
                            value = await value
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:  # noqa: BLE001 — loader boundary
                        last_error = error
                        breaker.record_failure()
                        probe = False
                        admitted, probe = breaker.admit()
                        if not admitted:
                            break
                        continue
                    breaker.record_success()
                    probe = False
                    self.cache.put(key, value, ttl=ttl)
                    return value
                finally:
                    if token:
                        retry_budget.release()
        except asyncio.CancelledError:
            if probe:
                breaker.abort_probe()
            raise
        return self._serve_stale(shard, key, last_error, stale)

    def _serve_stale(self, shard, key, error, stale=None):
        """Stale fallback, else count degraded and raise.

        ``stale`` is a pre-captured ``peek_stale`` result; when None
        the shard is probed now (quarantine path, where no destructive
        lookup has run).
        """
        found, value = stale if stale is not None else shard.peek_stale(key)
        if found:
            shard.record_stale_serve()
            return value
        shard.record_degraded()
        raise LoaderUnavailable(
            f"loader unavailable for key {key!r} and no stale entry resident"
        ) from error

    # ------------------------------------------------------------------
    # Quarantine and health
    # ------------------------------------------------------------------

    def quarantine(self, index: int) -> None:
        """Take shard ``index`` out of service."""
        if not 0 <= index < self.engine.num_shards:
            raise IndexError(f"shard index {index} out of range")
        self._quarantined.add(index)

    def rebuild(self, index: int, shard_state: Optional[dict] = None) -> None:
        """Swap in a fresh shard and return it to service.

        Args:
            index: the quarantined shard.
            shard_state: optional shard entry from a persisted
                snapshot's ``"shards"`` list
                (:func:`repro.online.persistence.read_snapshot`) to
                restore instead of starting empty.
        """
        self.engine.rebuild_shard(index, shard_state)
        self._quarantined.discard(index)

    def quarantined(self) -> frozenset:
        """Indices of shards currently out of service."""
        return frozenset(self._quarantined)

    def health(self) -> dict:
        """Liveness/degradation probe: per-shard breaker and quarantine
        state plus the engine's merged counters."""
        stats = self.cache.stats()
        return {
            "shards": [
                {
                    "breaker": breaker.state,
                    "trips": breaker.trips,
                    "quarantined": index in self._quarantined,
                }
                for index, breaker in enumerate(self.breakers)
            ],
            "quarantined": sorted(self._quarantined),
            "stale_hits": stats.stale_hits,
            "degraded": stats.degraded,
            "recovering": (self._recovery is not None
                           and self._recovery.recovering),
            "serving_fraction": self.serving_fraction(),
            "ready": self.ready(),
        }

    def serving_fraction(self) -> float:
        """Fraction of shards serving normally, 0.0..1.0.

        A shard is serving when it is neither quarantined nor still
        replaying its WAL prefix during live recovery. The serving
        front scales its admission bound by this number, shedding
        early while capacity is genuinely reduced.
        """
        num_shards = self.engine.num_shards
        if self._recovery is None:
            return (num_shards - len(self._quarantined)) / num_shards
        serving = sum(
            1
            for index in range(num_shards)
            if index not in self._quarantined
            and self._recovery.shard_serving(index)
        )
        return serving / num_shards

    def ready(self) -> bool:
        """Readiness probe: enough shards in service to take traffic."""
        return self.serving_fraction() >= self.min_ready_fraction

    # ------------------------------------------------------------------
    # Passthrough
    # ------------------------------------------------------------------

    def stats(self):
        """The wrapped cache's merged counter snapshot."""
        return self.cache.stats()

    def __contains__(self, key) -> bool:
        """Residency probe (quarantined shards report absent)."""
        if self._shard_index(key) in self._quarantined:
            return False
        return key in self.cache

    def __len__(self) -> int:
        """Resident entries across shards (quarantined included)."""
        return len(self.cache)
