"""The Appendix's 2x miss bound, checked on the online engine.

The paper proves that the counter-history adaptive policy suffers at
most 2x the misses of its better component, per set, plus a warm-up
constant. The proof never mentions set indices — it is a statement
about one adaptation unit running Algorithm 1 under demand caching —
so it transfers verbatim to online shards: drive every access through
``get_or_compute`` (every miss fills, as the theory assumes), use
counter histories and full fingerprints (the shadow directories are
then exact component simulations), and compare each shard's demand
misses against its own shadow directories.

Reuses :class:`repro.core.theory.BoundReport` with shards standing in
for sets, so the property-test tooling is shared between the simulator
and the engine.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.history import CounterHistory
from repro.core.theory import BoundReport
from repro.online.engine import AdaptiveKVCache


def check_online_miss_bound(
    keys: Sequence,
    capacity_entries: int,
    num_shards: int = 1,
    component_names: Sequence[str] = ("lru", "lfu"),
    factor: float = 2.0,
    slack: int = None,
) -> BoundReport:
    """Replay a key stream through the engine and report the bound.

    Args:
        keys: the access stream; each access is a ``get_or_compute``.
        capacity_entries: total engine capacity (per-shard capacity is
            the per-unit analogue of associativity).
        num_shards: shard count; each shard is one bound unit.
        component_names: component policies to adapt over.
        factor: multiplicative bound (Appendix: 2 for counters).
        slack: additive constant per shard; defaults to 2x the largest
            shard capacity, covering warm-up misses exactly as
            :func:`repro.core.theory.check_miss_bound` does for sets.
    """
    cache = AdaptiveKVCache(
        capacity_entries=capacity_entries,
        num_shards=num_shards,
        policy="adaptive",
        components=tuple(component_names),
        partial_bits=None,  # exact shadow directories
        history_factory=lambda n: CounterHistory(n),
    )
    for key in keys:
        cache.get_or_compute(key, lambda k: k)
    if slack is None:
        slack = 2 * max(shard.capacity for shard in cache.shards)
    adaptive_misses = [shard.misses for shard in cache.shards]
    num_components = len(cache.shards[0].policy.shadows)
    component_misses = [
        [shard.policy.shadows[c].misses for shard in cache.shards]
        for c in range(num_components)
    ]
    return BoundReport(
        adaptive_misses=adaptive_misses,
        component_misses=component_misses,
        slack=slack,
        factor=factor,
    )
