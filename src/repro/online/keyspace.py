"""Key fingerprinting: from hashable keys to tag-like integers.

The paper's machinery works on integer tags; the online engine works on
arbitrary application keys (strings, ints, bytes, tuples thereof). This
module bridges the two: every key gets a stable 64-bit *fingerprint*,
the online analogue of a cache tag. Fingerprints are

* deterministic across processes (unlike :func:`hash` on strings, which
  ``PYTHONHASHSEED`` randomizes) so experiments and checkpoint/resume
  runs are reproducible;
* well mixed in their high bits, which the sharded engine uses for
  shard routing (so routing stays independent of the *low* bits that
  partial fingerprints keep, mirroring how a set-indexed cache tags
  with the bits above the index);
* foldable down to a *partial fingerprint* via
  :func:`~repro.utils.bitops.xor_fold` — Section 3.1's partial-tag
  optimization applied to shadow directories.
"""

from __future__ import annotations

import hashlib

from repro.utils.bitops import is_power_of_two, xor_fold

FINGERPRINT_BITS = 64

_MASK64 = (1 << FINGERPRINT_BITS) - 1

# Domain-separation prefixes so b"x", "x" and 120 cannot collide by
# construction (only by hash collision).
_PREFIX_STR = b"\x01"
_PREFIX_BYTES = b"\x02"
_PREFIX_TUPLE = b"\x03"


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: diffuse an integer over all 64 bits."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def _digest64(payload: bytes) -> int:
    """Stable 64-bit digest of a byte string."""
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big"
    )


def key_fingerprint(key) -> int:
    """Stable 64-bit fingerprint of a cache key.

    Supported key types: ``int`` (mixed with SplitMix64 so sequential
    ids spread across shards), ``str`` / ``bytes`` (BLAKE2b digests
    with domain separation), and tuples of supported types (elementwise
    fingerprints combined order-sensitively).

    Raises:
        TypeError: for unsupported key types — explicit rejection beats
            silently unstable ``repr``-based hashing.
    """
    if isinstance(key, bool):
        # bool is an int subclass; separate the domains explicitly.
        return _mix64(0x9D8A75 + int(key))
    if isinstance(key, int):
        return _mix64(key & _MASK64)
    if isinstance(key, str):
        return _digest64(_PREFIX_STR + key.encode("utf-8"))
    if isinstance(key, bytes):
        return _digest64(_PREFIX_BYTES + key)
    if isinstance(key, tuple):
        acc = _digest64(_PREFIX_TUPLE + len(key).to_bytes(8, "big"))
        for element in key:
            acc = _mix64(acc ^ key_fingerprint(element))
        return acc
    raise TypeError(
        f"unsupported key type {type(key).__name__}; use int, str, "
        "bytes or tuples of those"
    )


def shard_of(fingerprint: int, num_shards: int) -> int:
    """Shard index for a fingerprint.

    Uses the fingerprint's *high* bits so shard routing never overlaps
    the low bits a partial fingerprint keeps — the same split a
    set-associative cache makes between index and tag fields.

    Args:
        fingerprint: a 64-bit key fingerprint.
        num_shards: shard count; must be a power of two.
    """
    if not is_power_of_two(num_shards):
        raise ValueError(f"num_shards must be a power of two, got {num_shards}")
    shift = FINGERPRINT_BITS - (num_shards.bit_length() - 1)
    return (fingerprint >> shift) & (num_shards - 1)


def partial_fingerprint_transform(bits):
    """Build a shadow-directory transform keeping ``bits``-wide prints.

    Returns the identity for ``bits`` of None or >= 64; otherwise an
    XOR-fold down to ``bits`` bits (Section 3.1's "XOR of bit groups"
    variant — low-bit truncation would alias all keys within a shard
    run generated from a common prefix).
    """
    if bits is None or bits >= FINGERPRINT_BITS:
        return lambda fingerprint: fingerprint
    if bits <= 0:
        raise ValueError(f"partial fingerprint width must be positive, "
                         f"got {bits}")
    return lambda fingerprint: xor_fold(fingerprint, bits, FINGERPRINT_BITS)
