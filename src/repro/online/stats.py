"""Statistics snapshots for the online key-value engine.

Follows the conventions of :class:`repro.cache.stats.CacheStats`
(counter dataclass, ratio properties, explicit reset-free snapshots):
shards accumulate plain integer counters under their locks, and
:meth:`repro.online.engine.AdaptiveKVCache.stats` merges them into one
immutable :class:`KVCacheStats` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class KVCacheStats:
    """One consistent snapshot of an online cache's counters.

    Attributes:
        gets: lookup calls (``get`` / ``get_or_compute``).
        hits: lookups answered from the cache.
        misses: lookups that found nothing (or only an expired entry).
        puts: store calls (inserts plus updates).
        inserts: stores of a previously absent key.
        updates: stores overwriting a resident key.
        deletes: explicit removals that found their key.
        evictions: entries displaced by capacity pressure.
        expirations: entries dropped because their TTL had passed.
        stale_hits: expired entries served anyway by the resilience
            layer (stale-while-revalidate); deliberately *not* counted
            as hits, so the hit ratio keeps meaning "fresh answers".
        degraded: requests answered in degraded mode (loader down and
            no stale entry available to serve).
        policy_switches: imitation-target changes across all selectors
            (per-shard and, in sampled mode, the global one).
        occupancy: resident entries at snapshot time.
        occupancy_bytes: accounted bytes at snapshot time (0 unless the
            cache tracks byte sizes).
        capacity_entries: total entry capacity across shards.
        shards: shard count.
        per_shard_occupancy: resident entries per shard (load-balance
            introspection; mirrors ``CacheStats.per_set_misses``).
    """

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    evictions: int = 0
    expirations: int = 0
    stale_hits: int = 0
    degraded: int = 0
    policy_switches: int = 0
    occupancy: int = 0
    occupancy_bytes: int = 0
    capacity_entries: int = 0
    shards: int = 0
    per_shard_occupancy: List[int] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Hits / gets; 0.0 when nothing was looked up."""
        if self.gets == 0:
            return 0.0
        return self.hits / self.gets

    @property
    def miss_ratio(self) -> float:
        """Misses / gets; 0.0 when nothing was looked up."""
        if self.gets == 0:
            return 0.0
        return self.misses / self.gets

    @property
    def stale_ratio(self) -> float:
        """Stale serves / gets; 0.0 when nothing was looked up."""
        if self.gets == 0:
            return 0.0
        return self.stale_hits / self.gets
