"""Live recovery: serve traffic while the write-ahead log replays.

:func:`~repro.online.persistence.recover` is stop-the-world — it
materializes the snapshot and replays the whole WAL before a single
request is served. For a cache holding workload-shaped selector and
history state that stall is exactly the wrong trade: the state exists
to keep serving well. :class:`LiveRecoveringKVCache` replays the same
snapshot + WAL chain **incrementally**, in bounded chunks interleaved
with request service, and converges to a state byte-identical to
stop-the-world recovery.

The correctness argument rests on shard independence:

* In ``"adaptive"`` and fixed modes every shard is a self-contained
  replica of the paper's machinery — no cross-shard state. Replay
  therefore proceeds **shard by shard** (per-shard replay cursors over
  a one-pass positional index of the WAL chain), preserving each
  shard's record order exactly while permuting the commuting
  cross-shard order. A shard whose cursor is exhausted is *ready*: its
  state equals what stop-the-world recovery would produce, so it
  serves (and logs) traffic normally while later shards still replay.
  Batched ``gmany`` records are split per shard — the engine's
  ``get_many`` groups keys by shard preserving per-shard key order, so
  applying a record's shard-local key subset raises exactly the events
  the full batch would.
* In ``"sampled"`` mode leader shards vote into one
  :class:`~repro.core.selector.GlobalSelector`, and live traffic on an
  early-promoted leader would inject votes that reorder against
  not-yet-replayed records. Replay then runs in global log order and
  no shard serves normally until the chain is drained — reads degrade
  to the honest recovering path below, writes defer; the engine's
  decision stream stays identical to the reference.

While a shard is still replaying:

* **Reads** are served honestly from what is actually known — a
  pending (acked but deferred) write, else a non-destructive
  ``peek_stale`` of the partially replayed shard — and otherwise
  refused with :class:`RecoveryInProgress`. These paths raise no
  policy events, are never logged, and count into wrapper-level
  :class:`LiveRecoveryStats` — engine hit/miss counters never inflate
  and the engine state stays byte-identical to the reference.
* **Writes** are dual-logged: the record is appended to the newest WAL
  (after its torn tail was truncated at open) *before* the op is
  acknowledged, then queued per shard and applied the moment the
  shard's cursor drains. A second crash mid-recovery recovers by
  replaying the original intact prefix followed by the accepted live
  ops — the reference order — so acked writes survive.

Once every cursor drains and all pending writes are applied the
wrapper *is* a :class:`~repro.online.persistence.PersistentKVCache`
(it subclasses it): automatic snapshot rotation re-arms and the
serving API falls through to the plain logged paths.

TTL caveat: replay applies records at recovery time, as any recovery
(including stop-the-world at a later wall clock) does; with per-entry
TTLs the identity guarantee holds under a frozen clock — drive the
engine with a virtual ``clock`` if expiry during the replay window
matters.
"""

from __future__ import annotations

import os
import pickle
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Callable, Dict, List, Optional, Tuple

from repro.online.keyspace import key_fingerprint, shard_of
from repro.online.persistence import (
    _RECORD_HEADER,
    PersistentKVCache,
    _wal_name,
    apply_wal_record,
    iter_wal,
    load_snapshot_engine,
)

#: Pending-view marker for a deferred delete.
_TOMBSTONE = object()


class RecoveryInProgress(RuntimeError):
    """Read refused: the key's shard has not finished WAL replay.

    Raised instead of serving a value the replayed prefix cannot yet
    vouch for. Callers (the resilient ladder, the serving front) treat
    it as an honest unavailability, never as a miss.
    """


@dataclass
class LiveRecoveryStats:
    """Wrapper-level counters for one live recovery.

    Kept outside the engine on purpose: engine counters are part of
    the persisted ``state_dict``, so recovery bookkeeping must not
    touch them or the byte-identity guarantee breaks.
    """

    #: Replay work items indexed from the WAL chain (a ``gmany`` record
    #: counts once per shard it touches in per-shard order).
    total_records: int = 0
    #: Work items applied so far.
    applied_records: int = 0
    #: Writes accepted (logged durable) but queued for a replaying shard.
    deferred_writes: int = 0
    #: Reads answered from pending writes or a stale peek of a
    #: partially replayed shard.
    stale_serves: int = 0
    #: Reads refused because nothing trustworthy was available.
    refused_reads: int = 0


class LiveRecoveringKVCache(PersistentKVCache):
    """A :class:`PersistentKVCache` that recovers while serving.

    Construct it on a persistence directory (where stop-the-world
    :func:`~repro.online.persistence.recover` would run), then call
    :meth:`step` on whatever cadence the serving loop can afford; each
    call replays at most ``chunk_ops`` WAL records. Probe readiness
    with :meth:`shard_serving` / :meth:`serving_fraction` /
    :meth:`replay_progress`; :meth:`finish` drains synchronously.

    Args:
        directory: persistence directory of the crashed run.
        chunk_ops: default replay records per :meth:`step`.
        snapshot_every: automatic-snapshot cadence once recovery
            completes (rotation is held off during replay — a snapshot
            of a half-replayed engine would orphan the unreplayed
            suffix).
        wal_flush_ops: WAL flush cadence; 1 makes every accepted write
            durable before it is acknowledged.
        sizeof / history_factory / clock: engine overrides, as in
            :func:`~repro.online.persistence.recover`.
    """

    def __init__(
        self,
        directory: str,
        chunk_ops: int = 256,
        snapshot_every: Optional[int] = 10_000,
        wal_flush_ops: int = 64,
        sizeof: Optional[Callable] = None,
        history_factory=None,
        clock: Callable[[], float] = None,
    ):
        if chunk_ops <= 0:
            raise ValueError(f"chunk_ops must be positive, got {chunk_ops}")
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        directory = os.fspath(directory)
        cache, loaded_gen, latest = load_snapshot_engine(
            directory,
            sizeof=sizeof,
            history_factory=history_factory,
            clock=clock,
        )
        self.chunk_ops = chunk_ops
        self._target_snapshot_every = snapshot_every
        self._recovering = True
        # Sampled mode couples leader shards through the global
        # selector: replay must keep global log order and no shard may
        # serve (and vote) early.
        self._global_order = cache.mode == "sampled"
        num_shards = cache.num_shards

        # One streaming pass over the WAL chain builds a positional
        # index — (generation, start offset, shard) per work item, ints
        # only, never the decoded records — and the per-generation
        # intact lengths. Records are re-read lazily during replay.
        items: List[Tuple[int, int, Optional[int]]] = []
        per_shard: List[List[Tuple[int, int, Optional[int]]]] = [
            [] for _ in range(num_shards)
        ]
        self._wal_bounds: Dict[int, int] = {}
        for generation in range(loaded_gen, latest + 1):
            path = os.path.join(directory, _wal_name(generation))
            start = 0
            for record, end in iter_wal(path):
                if self._global_order:
                    items.append((generation, start, None))
                else:
                    for index in _record_shards(record, num_shards):
                        per_shard[index].append((generation, start, index))
                start = end
            self._wal_bounds[generation] = start
        if not self._global_order:
            # Shard-major order: shard 0 drains (and starts serving)
            # first, then shard 1, ... — progressive readiness.
            for queue in per_shard:
                items.extend(queue)
        self._items = items
        self._cursor = 0
        self._shard_remaining = [len(queue) for queue in per_shard]
        self._serving = [False] * num_shards
        self._pending_ops: List[List[tuple]] = [[] for _ in range(num_shards)]
        # Sampled mode promotes all shards at once, and deferred ops
        # must then apply in global acceptance order — per-shard
        # grouping would reorder leader votes into the global selector.
        self._pending_global: List[tuple] = []
        self._pending_view: List[dict] = [{} for _ in range(num_shards)]
        self._readers: Dict[int, BinaryIO] = {}
        self.recovery = LiveRecoveryStats(total_records=len(items))

        newest = os.path.join(directory, _wal_name(latest))
        offset = self._wal_bounds.get(latest, 0)
        if not os.path.exists(newest):
            open(newest, "ab").close()
            offset = 0
        # The superclass truncates the newest WAL's torn tail and
        # positions the append handle at the intact end: accepted live
        # ops dual-log right after the prefix replay reads from.
        super().__init__(
            cache,
            directory,
            snapshot_every=None,
            wal_flush_ops=wal_flush_ops,
            _generation=latest,
            _wal_offset=offset,
        )
        with self._lock:
            self._promote_locked()

    # ------------------------------------------------------------------
    # Replay control and readiness probes
    # ------------------------------------------------------------------

    @property
    def recovering(self) -> bool:
        """Whether WAL replay is still in progress."""
        return self._recovering

    @property
    def recovery_complete(self) -> bool:
        """Whether the engine state equals stop-the-world recovery's."""
        return not self._recovering

    def shard_serving(self, index: int) -> bool:
        """Whether ``index``'s shard serves normally (replay drained)."""
        if not self._recovering:
            return True
        return self._serving[index]

    def key_serving(self, key) -> bool:
        """Whether ``key``'s shard serves normally (replay drained).

        While this is False, an access for ``key`` takes the honest
        recovering path — stale-marked or refused, and *not logged*.
        A caller that needs every access applied and logged (e.g. a
        resumed deterministic stream) should :meth:`step` until this
        turns True before issuing the access.
        """
        if not self._recovering:
            return True
        return self._serving[self._shard_index(key)]

    def serving_fraction(self) -> float:
        """Fraction of shards serving normally, 0.0..1.0."""
        if not self._recovering:
            return 1.0
        return sum(self._serving) / len(self._serving)

    def pending_writes(self) -> int:
        """Accepted writes still queued for replaying shards."""
        with self._lock:
            return self._pending_count_locked()

    def _pending_count_locked(self) -> int:
        return (len(self._pending_global)
                + sum(len(queue) for queue in self._pending_ops))

    def replay_progress(self) -> dict:
        """Snapshot of the recovery's progress and honesty counters."""
        with self._lock:
            return {
                "recovering": self._recovering,
                "total_records": self.recovery.total_records,
                "applied_records": self.recovery.applied_records,
                "num_shards": self.cache.num_shards,
                "serving_shards": (
                    self.cache.num_shards
                    if not self._recovering
                    else sum(self._serving)
                ),
                "pending_writes": self._pending_count_locked(),
                "deferred_writes": self.recovery.deferred_writes,
                "stale_serves": self.recovery.stale_serves,
                "refused_reads": self.recovery.refused_reads,
            }

    def step(self, max_ops: Optional[int] = None) -> int:
        """Replay up to ``max_ops`` records (default ``chunk_ops``).

        Returns the number applied; 0 once recovery is complete.
        Newly drained shards have their pending writes applied and
        start serving before the call returns.
        """
        with self._lock:
            if not self._recovering:
                return 0
            budget = self.chunk_ops if max_ops is None else max_ops
            applied = 0
            while applied < budget and self._cursor < len(self._items):
                generation, start, shard = self._items[self._cursor]
                record = self._read_record_at(generation, start)
                self._apply_item_locked(record, shard)
                if shard is not None:
                    self._shard_remaining[shard] -= 1
                self._cursor += 1
                applied += 1
            self.recovery.applied_records += applied
            self._promote_locked()
            return applied

    def finish(self) -> None:
        """Drain the remaining replay synchronously."""
        while self._recovering:
            self.step()

    def close(self) -> None:
        """Close replay readers, flush the WAL, release handles."""
        with self._lock:
            self._close_readers_locked()
        super().close()

    # ------------------------------------------------------------------
    # Serving API: gate on per-shard readiness while recovering
    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """Logged get; honest recovering read on a replaying shard."""
        with self._lock:
            if self._recovering:
                index = self._shard_index(key)
                if not self._serving[index]:
                    return self._recovering_get_locked(index, key, default)
            self._log(("get", key))
            return self.cache.get(key, default)

    def get_many(self, keys, default=None) -> list:
        """Logged batched get; splits per key while recovering."""
        keys = list(keys)
        with self._lock:
            if self._recovering:
                num_shards = self.cache.num_shards
                indices = [
                    shard_of(key_fingerprint(key), num_shards)
                    for key in keys
                ]
                if any(not self._serving[index] for index in indices):
                    out = []
                    for key, index in zip(keys, indices):
                        if self._serving[index]:
                            self._log(("get", key))
                            out.append(self.cache.get(key, default))
                        else:
                            out.append(
                                self._recovering_get_locked(
                                    index, key, default
                                )
                            )
                    return out
            self._log(("gmany", keys))
            return self.cache.get_many(keys, default)

    def put(self, key, value, ttl=None, size=None) -> None:
        """Logged put; dual-logged and deferred on a replaying shard."""
        with self._lock:
            op = ("put", key, value, ttl, size)
            if self._recovering:
                index = self._shard_index(key)
                if not self._serving[index]:
                    self._log(op)
                    self._defer_locked(index, op)
                    self._pending_view[index][key] = value
                    self.recovery.deferred_writes += 1
                    return
            self._log(op)
            self.cache.put(key, value, ttl=ttl, size=size)

    def get_or_compute(self, key, compute, ttl=None):
        """Logged get-or-compute; never computes into a replaying shard.

        On a replaying shard this serves a pending write or a stale
        peek, else raises :class:`RecoveryInProgress` — running the
        loader would fill a shard whose replay has not reached the
        fill's position, breaking identity with the reference.
        """
        with self._lock:
            if self._recovering:
                index = self._shard_index(key)
                if not self._serving[index]:
                    return self._recovering_read_locked(index, key)
            computed = []

            def logging_compute(k):
                value = compute(k)
                computed.append(value)
                return value

            result = self.cache.get_or_compute(key, logging_compute, ttl=ttl)
            if computed:
                self._log(("goc_fill", key, computed[0], ttl), applied=True)
            else:
                self._log(("get", key), applied=True)
            return result

    def delete(self, key) -> bool:
        """Logged delete; deferred (returns False) on a replaying shard."""
        with self._lock:
            if self._recovering:
                index = self._shard_index(key)
                if not self._serving[index]:
                    op = ("del", key)
                    self._log(op)
                    self._defer_locked(index, op)
                    self._pending_view[index][key] = _TOMBSTONE
                    self.recovery.deferred_writes += 1
                    # Residency at apply time is unknowable mid-replay.
                    return False
            self._log(("del", key))
            return self.cache.delete(key)

    def recovering_read(self, key):
        """Value for ``key`` by the recovering rules, however degraded.

        The resilient ladder's entry point for keys on replaying
        shards: pending write, else stale peek, else
        :class:`RecoveryInProgress`. Raises no policy events and logs
        nothing.
        """
        with self._lock:
            index = self._shard_index(key)
            return self._recovering_read_locked(index, key)

    def __contains__(self, key) -> bool:
        """Residency probe; consults pending writes while recovering."""
        if self._recovering:
            with self._lock:
                index = self._shard_index(key)
                if not self._serving[index]:
                    view = self._pending_view[index]
                    if key in view:
                        return view[key] is not _TOMBSTONE
        return key in self.cache

    # ------------------------------------------------------------------
    # Internals (caller holds the wrapper lock)
    # ------------------------------------------------------------------

    def _shard_index(self, key) -> int:
        return shard_of(key_fingerprint(key), self.cache.num_shards)

    def _defer_locked(self, index: int, op: tuple) -> None:
        if self._global_order:
            self._pending_global.append(op)
        else:
            self._pending_ops[index].append(op)

    def _recovering_get_locked(self, index: int, key, default):
        view = self._pending_view[index]
        if key in view:
            value = view[key]
            self.recovery.stale_serves += 1
            return default if value is _TOMBSTONE else value
        found, value = self.cache.shards[index].peek_stale(key)
        if found:
            self.recovery.stale_serves += 1
            return value
        self.recovery.refused_reads += 1
        return default

    def _recovering_read_locked(self, index: int, key):
        view = self._pending_view[index]
        if key in view:
            value = view[key]
            if value is not _TOMBSTONE:
                self.recovery.stale_serves += 1
                return value
        else:
            found, value = self.cache.shards[index].peek_stale(key)
            if found:
                self.recovery.stale_serves += 1
                return value
        self.recovery.refused_reads += 1
        raise RecoveryInProgress(
            f"shard {index} is still replaying its WAL prefix"
        )

    def _apply_item_locked(
        self, record: tuple, shard: Optional[int]
    ) -> None:
        if shard is not None and record[0] == "gmany":
            # Per-shard replay of a batched get: apply only this
            # shard's key subset — the engine groups by shard anyway,
            # so the shard sees exactly the events of the full batch.
            num_shards = self.cache.num_shards
            self.cache.get_many(
                [
                    key
                    for key in record[1]
                    if shard_of(key_fingerprint(key), num_shards) == shard
                ]
            )
        else:
            apply_wal_record(self.cache, record)

    def _promote_locked(self) -> None:
        done = self._cursor >= len(self._items)
        if self._global_order:
            if not done:
                return
            # All shards promote together; deferred ops apply in global
            # acceptance order (= their WAL order), keeping the leader
            # vote sequence identical to a post-crash replay.
            for op in self._pending_global:
                apply_wal_record(self.cache, op)
            self._pending_global = []
            for index in range(self.cache.num_shards):
                self._pending_view[index] = {}
                self._serving[index] = True
            self._complete_locked()
            return
        for index in range(self.cache.num_shards):
            if self._serving[index] or self._shard_remaining[index] != 0:
                continue
            # Apply the shard's acked-but-deferred writes in acceptance
            # order; they were logged at accept time, so a later crash
            # replays them in exactly this position.
            for op in self._pending_ops[index]:
                apply_wal_record(self.cache, op)
            self._pending_ops[index] = []
            self._pending_view[index] = {}
            self._serving[index] = True
        if done and all(self._serving):
            self._complete_locked()

    def _complete_locked(self) -> None:
        self._recovering = False
        self._items = []
        self._close_readers_locked()
        # Re-arm automatic rotation; the accumulated op count means the
        # next logged operation compacts the recovered chain into a
        # fresh snapshot generation.
        self.snapshot_every = self._target_snapshot_every

    def _close_readers_locked(self) -> None:
        for handle in self._readers.values():
            handle.close()
        self._readers.clear()

    def _read_record_at(self, generation: int, start: int) -> tuple:
        reader = self._readers.get(generation)
        if reader is None:
            path = self._path(_wal_name(generation))
            reader = self._readers[generation] = open(path, "rb")
        reader.seek(start)
        header = reader.read(_RECORD_HEADER)
        crc = int.from_bytes(header[:4], "little")
        length = int.from_bytes(header[4:8], "little")
        payload = reader.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise RuntimeError(
                f"WAL record at generation {generation} offset {start} "
                "changed underneath live recovery"
            )
        return pickle.loads(payload)


def _record_shards(record: tuple, num_shards: int) -> List[int]:
    """Shards a WAL record raises events on, in first-touch order."""
    kind = record[0]
    if kind == "gmany":
        seen: List[int] = []
        for key in record[1]:
            index = shard_of(key_fingerprint(key), num_shards)
            if index not in seen:
                seen.append(index)
        return seen
    if kind in ("get", "del"):
        return [shard_of(key_fingerprint(record[1]), num_shards)]
    if kind in ("put", "goc_fill"):
        return [shard_of(key_fingerprint(record[1]), num_shards)]
    raise ValueError(f"unknown WAL record kind {kind!r}")


def live_recover(directory: str, **kwargs) -> LiveRecoveringKVCache:
    """Open ``directory`` for live recovery (constructor convenience)."""
    return LiveRecoveringKVCache(directory, **kwargs)
