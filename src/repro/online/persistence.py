"""Crash-safe persistence for the online engine: snapshots + WAL.

The durability design follows the classic two-structure recipe:

* **Snapshots** — periodic full captures of the engine's
  :meth:`~repro.online.engine.AdaptiveKVCache.state_dict` (entries,
  way allocation, counters and every byte of policy state), pickled
  into a CRC-guarded frame and written through
  :func:`repro.utils.atomicio.atomic_output` so a crash mid-snapshot
  can never destroy the previous one.
* **A write-ahead log** — every operation (including reads: ``get``
  trains recency and replays into shadow directories, so reads *are*
  state mutations here) appended as a CRC32-framed record to the
  current generation's log file. Appends are buffered and flushed
  every ``wal_flush_ops`` operations, keeping the log off the hot
  path at the price of a bounded window of recent operations on a
  hard crash.

Recovery (:func:`recover`) loads the newest intact snapshot — falling
back one generation if the newest is torn or corrupt — then replays
the write-ahead logs from that generation forward. A torn or
CRC-corrupt tail record (the signature of a crash mid-append) is
truncated and replay continues; because the engine is deterministic,
the recovered cache then issues byte-identical replacement decisions
to an uninterrupted run over the persisted prefix.

Generations: ``snapshot-N`` captures the state after all operations
logged in ``wal-(N-1)``; ``wal-N`` holds the operations after it. The
two newest generations are retained, older ones pruned.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import zlib
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.online.engine import AdaptiveKVCache
from repro.utils.atomicio import atomic_output, atomic_write_text

#: Snapshot frame magic (8 bytes) — identifies format and version.
SNAPSHOT_MAGIC = b"RKVSNAP1"
#: Manifest / record format version.
FORMAT_VERSION = 1
#: Header of one WAL record: CRC32 then payload length (little-endian).
_RECORD_HEADER = 8


class SnapshotCorruptError(RuntimeError):
    """A snapshot file failed its magic or CRC check."""


def _snapshot_name(generation: int) -> str:
    """Filename of generation ``generation``'s snapshot."""
    return f"snapshot-{generation:08d}.bin"


def _wal_name(generation: int) -> str:
    """Filename of generation ``generation``'s write-ahead log."""
    return f"wal-{generation:08d}.log"


def encode_record(op: tuple) -> bytes:
    """Frame one operation tuple as ``crc32 | length | pickle(op)``."""
    payload = pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload)
    return (
        crc.to_bytes(4, "little")
        + len(payload).to_bytes(4, "little")
        + payload
    )


def iter_wal(
    path: str, end: Optional[int] = None
) -> Iterator[Tuple[tuple, int]]:
    """Stream a WAL file record by record, tolerating a torn tail.

    Yields ``(record, end_offset)`` pairs — the decoded operation and
    the byte offset just past its frame — holding only one record in
    memory at a time, so arbitrarily long logs replay in bounded
    space. A truncated header, short payload or CRC mismatch stops
    decoding; everything before it is trusted (each record carries its
    own CRC, so corruption cannot silently pass). A missing file
    yields nothing.

    Args:
        path: the WAL file.
        end: optional byte bound — decoding stops at the first record
            whose frame would cross it. Live recovery uses this to
            replay exactly the intact prefix indexed at open time while
            new records are being appended past it.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return
    with handle:
        offset = 0
        while True:
            if end is not None and offset + _RECORD_HEADER > end:
                return
            header = handle.read(_RECORD_HEADER)
            if len(header) < _RECORD_HEADER:
                return
            crc = int.from_bytes(header[:4], "little")
            length = int.from_bytes(header[4:8], "little")
            record_end = offset + _RECORD_HEADER + length
            if end is not None and record_end > end:
                return
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            offset = record_end
            yield pickle.loads(payload), offset


def read_wal(path: str) -> Tuple[List[tuple], int]:
    """Decode a whole WAL file into memory (thin :func:`iter_wal` wrap).

    Returns:
        ``(records, good_length)`` — the operations up to the first
        framing violation, and the byte offset where the intact prefix
        ends. Prefer :func:`iter_wal` when the log may be long.
    """
    records: List[tuple] = []
    offset = 0
    for record, offset in iter_wal(path):
        records.append(record)
    return records, offset


def write_snapshot(path: str, state: dict) -> None:
    """Atomically write a CRC-guarded snapshot frame."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload)
    with atomic_output(path, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(crc.to_bytes(4, "little"))
        handle.write(len(payload).to_bytes(8, "little"))
        handle.write(payload)


def read_snapshot(path: str) -> dict:
    """Load a snapshot frame, raising on any integrity violation."""
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(SNAPSHOT_MAGIC) + 12:
        raise SnapshotCorruptError(f"{path}: truncated snapshot header")
    if data[:len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError(f"{path}: bad snapshot magic")
    crc = int.from_bytes(data[8:12], "little")
    length = int.from_bytes(data[12:20], "little")
    payload = data[20:20 + length]
    if len(payload) != length:
        raise SnapshotCorruptError(f"{path}: truncated snapshot payload")
    if zlib.crc32(payload) != crc:
        raise SnapshotCorruptError(f"{path}: snapshot CRC mismatch")
    return pickle.loads(payload)


def kv_stats_digest(stats) -> str:
    """Stable hex digest of a :class:`~repro.online.stats.KVCacheStats`.

    Used by the kill-and-recover smoke check: a recovered run's digest
    must equal the uninterrupted run's.
    """
    import dataclasses
    import hashlib

    payload = json.dumps(dataclasses.asdict(stats), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class PersistentKVCache:
    """An :class:`~repro.online.engine.AdaptiveKVCache` with durability.

    Wraps an engine; every public operation is framed into the current
    write-ahead log *before* it is applied, under one wrapper lock so
    the log order equals the apply order (which replay depends on).
    The engine's hot path is untouched — durability lives entirely in
    this wrapper, and the WAL buffer amortises file writes.

    Args:
        cache: the engine to persist; must be freshly constructed (or
            freshly recovered) so the snapshot chain matches its state.
        directory: where snapshots, WALs and the manifest live;
            created if missing.
        snapshot_every: operations between automatic snapshots
            (``None`` disables automatic snapshotting; call
            :meth:`snapshot` yourself).
        wal_flush_ops: buffered operations per WAL flush+fsync. 1 means
            every operation is durable before it is applied; larger
            values trade a bounded recent-operation window for speed.
        _generation: internal — starting generation (used by
            :func:`recover`).
        _wal_offset: internal — byte offset to continue the current
            WAL at (used by :func:`recover` after tail truncation).
    """

    def __init__(
        self,
        cache: AdaptiveKVCache,
        directory: str,
        snapshot_every: Optional[int] = 10_000,
        wal_flush_ops: int = 64,
        _generation: int = 0,
        _wal_offset: Optional[int] = None,
    ):
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        if wal_flush_ops <= 0:
            raise ValueError(
                f"wal_flush_ops must be positive, got {wal_flush_ops}"
            )
        self.cache = cache
        self.directory = os.fspath(directory)
        self.snapshot_every = snapshot_every
        self.wal_flush_ops = wal_flush_ops
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._buffer = bytearray()
        self._ops_since_snapshot = 0
        self.generation = _generation
        self.snapshots_taken = 0
        if _wal_offset is None:
            # Fresh cache: anchor the chain with a generation-0 snapshot
            # of the initial state so fallback recovery is uniform.
            self._write_snapshot_locked()
            self._wal = open(self._path(_wal_name(self.generation)), "ab")
        else:
            wal_path = self._path(_wal_name(self.generation))
            self._wal = open(wal_path, "r+b")
            self._wal.truncate(_wal_offset)
            self._wal.seek(_wal_offset)

    # ------------------------------------------------------------------
    # Serving API (mirrors AdaptiveKVCache)
    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """Logged :meth:`~repro.online.engine.AdaptiveKVCache.get`."""
        with self._lock:
            self._log(("get", key))
            return self.cache.get(key, default)

    def get_many(self, keys, default=None) -> list:
        """Logged :meth:`~repro.online.engine.AdaptiveKVCache.get_many`."""
        keys = list(keys)
        with self._lock:
            self._log(("gmany", keys))
            return self.cache.get_many(keys, default)

    def put(self, key, value, ttl=None, size=None) -> None:
        """Logged :meth:`~repro.online.engine.AdaptiveKVCache.put`."""
        with self._lock:
            self._log(("put", key, value, ttl, size))
            self.cache.put(key, value, ttl=ttl, size=size)

    def get_or_compute(self, key, compute, ttl=None):
        """Logged get-or-compute.

        The loader itself cannot be serialized, so on a miss the
        *computed value* is what reaches the log — replay re-installs
        it without re-running the loader, which both makes recovery
        deterministic and spares the loader a thundering replay.
        """
        with self._lock:
            computed = []

            def logging_compute(k):
                value = compute(k)
                computed.append(value)
                return value

            result = self.cache.get_or_compute(key, logging_compute, ttl=ttl)
            if computed:
                self._log(("goc_fill", key, computed[0], ttl), applied=True)
            else:
                self._log(("get", key), applied=True)
            return result

    def delete(self, key) -> bool:
        """Logged :meth:`~repro.online.engine.AdaptiveKVCache.delete`."""
        with self._lock:
            self._log(("del", key))
            return self.cache.delete(key)

    def __contains__(self, key) -> bool:
        """Residency probe (no policy events, nothing logged)."""
        return key in self.cache

    def __len__(self) -> int:
        """Resident entries across shards."""
        return len(self.cache)

    def stats(self):
        """The engine's merged counter snapshot."""
        return self.cache.stats()

    # ------------------------------------------------------------------
    # Durability controls
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush and fsync every buffered WAL record."""
        with self._lock:
            self._flush_locked()

    def snapshot(self) -> int:
        """Take a snapshot now; returns the new generation number."""
        with self._lock:
            self._rotate_locked()
            return self.generation

    def close(self) -> None:
        """Flush the WAL and release the log file handle."""
        with self._lock:
            self._flush_locked()
            self._wal.close()

    def __enter__(self) -> "PersistentKVCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals (caller holds the wrapper lock)
    # ------------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _log(self, op: tuple, applied: bool = False) -> None:
        """Buffer one record; flush or rotate on cadence.

        ``applied`` says whether the operation has already run against
        the engine (``get_or_compute`` must apply first — the computed
        value *is* the record). It decides which side of a rotation the
        record lands on: an unapplied record belongs in the *new* WAL
        (the snapshot captures the state before it), an applied one in
        the *old* WAL (the snapshot already includes its effect) —
        either mistake replays the op twice or drops it.
        """
        self._buffer += encode_record(op)
        self._ops_since_snapshot += 1
        if (self.snapshot_every is not None
                and self._ops_since_snapshot >= self.snapshot_every):
            self._rotate_locked(pending_op=not applied)
        elif self._ops_since_snapshot % self.wal_flush_ops == 0:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._buffer:
            self._wal.write(self._buffer)
            self._buffer.clear()
        self._wal.flush()
        os.fsync(self._wal.fileno())

    def _rotate_locked(self, pending_op: bool = False) -> None:
        """Start a new generation: snapshot current state, fresh WAL.

        With ``pending_op`` the last buffered record has been logged
        but not yet applied; it must land in the *new* WAL (the
        snapshot will capture the state before it), so it is carried
        over instead of flushed.
        """
        carry = b""
        if pending_op and self._buffer:
            # The unapplied record is the newest complete frame; carry
            # exactly that frame, flush everything before it.
            view = bytes(self._buffer)
            offset = 0
            last_start = 0
            while offset + _RECORD_HEADER <= len(view):
                length = int.from_bytes(view[offset + 4:offset + 8], "little")
                last_start = offset
                offset += _RECORD_HEADER + length
            carry = view[last_start:]
            del self._buffer[last_start:]
        self._flush_locked()
        self._wal.close()
        self.generation += 1
        self._write_snapshot_locked()
        self._wal = open(self._path(_wal_name(self.generation)), "ab")
        self._buffer += carry
        self._ops_since_snapshot = 1 if pending_op else 0
        self.snapshots_taken += 1
        self._prune_locked()

    def _write_snapshot_locked(self) -> None:
        write_snapshot(
            self._path(_snapshot_name(self.generation)),
            self.cache.state_dict(),
        )
        manifest = {
            "format": FORMAT_VERSION,
            "generation": self.generation,
            "config": self.cache.config,
        }
        atomic_write_text(
            self._path("MANIFEST.json"), json.dumps(manifest, indent=2)
        )

    def _prune_locked(self, keep: int = 2) -> None:
        """Drop snapshot/WAL generations older than the newest ``keep``."""
        floor = self.generation - keep + 1
        for name in os.listdir(self.directory):
            for prefix in ("snapshot-", "wal-"):
                if name.startswith(prefix):
                    try:
                        gen = int(name[len(prefix):].split(".")[0])
                    except ValueError:
                        continue
                    if gen < floor:
                        try:
                            os.unlink(self._path(name))
                        except OSError:
                            pass


def apply_wal_record(cache: AdaptiveKVCache, record: tuple) -> None:
    """Apply one decoded WAL record to an engine."""
    kind = record[0]
    if kind == "get":
        cache.get(record[1])
    elif kind == "gmany":
        cache.get_many(record[1])
    elif kind == "put":
        _, key, value, ttl, size = record
        cache.put(key, value, ttl=ttl, size=size)
    elif kind == "goc_fill":
        _, key, value, ttl = record
        cache.get_or_compute(key, lambda _k: value, ttl=ttl)
    elif kind == "del":
        cache.delete(record[1])
    else:
        raise ValueError(f"unknown WAL record kind {kind!r}")


def replay_into(cache: AdaptiveKVCache, records: Iterable[tuple]) -> None:
    """Apply decoded WAL records to an engine, in order.

    ``records`` may be any iterable — in particular a lazily decoded
    stream of ``record`` fields from :func:`iter_wal` — so replay never
    requires the whole log in memory.
    """
    for record in records:
        apply_wal_record(cache, record)


def load_snapshot_engine(
    directory: str,
    sizeof: Optional[Callable] = None,
    history_factory=None,
    clock: Callable[[], float] = None,
) -> Tuple[AdaptiveKVCache, int, int]:
    """Rebuild an engine from the newest intact snapshot in ``directory``.

    The snapshot-loading half of :func:`recover` — shared with
    :class:`~repro.online.liverecovery.LiveRecoveringKVCache`, which
    replays the WAL chain incrementally instead of all at once.

    Returns:
        ``(cache, loaded_generation, latest_generation)`` — the engine
        restored from ``snapshot-loaded_generation`` (falling back one
        generation when the newest snapshot is torn or corrupt) and the
        manifest's latest generation; WALs ``loaded_generation`` through
        ``latest_generation`` still need replaying.

    Raises:
        FileNotFoundError: no manifest in ``directory``.
        SnapshotCorruptError: no intact snapshot survives.
    """
    directory = os.fspath(directory)
    with open(os.path.join(directory, "MANIFEST.json")) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported persistence format {manifest.get('format')!r}"
        )
    config = dict(manifest["config"])
    config["components"] = tuple(config["components"])
    latest = int(manifest["generation"])

    state = None
    loaded_gen = None
    for generation in (latest, latest - 1):
        if generation < 0:
            break
        path = os.path.join(directory, _snapshot_name(generation))
        try:
            state = read_snapshot(path)
            loaded_gen = generation
            break
        except (FileNotFoundError, SnapshotCorruptError):
            continue
    if state is None:
        raise SnapshotCorruptError(
            f"no intact snapshot at generations {latest} or {latest - 1} "
            f"in {directory}"
        )

    cache = AdaptiveKVCache(
        sizeof=sizeof, history_factory=history_factory, clock=clock, **config
    )
    cache.load_state_dict(state)
    return cache, loaded_gen, latest


def recover(
    directory: str,
    snapshot_every: Optional[int] = 10_000,
    wal_flush_ops: int = 64,
    sizeof: Optional[Callable] = None,
    history_factory=None,
    clock: Callable[[], float] = None,
) -> PersistentKVCache:
    """Rebuild a :class:`PersistentKVCache` from its on-disk state.

    Loads the newest intact snapshot (falling back one generation when
    the newest fails its CRC — e.g. a crash straddled the atomic
    replace), replays every write-ahead log from that generation
    forward with torn tails truncated, and returns a wrapper appending
    to the newest log exactly where the intact prefix ends.

    Args:
        directory: the persistence directory of a previous run.
        snapshot_every: automatic-snapshot cadence for the new wrapper.
        wal_flush_ops: WAL flush cadence for the new wrapper.
        sizeof: byte-size estimator override (callables cannot be
            recorded in the manifest).
        history_factory: per-shard miss-history override, likewise.
        clock: time-source override, likewise.

    Raises:
        FileNotFoundError: no manifest in ``directory``.
        SnapshotCorruptError: no intact snapshot survives.
    """
    cache, loaded_gen, latest = load_snapshot_engine(
        directory,
        sizeof=sizeof,
        history_factory=history_factory,
        clock=clock,
    )

    offset = 0
    for generation in range(loaded_gen, latest + 1):
        wal_path = os.path.join(directory, _wal_name(generation))
        offset = 0
        for record, offset in iter_wal(wal_path):
            apply_wal_record(cache, record)
    # ``offset`` is now the intact length of the newest WAL; make sure
    # that file exists even if the crash landed before its first append.
    newest = os.path.join(directory, _wal_name(latest))
    if not os.path.exists(newest):
        open(newest, "ab").close()
        offset = 0
    return PersistentKVCache(
        cache,
        directory,
        snapshot_every=snapshot_every,
        wal_flush_ops=wal_flush_ops,
        _generation=latest,
        _wal_offset=offset,
    )
