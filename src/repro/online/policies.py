"""Per-shard policy construction for the online engine.

Three shard flavours, all speaking the standard
:class:`~repro.policies.base.ReplacementPolicy` protocol:

* **fixed** — any registry policy (LRU/LFU/FIFO/MRU/Random/...), built
  for the shard's 1 x capacity geometry.
* **adaptive** — the paper's Algorithm 1 per shard: an
  :class:`~repro.core.adaptive.AdaptivePolicy` whose parallel tag
  arrays become shadow *directories* of partial key fingerprints.
* **sampled** (SBAR-style, Section 4.7) — leader shards run the full
  adaptive machinery and additionally vote into a shared
  :class:`~repro.core.selector.GlobalSelector`; follower shards carry
  no shadow structures at all, just resident metadata for both
  components (:class:`DuelingResidentPolicy`), and evict with whichever
  component the global selector currently favours.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

from repro.core.adaptive import AdaptivePolicy
from repro.core.selector import GlobalSelector
from repro.online.keyspace import partial_fingerprint_transform
from repro.policies.base import ReplacementPolicy, SetView
from repro.policies.registry import make_policy


class DuelingResidentPolicy(ReplacementPolicy):
    """Follower-shard policy: resident metadata for two components.

    Mirrors the follower sets of :class:`~repro.core.sbar.SbarPolicy`:
    both component policies track the entries actually resident (so
    either can take over the current contents), and the globally
    selected one chooses victims. Carries no shadow directories or miss
    history — that is the entire point of sampling.

    Args:
        ways: shard entry capacity.
        components: two registry policy names.
        selector: the shared global selector leaders train.
        seed: forwarded to components that take one (e.g. ``random``).
    """

    name = "dueling"

    def __init__(
        self,
        ways: int,
        components: Sequence[str],
        selector: GlobalSelector,
        seed: int = 0,
    ):
        super().__init__(1, ways)
        if len(components) != 2:
            raise ValueError("dueling shards take exactly two components")
        self.selector = selector
        self.components = [
            _make_component(name, ways, seed) for name in components
        ]
        self.name = "dueling(" + "+".join(components) + ")"

    def on_hit(self, set_index: int, way: int) -> None:
        for component in self.components:
            component.on_hit(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        for component in self.components:
            component.on_fill(set_index, way, tag)

    def on_invalidate(self, set_index: int, way: int) -> None:
        for component in self.components:
            component.on_invalidate(set_index, way)

    def victim(self, set_index: int, set_view: SetView) -> int:
        return self.components[self.selector.selected()].victim(
            set_index, set_view
        )

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the two components' metadata.

        The shared :class:`~repro.core.selector.GlobalSelector` is
        engine-level state saved once by the engine, not per follower
        shard — saving it here would restore it N times.
        """
        return {"components": [c.state_dict() for c in self.components]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        for component, comp_state in zip(self.components, state["components"]):
            component.load_state_dict(comp_state)


def _make_component(name: str, ways: int, seed: int) -> ReplacementPolicy:
    """One component policy for a 1 x ways shard."""
    kwargs = {"seed": seed} if name == "random" else {}
    return make_policy(name, 1, ways, **kwargs)


def build_shard_policy(
    kind: str,
    capacity: int,
    components: Sequence[str] = ("lru", "lfu"),
    partial_bits: Optional[int] = 16,
    history_factory=None,
    seed: int = 0,
    vote_sink: Optional[Callable[[List[bool]], None]] = None,
) -> ReplacementPolicy:
    """Build one shard's replacement policy.

    Args:
        kind: ``"adaptive"`` (Algorithm 1 with shadow directories), a
            registry policy name, or — via :class:`DuelingResidentPolicy`
            constructed directly — a sampled follower.
        capacity: shard entry capacity (the policy's associativity).
        components: component names for the adaptive kind.
        partial_bits: partial-fingerprint width for the shadow
            directories (None = full 64-bit fingerprints).
        history_factory: per-shard miss-history constructor override.
        seed: deterministic seed for stochastic policies.
        vote_sink: optional per-access miss-vector callback (leader
            shards wire this to the engine's global selector).
    """
    if kind == "adaptive":
        return AdaptivePolicy(
            1,
            capacity,
            [_make_component(name, capacity, seed) for name in components],
            tag_transform=partial_fingerprint_transform(partial_bits),
            history_factory=history_factory,
            seed=seed,
            vote_sink=vote_sink,
        )
    if vote_sink is not None:
        raise ValueError("vote_sink only applies to adaptive shard policies")
    return _make_component(kind, capacity, seed)


class LockedVoteSink:
    """A thread-safe funnel from leader shards into a global selector.

    Leader shards run under their own locks, so concurrent votes into
    the shared PSEL counter must be serialized; this tiny wrapper owns
    that lock (the hardware selector needs none — this is the price of
    lifting the structure into threaded software).
    """

    def __init__(self, selector: GlobalSelector):
        self.selector = selector
        self._lock = threading.Lock()

    def __call__(self, missed: Sequence[bool]) -> None:
        """Record one leader access's miss vector."""
        with self._lock:
            self.selector.vote(missed)

    def selected(self) -> int:
        """Component the selector currently favours."""
        with self._lock:
            return self.selector.selected()
