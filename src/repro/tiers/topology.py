"""Explicit tier graphs over set-associative caches.

Generalizes the hard-coded L1/L2/memory walk of
:class:`~repro.cache.hierarchy.CacheHierarchy` into an explicit
structure: a :class:`TierGraph` is an in-tree of named cache tiers over
one :class:`BackingStore`, each tier carrying the transfer cost of its
down-edge, and a :class:`TieredCache` walks references through it under
a pluggable :class:`~repro.tiers.placement.PlacementStrategy`.

Two walk modes, selected by the strategy's ``eager`` flag:

* **eager** (LCE): every tier fills as soon as it misses, on the way
  down — the exact walk the old hierarchy performed, preserved
  access-for-access so the refactored :class:`CacheHierarchy` stays
  byte-identical (same `AccessResult` stream into every tier, same
  single-hop writeback propagation, same latency arithmetic).
* **deferred** (LCD, probabilistic LCD, adaptive): tiers are *probed*
  without filling (:meth:`~repro.cache.cache.SetAssociativeCache.lookup`)
  until one serves the request, then the placement strategy names the
  tiers that admit a copy
  (:meth:`~repro.cache.cache.SetAssociativeCache.admit`).

Writeback propagation is single-hop in both modes, as in the original
hierarchy: a dirty victim is written into the tier directly below
(swallowing that install's own side effects), and dirty victims of the
bottom tier — plus the demand writebacks the old ``access_l2`` counted —
reach the backing store's write counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.tiers.placement import (
    LeaveCopyEverywhere,
    PlacementStrategy,
)


class BackingStore:
    """The memory/origin node every tier graph bottoms out in.

    Args:
        name: node name (``"memory"`` for the hardware hierarchy).
        latency: cycles a fetch spends at the store itself; the bottom
            tier's ``transfer_cost`` (the bus) is accounted separately,
            so the old ``miss_penalty`` is ``latency + transfer_cost``.
    """

    __slots__ = ("name", "latency", "reads", "writes")

    def __init__(self, name: str = "memory", latency: int = 120):
        if latency <= 0:
            raise ValueError(f"backing latency must be positive, got {latency}")
        self.name = name
        self.latency = latency
        self.reads = 0
        self.writes = 0


class TierNode:
    """One cache tier in the graph: a cache plus its down-edge."""

    __slots__ = ("name", "cache", "below", "transfer_cost", "hit_latency")

    def __init__(
        self,
        name: str,
        cache: SetAssociativeCache,
        below: Optional["TierNode"],
        transfer_cost: int,
    ):
        self.name = name
        self.cache = cache
        self.below = below
        self.transfer_cost = transfer_cost
        self.hit_latency = cache.config.hit_latency


class TierGraph:
    """An in-tree of cache tiers over one backing store.

    Tiers are added bottom-up: each names the tier below it (or the
    backing store), so the structure is acyclic by construction. Any
    tier no other tier sits on is an *entry point* — the hardware
    hierarchy has three (``l1d``, ``l1i`` and ``l2`` itself for
    L2-trace experiments), all funnelling into the same ``l2``.
    """

    def __init__(self, backing: Optional[BackingStore] = None):
        self.backing = backing or BackingStore()
        self._tiers: Dict[str, TierNode] = {}

    def add_tier(
        self,
        name: str,
        cache: SetAssociativeCache,
        below: Optional[str] = None,
        transfer_cost: int = 0,
    ) -> TierNode:
        """Add a cache tier whose down-edge points at ``below``.

        Args:
            name: unique tier name.
            cache: the tier's cache.
            below: name of an already-added tier, or None / the backing
                store's name for a bottom tier.
            transfer_cost: cycles to move a line across this tier's
                down-edge (the old ``bus_transfer_cycles`` for the
                bottom tier of the hardware hierarchy).
        """
        if name in self._tiers or name == self.backing.name:
            raise ValueError(f"tier name {name!r} already in use")
        if transfer_cost < 0:
            raise ValueError(
                f"transfer_cost must be non-negative, got {transfer_cost}"
            )
        if below is None or below == self.backing.name:
            below_node = None
        else:
            below_node = self._tiers.get(below)
            if below_node is None:
                raise ValueError(
                    f"tier {name!r} sits on unknown tier {below!r}; add "
                    "tiers bottom-up"
                )
        if below_node is not None:
            below_bytes = below_node.cache.config.line_bytes
            if cache.config.line_bytes != below_bytes:
                raise ValueError(
                    f"tier {name!r} line size {cache.config.line_bytes} does "
                    f"not match tier {below!r} line size {below_bytes}; "
                    "tiers on one path must share a block size"
                )
        node = TierNode(name, cache, below_node, transfer_cost)
        self._tiers[name] = node
        return node

    def tier(self, name: str) -> TierNode:
        """The named tier node."""
        return self._tiers[name]

    def tier_names(self) -> Tuple[str, ...]:
        """All tier names, in insertion (bottom-up) order."""
        return tuple(self._tiers)

    def entry_points(self) -> Tuple[str, ...]:
        """Tiers no other tier sits on, in insertion order."""
        supporting = {
            node.below.name for node in self._tiers.values() if node.below
        }
        return tuple(n for n in self._tiers if n not in supporting)

    def path_from(self, entry: str) -> List[TierNode]:
        """Tier nodes from ``entry`` down to (not including) backing."""
        node = self._tiers.get(entry)
        if node is None:
            raise ValueError(
                f"unknown entry tier {entry!r}; known: "
                f"{', '.join(self._tiers) or '(none)'}"
            )
        path = []
        while node is not None:
            path.append(node)
            node = node.below
        return path


class TieredAccessResult:
    """Outcome of one reference walked through a tier graph.

    Attributes:
        served_by: name of the tier (or backing store) that served.
        latency: cycles to return the data to the entry point.
        probed: names of the cache tiers the walk referenced, top-down.
        admitted: names of the cache tiers that installed a copy.
    """

    __slots__ = ("served_by", "latency", "probed", "admitted")

    def __init__(self, served_by, latency, probed, admitted):
        self.served_by = served_by
        self.latency = latency
        self.probed = probed
        self.admitted = admitted

    def __repr__(self) -> str:
        return (
            f"TieredAccessResult(served_by={self.served_by!r}, "
            f"latency={self.latency}, probed={self.probed!r}, "
            f"admitted={self.admitted!r})"
        )


class TieredCache:
    """Walks references through a :class:`TierGraph` under a placement
    strategy.

    Args:
        graph: the tier graph; entry paths are frozen at construction,
            so add every tier before building the walker.
        placement: placement strategy; defaults to LCE, the classic
            inclusive walk.
        default_entry: entry tier for :meth:`access` calls that name
            none; inferred when the graph has exactly one entry point.
    """

    def __init__(
        self,
        graph: TierGraph,
        placement: Optional[PlacementStrategy] = None,
        default_entry: Optional[str] = None,
    ):
        if not graph.tier_names():
            raise ValueError("tier graph has no tiers")
        self.graph = graph
        self.placement = placement or LeaveCopyEverywhere()
        self._paths = {
            name: graph.path_from(name) for name in graph.tier_names()
        }
        entries = graph.entry_points()
        if default_entry is None and len(entries) == 1:
            default_entry = entries[0]
        if default_entry is not None and default_entry not in self._paths:
            raise ValueError(f"unknown default entry {default_entry!r}")
        self.default_entry = default_entry
        # Placement keys are line-granular: same shift for every tier on
        # a path (enforced by TierGraph.add_tier).
        self._block_shifts = {
            name: path[-1].cache.config.offset_bits
            for name, path in self._paths.items()
        }
        self.serves: Dict[str, int] = {name: 0 for name in graph.tier_names()}
        self.serves[graph.backing.name] = 0
        self._observe_placement = (
            type(self.placement).observe_access
            is not PlacementStrategy.observe_access
        )

    @property
    def backing_reads(self) -> int:
        """Demand fetches that reached the backing store."""
        return self.graph.backing.reads

    @property
    def backing_writes(self) -> int:
        """Dirty lines written back to the backing store."""
        return self.graph.backing.writes

    def _spill(self, node: TierNode, evicted_tag: int, set_index: int) -> None:
        # Single-hop writeback: a dirty victim becomes a write install
        # one tier down, whose own side effects are swallowed — except
        # at the bottom tier, where it reaches the backing store. This
        # mirrors the old hierarchy exactly (the L1 victim's L2 install
        # never bumped memory_writes, the L2 demand writeback did).
        below = node.below
        if below is None:
            self.graph.backing.writes += 1
            return
        address = node.cache.config.rebuild_address(evicted_tag, set_index)
        below.cache.access(address, is_write=True)

    def access(
        self,
        address: int,
        is_write: bool = False,
        entry: Optional[str] = None,
    ) -> TieredAccessResult:
        """Walk one byte reference from ``entry`` toward backing.

        The write intent applies at the entry tier only; descents are
        reads, as in the original hierarchy.
        """
        if entry is None:
            entry = self.default_entry
            if entry is None:
                raise ValueError(
                    "graph has multiple entry points "
                    f"{self.graph.entry_points()!r}; name one explicitly"
                )
        path = self._paths[entry]
        placement = self.placement
        if self._observe_placement:
            placement.observe_access(
                address >> self._block_shifts[entry], is_write
            )
        if placement.eager:
            return self._access_eager(path, address, is_write)
        return self._access_deferred(path, entry, address, is_write)

    def _access_eager(self, path, address, is_write):
        # The classic inclusive walk: each tier fills the moment it
        # misses. Decision-identical to CacheHierarchy's original loop.
        latency = 0
        probed = []
        for depth, node in enumerate(path):
            result = node.cache.access(address, depth == 0 and is_write)
            latency += node.hit_latency
            probed.append(node.name)
            if result.writeback:
                self._spill(node, result.evicted_tag, result.set_index)
            if result.hit:
                self.serves[node.name] += 1
                return TieredAccessResult(
                    node.name, latency, tuple(probed),
                    tuple(probed[:-1]),
                )
            latency += node.transfer_cost
        backing = self.graph.backing
        backing.reads += 1
        self.serves[backing.name] += 1
        return TieredAccessResult(
            backing.name,
            latency + backing.latency,
            tuple(probed),
            tuple(probed),
        )

    def _access_deferred(self, path, entry, address, is_write):
        # Probe without filling, then let the placement strategy name
        # the tiers that keep a copy.
        latency = 0
        probed = []
        served = len(path)
        for depth, node in enumerate(path):
            result = node.cache.lookup(address, depth == 0 and is_write)
            latency += node.hit_latency
            probed.append(node.name)
            if result.hit:
                served = depth
                break
            latency += node.transfer_cost
        backing = self.graph.backing
        if served == len(path):
            backing.reads += 1
            latency += backing.latency
            served_name = backing.name
        else:
            served_name = path[served].name
        self.serves[served_name] += 1

        targets = self.placement.copy_tiers(
            len(path), served, address >> self._block_shifts[entry]
        )
        # A write that misses every tier and is admitted nowhere has no
        # dirty line to hold it — it goes through to backing. Otherwise
        # the topmost admitted copy takes the dirty bit (a write that
        # hit was already dirtied by lookup at the serving tier).
        total_miss_write = is_write and served == len(path)
        if total_miss_write and not targets:
            backing.writes += 1
        dirty_target = min(targets) if (total_miss_write and targets) else None
        admitted = []
        for depth in sorted(targets, reverse=True):
            node = path[depth]
            result = node.cache.admit(address, dirty=depth == dirty_target)
            if result.writeback:
                self._spill(node, result.evicted_tag, result.set_index)
            if not result.hit:
                admitted.append(node.name)
        admitted.reverse()
        return TieredAccessResult(
            served_name, latency, tuple(probed), tuple(admitted)
        )

    def serve_counts(self) -> Dict[str, int]:
        """Serves per node (tiers + backing), copied."""
        return dict(self.serves)
