"""Generalized multi-tier cache topologies with adaptive placement.

The paper adapts the *eviction policy* of each cache set; this
subsystem adapts the orthogonal dimension — *where a value lands*
across a multi-tier topology — using the same Algorithm 1 selector
machinery (:mod:`repro.core.selector`).

* :mod:`repro.tiers.placement` — the strategy family: LCE, LCD,
  probabilistic LCD, and the registry (:func:`make_placement`).
* :mod:`repro.tiers.adaptive` — :class:`AdaptivePlacement`, a
  per-keyspace-partition selector dueling fixed strategies on shadow
  topologies with decisive-miss (backing-fetch) feedback.
* :mod:`repro.tiers.topology` — the hardware side: :class:`TierGraph`
  (an in-tree of set-associative caches over a backing store) and
  :class:`TieredCache`, the walker the refactored
  :class:`~repro.cache.hierarchy.CacheHierarchy` is a two-tier
  instantiation of.
* :mod:`repro.tiers.kv` — the serving side: :class:`KVTier` /
  :class:`TieredKVCache` over any duck-typed KV store, plus the
  canonical near/far (:func:`tiered_front`) and client-local→cluster
  (:func:`client_local_topology`) topologies.

See docs/tiers.md for the model and the adaptive-placement design.
"""

from repro.tiers.adaptive import AdaptivePlacement
from repro.tiers.kv import (
    KVTier,
    TieredKVCache,
    TieredKVResult,
    client_local_topology,
    tiered_front,
)
from repro.tiers.placement import (
    FIXED_PLACEMENTS,
    LeaveCopyDown,
    LeaveCopyEverywhere,
    PlacementStrategy,
    ProbabilisticLCD,
    make_placement,
)
from repro.tiers.topology import (
    BackingStore,
    TierGraph,
    TierNode,
    TieredAccessResult,
    TieredCache,
)

__all__ = [
    "AdaptivePlacement",
    "BackingStore",
    "FIXED_PLACEMENTS",
    "KVTier",
    "LeaveCopyDown",
    "LeaveCopyEverywhere",
    "PlacementStrategy",
    "ProbabilisticLCD",
    "TierGraph",
    "TierNode",
    "TieredAccessResult",
    "TieredCache",
    "TieredKVCache",
    "TieredKVResult",
    "client_local_topology",
    "make_placement",
    "tiered_front",
]
