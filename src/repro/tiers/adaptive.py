"""Adaptive placement: Algorithm 1's selector dueling placement strategies.

The paper's adaptive cache runs every component *replacement policy* on
shadow tag arrays and imitates the one with the fewest decisive misses.
This module applies the identical scheme one axis over: the components
are *placement strategies* (:mod:`repro.tiers.placement`), the shadow
structures are miniature topologies — one LRU dictionary per tier, per
component, per keyspace partition — and the decisive signal is the
*serving depth*: a component "misses" an access when some other
component's shadow topology would have served it from a strictly
nearer tier (the backing store being the deepest level of all). This
generalizes the paper's decisive miss — in a one-tier topology it
degenerates to exactly "some components hit, some missed" — while
staying sensitive to the effect placement actually controls, namely
*where* on the path a value is found, not just whether it is found at
all.

Partitioning plays the role of the paper's per-set adaptation: keys are
folded onto ``num_partitions`` partitions by fingerprint, each with its
own :class:`~repro.core.selector.PolicySelector`, so different regions
of the keyspace can settle on different placement strategies — exactly
how different cache sets settle on different replacement policies in
Algorithm 1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence, Tuple

from repro.core.selector import PolicySelector
from repro.online.keyspace import key_fingerprint
from repro.tiers.placement import PlacementStrategy, make_placement

DEFAULT_COMPONENTS = ("lce", "lcd")


class AdaptivePlacement(PlacementStrategy):
    """Per-partition selector dueling fixed placement strategies.

    Every walked access is first replayed through one shadow topology
    per component strategy (:meth:`observe_access`); components whose
    shadow serves the access from deeper than the best component's
    shadow record a miss, and the partition's selector tallies
    decisive outcomes. The real placement
    decision (:meth:`copy_tiers`) then delegates to whichever component
    the partition currently imitates — Algorithm 1, verbatim, with
    placement strategies as the components.

    Shadow tiers are plain LRU dictionaries sized to each real tier's
    per-partition share (``capacity // num_partitions``), the same
    cost-reduction trade the paper makes with partial tags: the shadow
    ranks strategies, it does not replicate the real topology's
    replacement policies.

    Args:
        tier_capacities: entry capacity of each real cache tier, top
            (closest to the client) first.
        components: placement-strategy registry names to duel.
        num_partitions: keyspace partitions, each with its own selector.
        seed: base seed; stochastic components get forked streams so
            real decisions and shadow replays never share a draw
            sequence.
    """

    name = "adaptive"
    eager = False

    def __init__(
        self,
        tier_capacities: Sequence[int],
        components: Sequence[str] = DEFAULT_COMPONENTS,
        num_partitions: int = 8,
        seed: int = 0,
    ):
        if len(components) < 2:
            raise ValueError(
                f"adaptive placement needs >= 2 components, got "
                f"{len(components)}"
            )
        if "adaptive" in components:
            raise ValueError("adaptive placement cannot nest itself")
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if not tier_capacities or any(c <= 0 for c in tier_capacities):
            raise ValueError(
                f"tier_capacities must be positive, got {tier_capacities!r}"
            )
        self.component_names = tuple(components)
        self.num_partitions = num_partitions
        self.num_tiers = len(tier_capacities)
        # Separate instances (and for problcd, separate seeded streams)
        # for real decisions vs shadow replays: the shadow replays one
        # draw per access per stochastic component, the real delegate
        # only draws when imitated — sharing a stream would make each
        # side's draws depend on the other's call pattern.
        self.components = tuple(
            make_placement(cname, seed=seed + i)
            for i, cname in enumerate(components)
        )
        self._shadow_components = tuple(
            make_placement(cname, seed=seed + 100 + i)
            for i, cname in enumerate(components)
        )
        self._shadow_caps = tuple(
            max(1, cap // num_partitions) for cap in tier_capacities
        )
        self.selectors = tuple(
            PolicySelector(num_components=len(components))
            for _ in range(num_partitions)
        )
        # _shadows[partition][component][tier] -> OrderedDict LRU.
        self._shadows = [
            [
                [OrderedDict() for _ in range(self.num_tiers)]
                for _ in components
            ]
            for _ in range(num_partitions)
        ]
        #: Real placement decisions delegated to each component.
        self.decisions = [0] * len(components)
        self._last_key = None
        self._last_partition = 0

    def _partition(self, key) -> int:
        # copy_tiers always follows observe_access for the same key, so
        # one fingerprint per access suffices.
        if key is self._last_key:
            return self._last_partition
        partition = key_fingerprint(key) % self.num_partitions
        self._last_key = key
        self._last_partition = partition
        return partition

    def observe_access(self, key, is_write: bool = False) -> None:
        """Replay ``key`` through every component's shadow topology.

        Each shadow walk serves from the topmost tier holding the key
        (touching its recency) or falls through to the backing store,
        then applies that component's own placement decision to the
        shadow tiers. The partition's selector records a miss for every
        component that served strictly deeper than the best one —
        accesses where all components serve at the same depth are
        indecisive, exactly as all-hit/all-miss accesses are in
        Algorithm 1.
        """
        partition = self._partition(key)
        shadows = self._shadows[partition]
        num_tiers = self.num_tiers
        depths = []
        for component, tiers in zip(self._shadow_components, shadows):
            served = num_tiers
            for level, lru in enumerate(tiers):
                if key in lru:
                    served = level
                    lru.move_to_end(key)
                    break
            depths.append(served)
            for level in component.copy_tiers(num_tiers, served, key):
                lru = tiers[level]
                if key in lru:
                    lru.move_to_end(key)
                else:
                    lru[key] = None
                    if len(lru) > self._shadow_caps[level]:
                        lru.popitem(last=False)
        best_depth = min(depths)
        self.selectors[partition].record(
            [depth > best_depth for depth in depths]
        )

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        best = self.selectors[self._partition(key)].best_component()
        self.decisions[best] += 1
        return self.components[best].copy_tiers(num_tiers, served_index, key)

    @property
    def switches(self) -> int:
        """Total imitation switches across all partition selectors."""
        return sum(selector.switches for selector in self.selectors)

    def votes(self) -> Tuple[int, ...]:
        """Currently imitated component index, per partition."""
        return tuple(
            selector.best_component() for selector in self.selectors
        )

    def majority(self) -> str:
        """Component name most partitions currently imitate (ties go to
        the earlier component, matching the selector's own tie rule)."""
        votes = self.votes()
        counts = [votes.count(i) for i in range(len(self.component_names))]
        return self.component_names[counts.index(max(counts))]

    def state_summary(self) -> dict:
        return {
            "name": self.name,
            "components": list(self.component_names),
            "num_partitions": self.num_partitions,
            "votes": list(self.votes()),
            "majority": self.majority(),
            "switches": self.switches,
            "decisions": list(self.decisions),
        }
