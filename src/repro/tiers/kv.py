"""Tiered key-value serving: placement strategies over KV stores.

The hardware walker (:mod:`repro.tiers.topology`) generalizes the
L1/L2/memory hierarchy; this module does the same for the serving
stack. A :class:`KVTier` wraps any duck-typed key-value store — a
:class:`~repro.online.shard.CacheShard`, a whole
:class:`~repro.online.engine.AdaptiveKVCache`, or a
:class:`~repro.cluster.cache.ClusterKVCache` ring — behind the three
operations a tier walk needs (`lookup`, `admit`, `invalidate`), and a
:class:`TieredKVCache` walks requests through a near→far tier list
under a pluggable :class:`~repro.tiers.placement.PlacementStrategy`.

Two canonical topologies ship as helpers:

* :func:`tiered_front` — a small near shard in front of an
  :class:`AdaptiveKVCache` (the process-local hot-entry tier);
* :func:`client_local_topology` — a client-local shard in front of a
  :class:`ClusterKVCache` ring (the cluster as bottom tier).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.tiers.placement import (
    LeaveCopyEverywhere,
    PlacementStrategy,
)

#: Probe-miss sentinel: stores signal misses via their ``default``
#: argument, and None is a legitimate cached value.
_MISS = object()


class KVTier:
    """One tier of a key-value topology.

    Wraps any store exposing ``get(key, default)``, ``put(key, value)``
    and ``delete(key)`` — which all three engines do — plus a latency
    annotation pair mirroring the hardware tier graph's node/edge
    costs.

    Args:
        name: unique tier name (reporting, stats).
        store: the wrapped store.
        capacity: entry capacity, used to size adaptive placement's
            shadow topologies (informational otherwise).
        hit_latency: cost charged for probing this tier.
        transfer_cost: cost of this tier's down-edge.
    """

    __slots__ = ("name", "store", "capacity", "hit_latency", "transfer_cost")

    def __init__(
        self,
        name: str,
        store,
        capacity: int,
        hit_latency: int = 1,
        transfer_cost: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if hit_latency <= 0:
            raise ValueError(f"hit_latency must be positive, got {hit_latency}")
        if transfer_cost < 0:
            raise ValueError(
                f"transfer_cost must be non-negative, got {transfer_cost}"
            )
        self.name = name
        self.store = store
        self.capacity = capacity
        self.hit_latency = hit_latency
        self.transfer_cost = transfer_cost

    def lookup(self, key):
        """``(found, value)`` — a probe, never a fill."""
        value = self.store.get(key, _MISS)
        if value is _MISS:
            return False, None
        return True, value

    def admit(self, key, value) -> None:
        """Install ``key`` in this tier (store handles its own eviction)."""
        self.store.put(key, value)

    def invalidate(self, key) -> bool:
        """Drop ``key`` from this tier if resident."""
        return bool(self.store.delete(key))


class TieredKVResult:
    """Outcome of one request walked through a KV tier list.

    Attributes:
        found: whether any tier (or the backing loader) produced a value.
        value: the value served (None on a plain-get total miss).
        served_by: tier name, the backing name, or None (total miss on
            a plain get, which consults no backing).
        latency: accumulated probe + transfer + backing cost.
        admitted: names of tiers that installed a copy, near-to-far.
    """

    __slots__ = ("found", "value", "served_by", "latency", "admitted")

    def __init__(self, found, value, served_by, latency, admitted):
        self.found = found
        self.value = value
        self.served_by = served_by
        self.latency = latency
        self.admitted = admitted

    def __repr__(self) -> str:
        return (
            f"TieredKVResult(found={self.found}, served_by={self.served_by!r}, "
            f"latency={self.latency}, admitted={self.admitted!r})"
        )


class TieredKVCache:
    """A near→far list of KV tiers under a placement strategy.

    The walk mirrors the hardware deferred walk: probe tiers in order
    until one serves, then ask the placement strategy which tiers keep
    a copy (hit promotion on ``get``, fill placement on
    ``get_or_compute``). Admits run far-to-near so a near-tier copy
    never exists without the strategy having placed it.

    Args:
        tiers: near-to-far :class:`KVTier` list.
        placement: placement strategy; defaults to LCE.
        backing_latency: cost charged when ``get_or_compute`` runs its
            loader.
        backing_name: reporting name for the loader level.
    """

    def __init__(
        self,
        tiers: Sequence[KVTier],
        placement: Optional[PlacementStrategy] = None,
        backing_latency: int = 100,
        backing_name: str = "backing",
    ):
        if not tiers:
            raise ValueError("need at least one tier")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names) or backing_name in names:
            raise ValueError(f"tier names must be unique, got {names!r}")
        if backing_latency <= 0:
            raise ValueError(
                f"backing_latency must be positive, got {backing_latency}"
            )
        self.tiers: List[KVTier] = list(tiers)
        self.placement = placement or LeaveCopyEverywhere()
        self.backing_latency = backing_latency
        self.backing_name = backing_name
        self.serves: Dict[str, int] = {name: 0 for name in names}
        self.serves[backing_name] = 0
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.backing_fetches = 0
        self.total_latency = 0
        self._observe_placement = (
            type(self.placement).observe_access
            is not PlacementStrategy.observe_access
        )

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    def tier_capacities(self) -> List[int]:
        """Per-tier capacities, near-to-far (adaptive-placement sizing)."""
        return [tier.capacity for tier in self.tiers]

    def _probe(self, key):
        """(served_index, value, latency): first tier holding ``key``."""
        latency = 0
        for index, tier in enumerate(self.tiers):
            latency += tier.hit_latency
            found, value = tier.lookup(key)
            if found:
                return index, value, latency
            latency += tier.transfer_cost
        return len(self.tiers), None, latency

    def _admit_copies(self, served: int, key, value) -> List[str]:
        """Place copies per the strategy; far-to-near; returns names."""
        targets = self.placement.copy_tiers(len(self.tiers), served, key)
        admitted = []
        for index in sorted(targets, reverse=True):
            tier = self.tiers[index]
            tier.admit(key, value)
            admitted.append(tier.name)
        admitted.reverse()
        return admitted

    def get_detailed(self, key, default=None) -> TieredKVResult:
        """Probe all tiers; on a hit, promote per the placement strategy.

        A total miss consults no backing loader — plain gets report the
        miss to the caller (matching ``CacheShard.get``), and only
        :meth:`get_or_compute` fills.
        """
        self.gets += 1
        if self._observe_placement:
            self.placement.observe_access(key, False)
        served, value, latency = self._probe(key)
        self.total_latency += latency
        if served == len(self.tiers):
            return TieredKVResult(False, default, None, latency, ())
        name = self.tiers[served].name
        self.serves[name] += 1
        admitted = self._admit_copies(served, key, value)
        return TieredKVResult(True, value, name, latency, tuple(admitted))

    def get(self, key, default=None):
        """Value under ``key`` from the nearest holding tier, else
        ``default``."""
        return self.get_detailed(key, default).value

    def fetch(self, key, compute) -> TieredKVResult:
        """:meth:`get_or_compute` with full provenance."""
        self.gets += 1
        if self._observe_placement:
            self.placement.observe_access(key, False)
        served, value, latency = self._probe(key)
        if served == len(self.tiers):
            self.backing_fetches += 1
            self.serves[self.backing_name] += 1
            latency += self.backing_latency
            value = compute(key)
            served_name = self.backing_name
        else:
            served_name = self.tiers[served].name
            self.serves[served_name] += 1
        self.total_latency += latency
        admitted = self._admit_copies(served, key, value)
        return TieredKVResult(True, value, served_name, latency,
                              tuple(admitted))

    def get_or_compute(self, key, compute):
        """Serve from the nearest tier, running ``compute(key)`` (and
        placing the result) on a topology-wide miss."""
        return self.fetch(key, compute).value

    def put(self, key, value) -> TieredKVResult:
        """Write ``key`` through the topology.

        The placement strategy is consulted as for a backing-served
        fill (the value arrives from outside the topology). Tiers the
        strategy skips get the key *invalidated* so no stale copy
        survives the write; if the strategy places the value nowhere
        (probabilistic LCD declining), the far tier takes it — a put
        must never be dropped entirely.
        """
        self.puts += 1
        if self._observe_placement:
            self.placement.observe_access(key, True)
        num_tiers = len(self.tiers)
        targets = set(
            self.placement.copy_tiers(num_tiers, num_tiers, key)
        ) or {num_tiers - 1}
        admitted = []
        for index in range(num_tiers - 1, -1, -1):
            tier = self.tiers[index]
            if index in targets:
                tier.admit(key, value)
                admitted.append(tier.name)
            else:
                tier.invalidate(key)
        admitted.reverse()
        return TieredKVResult(True, value, None, 0, tuple(admitted))

    def delete(self, key) -> bool:
        """Drop ``key`` from every tier; True if any held it."""
        self.deletes += 1
        removed = False
        for tier in self.tiers:
            removed = tier.invalidate(key) or removed
        return removed

    def resident_in(self, key) -> List[str]:
        """Names of tiers currently holding ``key`` (testing aid)."""
        return [tier.name for tier in self.tiers if tier.lookup(key)[0]]

    def stats(self) -> dict:
        """Counter snapshot plus the placement strategy's summary."""
        tier_hits = sum(self.serves[tier.name] for tier in self.tiers)
        return {
            "gets": self.gets,
            "puts": self.puts,
            "deletes": self.deletes,
            "tier_hits": tier_hits,
            "hit_ratio": tier_hits / self.gets if self.gets else 0.0,
            "backing_fetches": self.backing_fetches,
            "serves": dict(self.serves),
            "total_latency": self.total_latency,
            "mean_latency": (
                self.total_latency / self.gets if self.gets else 0.0
            ),
            "placement": self.placement.state_summary(),
        }


def tiered_front(
    far,
    near_capacity: int,
    far_capacity: int,
    placement: Optional[PlacementStrategy] = None,
    near_policy: str = "lru",
    near_latency: int = 1,
    far_latency: int = 10,
    backing_latency: int = 100,
    seed: int = 0,
) -> TieredKVCache:
    """A small near shard in front of an existing far store.

    The optional near/far front for :class:`AdaptiveKVCache`: the far
    store keeps its full behavior (sharding, adaptivity, persistence);
    the near tier is a single process-local
    :class:`~repro.online.shard.CacheShard` absorbing the hottest keys.

    Args:
        far: the far store (any duck-typed KV store).
        near_capacity: entry capacity of the near shard.
        far_capacity: entry capacity of ``far`` (placement sizing).
        placement: placement strategy (default LCE).
        near_policy: registry policy for the near shard.
    """
    from repro.online.policies import build_shard_policy
    from repro.online.shard import CacheShard

    near = CacheShard(
        near_capacity,
        build_shard_policy(near_policy, near_capacity, seed=seed),
    )
    return TieredKVCache(
        [
            KVTier("near", near, near_capacity, hit_latency=near_latency),
            KVTier("far", far, far_capacity, hit_latency=far_latency),
        ],
        placement=placement,
        backing_latency=backing_latency,
    )


def client_local_topology(
    cluster,
    local_capacity: int,
    cluster_capacity: int,
    placement: Optional[PlacementStrategy] = None,
    local_policy: str = "lru",
    local_latency: int = 1,
    cluster_latency: int = 20,
    backing_latency: int = 200,
    seed: int = 0,
) -> TieredKVCache:
    """A client-local shard over a cluster ring as bottom tier.

    Wires :class:`~repro.cluster.cache.ClusterKVCache` into the tier
    model: the ring (replication, quorums, read-repair and all) serves
    as the far tier, with a client-local shard in front.
    """
    from repro.online.policies import build_shard_policy
    from repro.online.shard import CacheShard

    local = CacheShard(
        local_capacity,
        build_shard_policy(local_policy, local_capacity, seed=seed),
    )
    return TieredKVCache(
        [
            KVTier("local", local, local_capacity, hit_latency=local_latency),
            KVTier(
                "cluster", cluster, cluster_capacity,
                hit_latency=cluster_latency,
            ),
        ],
        placement=placement,
        backing_latency=backing_latency,
    )
