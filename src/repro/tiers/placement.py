"""Placement strategies: which tiers keep a copy of a value.

The paper adapts *which eviction policy* each cache set runs; this
module adds the orthogonal axis — *where* a value lands across a
multi-tier topology. A :class:`PlacementStrategy` is consulted by the
tier walkers (:class:`~repro.tiers.topology.TieredCache`,
:class:`~repro.tiers.kv.TieredKVCache`) after every access is resolved
and answers one question: given that the request was served by tier
``served_index`` (or by the backing store), which tiers above the
serving one should admit a copy?

The fixed strategies are the classical on-path content-placement
family (Laoutaris et al., and icarus's ``onpath.py``):

* **LCE** (leave-copy-everywhere) — every tier on the path admits a
  copy; the inclusive-hierarchy default and the only *eager* strategy
  (fills may happen on the way down, which is how the hardware
  :class:`~repro.cache.hierarchy.CacheHierarchy` has always walked).
* **LCD** (leave-copy-down) — only the tier one level above the
  serving one admits a copy, so content climbs one tier per hit and
  single-use values never pollute the upper tiers.
* **probabilistic LCD** — LCD where each copy-down happens with
  probability ``p`` (seeded, deterministic), damping the climb rate.

:class:`~repro.tiers.adaptive.AdaptivePlacement` (its own module)
duels these strategies with the paper's selector machinery.

Tier indices are path positions: 0 is the tier closest to the client,
``num_tiers`` denotes the backing store.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

from repro.utils.rng import DeterministicRNG


class PlacementStrategy(abc.ABC):
    """Decides which tiers admit a copy after each resolved access.

    Subclasses set :attr:`name` and implement :meth:`copy_tiers`.
    Strategies are consulted in stream order by a single walker, so
    stateful strategies (seeded RNGs, adaptive selectors) are
    deterministic for a given access stream.
    """

    name: str = "abstract"

    #: Eager strategies admit at every tier on the way *down* — the
    #: classic inclusive-hierarchy walk, where each cache installs the
    #: block as soon as it misses. Only LCE qualifies: its decision
    #: ("everyone keeps a copy") does not depend on where the request
    #: will eventually be served.
    eager: bool = False

    def observe_access(self, key, is_write: bool = False) -> None:
        """Pre-decision hook, called once per walked access.

        Fixed strategies ignore it; the adaptive strategy replays the
        access through its per-component shadow topologies here,
        mirroring how :class:`~repro.core.adaptive.AdaptivePolicy`
        updates its shadow tag arrays in ``observe``.
        """

    @abc.abstractmethod
    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        """Tier indices (ascending) that should admit a copy of ``key``.

        Args:
            num_tiers: cache tiers on the walked path; ``served_index``
                equal to ``num_tiers`` means the backing store served.
            served_index: path position that served the request.
            key: the key (or block address) being placed.
        """

    def state_summary(self) -> dict:
        """Small JSON-friendly introspection blob (digests, reports)."""
        return {"name": self.name}


class LeaveCopyEverywhere(PlacementStrategy):
    """LCE: every tier above the serving one admits a copy."""

    name = "lce"
    eager = True

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        return tuple(range(min(served_index, num_tiers)))


class LeaveCopyDown(PlacementStrategy):
    """LCD: only the tier one level above the serving one admits.

    Content climbs one tier per hit: a backing fetch lands in the
    bottom cache tier, a bottom-tier hit promotes into the tier above
    it, and so on — so only genuinely re-referenced values ever reach
    the top tier.
    """

    name = "lcd"

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        if served_index < 1:
            return ()
        return (min(served_index, num_tiers) - 1,)


class ProbabilisticLCD(PlacementStrategy):
    """LCD where each copy-down happens with probability ``p``.

    Args:
        p: copy-down probability in [0, 1].
        seed: RNG seed; the draw sequence is a pure function of the
            access stream, which is what lets the oracle spec replay
            it exactly.
    """

    name = "problcd"

    def __init__(self, p: float = 0.5, seed: int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p
        self._rng = DeterministicRNG(seed)

    def copy_tiers(self, num_tiers: int, served_index: int, key
                   ) -> Tuple[int, ...]:
        if served_index < 1:
            return ()
        if self._rng.random() < self.p:
            return (min(served_index, num_tiers) - 1,)
        return ()

    def state_summary(self) -> dict:
        return {"name": self.name, "p": self.p}


#: Names accepted by :func:`make_placement`.
FIXED_PLACEMENTS = ("lce", "lcd", "problcd")


def make_placement(
    name: str,
    tier_capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    **kwargs,
) -> PlacementStrategy:
    """Build a placement strategy from its registry name.

    Args:
        name: ``"lce"``, ``"lcd"``, ``"problcd"`` or ``"adaptive"``.
        tier_capacities: per-tier entry capacities of the topology the
            strategy will drive; required by ``"adaptive"`` (its shadow
            topologies are sized from them) and ignored by the fixed
            strategies.
        seed: deterministic seed for stochastic strategies.
        kwargs: forwarded to the strategy constructor (e.g. ``p`` for
            ``problcd``, ``components``/``num_partitions`` for
            ``adaptive``).
    """
    if name == "lce":
        return LeaveCopyEverywhere(**kwargs)
    if name == "lcd":
        return LeaveCopyDown(**kwargs)
    if name == "problcd":
        return ProbabilisticLCD(seed=seed, **kwargs)
    if name == "adaptive":
        from repro.tiers.adaptive import AdaptivePlacement

        if tier_capacities is None:
            raise ValueError(
                "adaptive placement needs tier_capacities to size its "
                "shadow topologies"
            )
        return AdaptivePlacement(tier_capacities, seed=seed, **kwargs)
    known = ", ".join(FIXED_PLACEMENTS + ("adaptive",))
    raise ValueError(f"unknown placement strategy {name!r}; known: {known}")
