"""Bit-manipulation helpers used by cache geometry and partial tagging.

These mirror the arithmetic a hardware designer does when carving an
address into offset / index / tag fields, and when folding a full tag
down to a partial tag (Section 3.1 of the paper).
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a positive power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two. Cache
            geometry (line size, number of sets) must be a power of two,
            so a non-power-of-two here always indicates a config bug.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value!r}")
    return value.bit_length() - 1


def mask(bits: int) -> int:
    """Return an integer with the low ``bits`` bits set."""
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return (1 << bits) - 1


def low_bits(value: int, bits: int) -> int:
    """Keep only the low-order ``bits`` bits of ``value``.

    This is the paper's default partial-tag function: "typically the
    low-order bits of the tag".
    """
    return value & mask(bits)


def xor_fold(value: int, bits: int, width: int = 64) -> int:
    """Fold ``value`` down to ``bits`` bits by XOR-ing ``bits``-wide groups.

    The paper mentions "a combination (e.g., XOR of bit groups)" as an
    alternative partial-tag function; folding mixes high-order tag bits
    into the partial tag, which reduces aliasing for strided patterns
    whose low tag bits repeat.

    Args:
        value: the full tag.
        bits: width of the partial tag; must be positive.
        width: number of significant bits in ``value`` to fold over.
    """
    if bits <= 0:
        raise ValueError(f"partial tag width must be positive, got {bits}")
    folded = 0
    remaining = value & mask(width)
    while remaining:
        folded ^= remaining & mask(bits)
        remaining >>= bits
    return folded
