"""Deterministic random-number generation.

Every stochastic element of the simulator (the Random replacement policy,
the arbitrary-victim fallback of partial-tag adaptivity, workload
generators) draws from a :class:`DeterministicRNG` created from an explicit
seed, so that identical runs are bit-identical. Property-based tests and
the experiment harness rely on this reproducibility.
"""

from __future__ import annotations

import math
import random


class DeterministicRNG:
    """A seeded RNG with a tiny, explicit surface.

    Wraps :class:`random.Random` rather than numpy so that consumers that
    draw one value at a time (per-eviction choices) stay cheap, and so the
    stream is stable across numpy versions.
    """

    def __init__(self, seed: int):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created from."""
        return self._seed

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive on both ends."""
        return self._random.randint(lo, hi)

    def choice_index(self, length: int) -> int:
        """Uniform index into a sequence of ``length`` items."""
        if length <= 0:
            raise ValueError(f"cannot choose from {length} items")
        return self._random.randrange(length)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Exponential deviate with the given rate (mean ``1/rate``).

        The inter-arrival primitive of the open-loop load generators:
        computed by explicit inversion of ``random()`` rather than
        delegated to :meth:`random.Random.expovariate`, so the draw
        consumes exactly one uniform and the stream stays stable across
        Python versions.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return -math.log(1.0 - self._random.random()) / rate

    def betavariate(self, alpha: float, beta: float) -> float:
        """Beta(alpha, beta) deviate in [0, 1].

        Used for per-client rate skew in the open-loop load generators
        (icarus's beta-mixture client model).
        """
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"beta shape parameters must be positive, got "
                f"({alpha}, {beta})"
            )
        return self._random.betavariate(alpha, beta)

    def fork(self, salt: int) -> "DeterministicRNG":
        """Derive an independent child stream.

        Children forked with distinct salts produce independent streams,
        letting e.g. each cache set own its own RNG without the streams
        interleaving in a way that depends on access order.
        """
        return DeterministicRNG((self._seed * 1000003 + salt) & 0xFFFFFFFFFFFF)

    def state(self) -> dict:
        """JSON-serializable snapshot of the stream position.

        Reseeding with the original seed only replays a stream from the
        *beginning*; resuming a checkpointed run mid-stream needs the
        generator's exact position, or every subsequent draw — and thus
        every Random-policy victim — silently diverges from the
        uninterrupted run. The Mersenne-Twister state tuple is converted
        to plain lists so it survives a JSON round-trip.
        """
        version, internal, gauss = self._random.getstate()
        return {
            "seed": self._seed,
            "version": version,
            "internal": list(internal),
            "gauss": gauss,
        }

    def restore(self, state: dict) -> None:
        """Resume the stream from a :meth:`state` snapshot.

        After restoring, draws continue bit-identically with the run
        that produced the snapshot — JSON round-trips included.
        """
        self._seed = state["seed"]
        self._random.setstate(
            (state["version"], tuple(state["internal"]), state["gauss"])
        )
