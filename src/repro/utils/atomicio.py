"""Atomic file writes (tmp file + ``os.replace``).

Every artifact the harness persists — traces, checkpoints, reports —
goes through these helpers so that an interrupt (Ctrl-C, OOM kill,
crash) can never leave a half-written file behind: readers either see
the previous complete version or the new complete version, never a
truncated hybrid. ``os.replace`` is atomic on POSIX and Windows when
source and destination live on the same filesystem, which the helpers
guarantee by creating the temporary file in the destination directory.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator, Union

Pathish = Union[str, os.PathLike]


@contextlib.contextmanager
def atomic_output(path: Pathish, mode: str = "wb") -> Iterator[IO]:
    """Open a temporary file that atomically replaces ``path`` on success.

    Yields a writable handle (binary by default, ``mode="w"`` for text).
    On clean exit the data is flushed, fsynced and moved over ``path``
    with ``os.replace``; on any exception the temporary file is removed
    and ``path`` is left untouched.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def atomic_write_bytes(path: Pathish, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    with atomic_output(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: Pathish, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path``."""
    atomic_write_bytes(path, text.encode(encoding))
