"""Atomic file writes (tmp file + ``os.replace``).

Every artifact the harness persists — traces, checkpoints, reports —
goes through these helpers so that an interrupt (Ctrl-C, OOM kill,
crash) can never leave a half-written file behind: readers either see
the previous complete version or the new complete version, never a
truncated hybrid. ``os.replace`` is atomic on POSIX and Windows when
source and destination live on the same filesystem, which the helpers
guarantee by creating the temporary file in the destination directory.
"""

from __future__ import annotations

import contextlib
import errno
import os
import tempfile
import warnings
from typing import IO, Iterator, Union

Pathish = Union[str, os.PathLike]

# Whether this process has already warned that the filesystem refuses
# directory fsync; the condition is filesystem-wide, so one warning per
# process is signal and every further one is noise.
_warned_dir_fsync = False


@contextlib.contextmanager
def atomic_output(path: Pathish, mode: str = "wb") -> Iterator[IO]:
    """Open a temporary file that atomically replaces ``path`` on success.

    Yields a writable handle (binary by default, ``mode="w"`` for text).
    On clean exit the data is flushed, fsynced and moved over ``path``
    with ``os.replace``, then the parent directory is fsynced so the
    rename itself is durable — without that, a power loss after the
    replace can roll the *directory entry* back to the old file even
    though the new data blocks were synced. On any exception the
    temporary file is removed and ``path`` is left untouched.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        _fsync_directory(directory)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _fsync_directory(directory: str) -> None:
    """Flush a directory's entries to disk (durable rename).

    Best-effort: some platforms/filesystems refuse ``open`` or
    ``fsync`` on directories — Windows rejects the open, and several
    filesystems (certain network and overlay mounts) accept the open
    but fail the fsync with ``EINVAL`` or ``ENOTSUP``. Those writers
    keep the pre-existing atomicity guarantee, just not rename
    durability; the degradation is announced once per process via a
    :class:`RuntimeWarning` rather than by raising, so a harness run
    on such a filesystem completes instead of dying on its first
    artifact.
    """
    global _warned_dir_fsync
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError as error:
        if (not _warned_dir_fsync
                and error.errno in (errno.EINVAL, errno.ENOTSUP)):
            _warned_dir_fsync = True
            warnings.warn(
                f"filesystem rejects directory fsync ({error}); atomic "
                "writes stay atomic but renames are not crash-durable",
                RuntimeWarning,
                stacklevel=3,
            )
    finally:
        os.close(dir_fd)


def atomic_write_bytes(path: Pathish, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    with atomic_output(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: Pathish, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path``."""
    atomic_write_bytes(path, text.encode(encoding))
