"""Shared low-level utilities: bit manipulation and deterministic RNG."""

from repro.utils.bitops import (
    is_power_of_two,
    ilog2,
    mask,
    low_bits,
    xor_fold,
)
from repro.utils.rng import DeterministicRNG

__all__ = [
    "is_power_of_two",
    "ilog2",
    "mask",
    "low_bits",
    "xor_fold",
    "DeterministicRNG",
]
