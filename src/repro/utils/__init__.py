"""Shared low-level utilities: bit manipulation, deterministic RNG and
atomic file writes."""

from repro.utils.atomicio import (
    atomic_output,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.utils.bitops import (
    is_power_of_two,
    ilog2,
    mask,
    low_bits,
    xor_fold,
)
from repro.utils.rng import DeterministicRNG

__all__ = [
    "atomic_output",
    "atomic_write_bytes",
    "atomic_write_text",
    "is_power_of_two",
    "ilog2",
    "mask",
    "low_bits",
    "xor_fold",
    "DeterministicRNG",
]
