"""Name-based policy construction.

Experiments, benchmarks and the CLI refer to policies by name
(``"lru"``, ``"lfu"``, ...). The registry maps those names to factories
so a policy combination like the paper's LRU/LFU adaptive cache can be
specified as plain strings.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Tuple

from repro.policies.base import ReplacementPolicy
from repro.policies.bip import BIPPolicy
from repro.policies.ehc import EHCPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mru import MRUPolicy
from repro.policies.rand import RandomPolicy
from repro.policies.srrip import SRRIPPolicy

PolicyFactory = Callable[..., ReplacementPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register ``factory`` under ``name``; overwriting is an error."""
    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[name] = factory


def available_policies() -> List[str]:
    """Sorted names of all registered policies."""
    return sorted(_REGISTRY)


def policy_summaries() -> List[Tuple[str, str, str]]:
    """``(name, factory, summary)`` for every registered policy.

    The summary is the first line of the factory's docstring — enough
    for the ``repro-experiments policies`` listing without exposing the
    registry's internals.
    """
    rows = []
    for name in available_policies():
        factory = _REGISTRY[name]
        doc = inspect.getdoc(factory) or ""
        summary = doc.splitlines()[0] if doc else ""
        rows.append((name, factory.__name__, summary))
    return rows


def make_policy(name: str, num_sets: int, ways: int, **kwargs) -> ReplacementPolicy:
    """Instantiate the policy registered under ``name``.

    Extra keyword arguments are forwarded to the policy constructor
    (e.g. ``counter_bits`` for LFU, ``seed`` for Random).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_policies())
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return factory(num_sets, ways, **kwargs)


register_policy("lru", LRUPolicy)
register_policy("lfu", LFUPolicy)
register_policy("fifo", FIFOPolicy)
register_policy("mru", MRUPolicy)
register_policy("random", RandomPolicy)
register_policy("srrip", SRRIPPolicy)
register_policy("bip", BIPPolicy)
register_policy("ehc", EHCPolicy)
