"""Replacement policies.

Each policy is a per-set state machine behind the
:class:`~repro.policies.base.ReplacementPolicy` interface, so the identical
policy code drives both real caches and the shadow (parallel) tag arrays of
the adaptive scheme.
"""

from repro.policies.base import ReplacementPolicy, SetView
from repro.policies.bip import BIPPolicy
from repro.policies.ehc import EHCPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.mru import MRUPolicy
from repro.policies.rand import RandomPolicy
from repro.policies.srrip import SRRIPPolicy
from repro.policies.belady import belady_misses
from repro.policies.registry import (
    available_policies,
    make_policy,
    policy_summaries,
    register_policy,
)

__all__ = [
    "ReplacementPolicy",
    "SetView",
    "BIPPolicy",
    "EHCPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "belady_misses",
    "available_policies",
    "make_policy",
    "policy_summaries",
    "register_policy",
]
