"""Least-Recently-Used replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView


class LRUPolicy(ReplacementPolicy):
    """Classic LRU: evict the valid block touched longest ago.

    Recency is tracked with a monotonically increasing per-cache stamp;
    both hits and fills refresh a block's stamp. Victim selection scans
    the (small) set for the minimum stamp, which matches how hardware
    recency state is consulted and keeps hits O(1).
    """

    name = "lru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._clock = 0
        self._stamp = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._touch(set_index, way)

    def victim(self, set_index: int, set_view: SetView) -> int:
        stamps = self._stamp[set_index]
        return min(set_view.valid_ways(), key=stamps.__getitem__)

    def recency_order(self, set_index: int, set_view: SetView) -> list:
        """Ways of the set ordered least- to most-recently used.

        Exposed for the adaptive policy's "keep a recency order" shortcut
        (Section 3.3) and for tests of the LRU stack property.
        """
        stamps = self._stamp[set_index]
        return sorted(set_view.valid_ways(), key=stamps.__getitem__)
