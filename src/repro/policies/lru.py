"""Least-Recently-Used replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView


class LRUPolicy(ReplacementPolicy):
    """Classic LRU: evict the valid block touched longest ago.

    Recency is an intrusive doubly-linked list per set, threaded through
    way indices with a sentinel node: hits and fills move a way to the
    MRU end in O(1), and the victim of a full set is simply the list
    head — no per-eviction scan over stamps. The order produced is
    identical to the textbook monotonic-stamp formulation (ways sorted
    by last-touch time), which is what the differential oracle's LRU
    spec checks decision-for-decision.
    """

    name = "lru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        # Per set: next/prev way indices with sentinel index ``ways``.
        # prev == -1 marks a way not currently linked (never filled, or
        # invalidated). An empty list has the sentinel pointing at
        # itself.
        self._nxt = [[0] * (ways + 1) for _ in range(num_sets)]
        self._prv = [[0] * (ways + 1) for _ in range(num_sets)]
        for nxt, prv in zip(self._nxt, self._prv):
            nxt[ways] = ways
            prv[ways] = ways
            for way in range(ways):
                prv[way] = -1

    def _touch(self, set_index: int, way: int) -> None:
        """Move ``way`` to the MRU (tail) end, linking it if needed."""
        nxt = self._nxt[set_index]
        prv = self._prv[set_index]
        sentinel = self.ways
        before = prv[way]
        if before != -1:
            after = nxt[way]
            nxt[before] = after
            prv[after] = before
        tail = prv[sentinel]
        nxt[tail] = way
        prv[way] = tail
        nxt[way] = sentinel
        prv[sentinel] = way

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._touch(set_index, way)

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Unlink an invalidated way so it cannot surface as a victim."""
        self._check_slot(set_index, way)
        prv = self._prv[set_index]
        before = prv[way]
        if before == -1:
            return
        nxt = self._nxt[set_index]
        after = nxt[way]
        nxt[before] = after
        prv[after] = before
        prv[way] = -1

    def victim(self, set_index: int, set_view: SetView) -> int:
        nxt = self._nxt[set_index]
        head = nxt[self.ways]
        if set_view.valid_count() == self.ways:
            # Full set (the cache's guarantee): the LRU-most way.
            return head
        # Restricted view (e.g. a shard protecting the entry just
        # written): oldest linked way the view still exposes.
        allowed = set(set_view.valid_ways())
        way = head
        sentinel = self.ways
        while way != sentinel:
            if way in allowed:
                return way
            way = nxt[way]
        raise ValueError("victim() called on a view with no valid ways")

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the per-set recency lists."""
        return {
            "nxt": [list(row) for row in self._nxt],
            "prv": [list(row) for row in self._prv],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._nxt = [list(map(int, row)) for row in state["nxt"]]
        self._prv = [list(map(int, row)) for row in state["prv"]]

    def recency_order(self, set_index: int, set_view: SetView) -> list:
        """Ways of the set ordered least- to most-recently used.

        Exposed for the adaptive policy's "keep a recency order" shortcut
        (Section 3.3) and for tests of the LRU stack property.
        """
        nxt = self._nxt[set_index]
        sentinel = self.ways
        allowed = set(set_view.valid_ways())
        order = []
        way = nxt[sentinel]
        while way != sentinel:
            if way in allowed:
                order.append(way)
            way = nxt[way]
        return order
