"""Random replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView
from repro.utils.rng import DeterministicRNG


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random valid block.

    Draws from a :class:`DeterministicRNG` so simulations are repeatable;
    the seed is part of the policy's identity.
    """

    name = "random"

    def __init__(self, num_sets: int, ways: int, seed: int = 0):
        super().__init__(num_sets, ways)
        self._rng = DeterministicRNG(seed)

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)

    def victim(self, set_index: int, set_view: SetView) -> int:
        candidates = set_view.valid_ways()
        return candidates[self._rng.choice_index(len(candidates))]

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy's RNG position.

        Victim choice is the policy's *only* state, and it advances one
        RNG draw per eviction — so checkpoint/resume must capture the
        stream position, not just the seed, for replayed victims to stay
        bit-identical with the uninterrupted run.
        """
        return {"rng": self._rng.state()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._rng.restore(state["rng"])
