"""Expected-Hit-Count replacement (EHC).

From the Belady-approximation line of work in PAPERS.md ("EHC:
expected-hit-count" — Vakil-Ghahani et al., *Cache Replacement Based on
Reuse-Distance Prediction*, and its expected-hit-count reformulation):
Belady evicts the block with the most distant reuse; EHC approximates
that with a learned per-block *expected hit count*. Each residency, the
policy counts the hits a block receives; when the block's lifetime ends
it folds that count into an exponential moving average keyed by tag
(``new = (old + observed) / 2``; the first completed lifetime seeds the
average directly). The victim is the block with the fewest *expected
remaining* hits — its tag's average minus the hits it has already
collected this residency — breaking ties in favour of the oldest fill,
like LFU. Blocks with no completed lifetime yet are granted an
optimistic expectation of one hit, so brand-new data gets a chance to
prove itself without outranking established high-reuse blocks.

The averages live in a per-set table keyed by tag and persist across
residencies — that memory of past lifetimes is the whole mechanism, and
also why scans (blocks whose lifetimes end with zero hits) are evicted
quickly on their second appearance. The table is unbounded, as in the
reference spec; at reproduction scale the per-set tag universe is
small. Halving uses exact binary-float arithmetic, so the executable
spec (:class:`repro.oracle.spec.SpecEHC`) reproduces the values
bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.policies.base import ReplacementPolicy, SetView

#: Expected hits granted to a tag with no completed lifetime yet.
NEW_TAG_EXPECTATION = 1.0


class EHCPolicy(ReplacementPolicy):
    """Expected-hit-count replacement (Belady approximation family)."""

    name = "ehc"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._hits = [[0] * ways for _ in range(num_sets)]
        self._tag: List[List[Optional[int]]] = [
            [None] * ways for _ in range(num_sets)
        ]
        self._ema: List[Dict[int, float]] = [dict() for _ in range(num_sets)]
        self._clock = 0
        self._fill_stamp = [[0] * ways for _ in range(num_sets)]

    def expected_hits(self, set_index: int, tag: int) -> float:
        """Learned expected hits per residency for ``tag``."""
        return self._ema[set_index].get(tag, NEW_TAG_EXPECTATION)

    def _finalize(self, set_index: int, way: int) -> None:
        """Fold the ending residency's hit count into the tag's EMA."""
        tag = self._tag[set_index][way]
        if tag is None:
            return
        observed = float(self._hits[set_index][way])
        ema = self._ema[set_index]
        previous = ema.get(tag)
        ema[tag] = observed if previous is None else (previous + observed) / 2
        self._tag[set_index][way] = None

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._hits[set_index][way] += 1

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        # A replacement fill ends the previous resident's lifetime.
        self._finalize(set_index, way)
        self._tag[set_index][way] = tag
        self._hits[set_index][way] = 0
        self._clock += 1
        self._fill_stamp[set_index][way] = self._clock

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._finalize(set_index, way)

    def victim(self, set_index: int, set_view: SetView) -> int:
        hits = self._hits[set_index]
        tags = self._tag[set_index]
        stamps = self._fill_stamp[set_index]
        ema = self._ema[set_index]
        get = ema.get
        if set_view.valid_count() == self.ways:
            # Full set: stamps are globally unique, so the tuple min
            # never falls through to the way index.
            best_way = 0
            best_key = None
            for way in range(self.ways):
                key = (get(tags[way], NEW_TAG_EXPECTATION) - hits[way],
                       stamps[way])
                if best_key is None or key < best_key:
                    best_key = key
                    best_way = way
            return best_way
        return min(
            set_view.valid_ways(),
            key=lambda way: (get(tags[way], NEW_TAG_EXPECTATION) - hits[way],
                             stamps[way]),
        )

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (EMA tables as [tag, value] pairs
        so integer tag keys survive a JSON round-trip)."""
        return {
            "hits": [list(row) for row in self._hits],
            "tag": [list(row) for row in self._tag],
            "ema": [sorted(table.items()) for table in self._ema],
            "clock": self._clock,
            "fill_stamp": [list(row) for row in self._fill_stamp],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._hits = [list(map(int, row)) for row in state["hits"]]
        self._tag = [
            [None if t is None else int(t) for t in row]
            for row in state["tag"]
        ]
        self._ema = [
            {int(tag): float(value) for tag, value in table}
            for table in state["ema"]
        ]
        self._clock = int(state["clock"])
        self._fill_stamp = [list(map(int, row)) for row in state["fill_stamp"]]
