"""Belady's optimal (OPT/MIN) offline replacement, for reference bounds.

OPT is not implementable in hardware (it needs future knowledge) and is
not part of the paper's design, but it gives the tests and benchmarks an
absolute floor: no online policy — including the adaptive one — can miss
less than OPT on the same trace and geometry.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence


def belady_misses(block_addresses: Sequence[int], num_sets: int, ways: int) -> int:
    """Count misses of Belady's OPT on a block-address trace.

    Args:
        block_addresses: sequence of block numbers (addresses already
            shifted right by the line-offset bits).
        num_sets: number of cache sets; the set index is
            ``block % num_sets`` as in a conventional cache.
        ways: associativity.

    Returns:
        Total number of misses (fills) across all sets.
    """
    if num_sets <= 0 or ways <= 0:
        raise ValueError("num_sets and ways must be positive")

    per_set = defaultdict(list)
    for block in block_addresses:
        per_set[block % num_sets].append(block)

    total_misses = 0
    for accesses in per_set.values():
        total_misses += _opt_misses_one_set(accesses, ways)
    return total_misses


def _opt_misses_one_set(accesses: Sequence[int], ways: int) -> int:
    """OPT miss count for a single fully-associative set of ``ways`` slots."""
    never = len(accesses) + 1
    # next_use[i] = index of the next access to the same block after i.
    next_use = [never] * len(accesses)
    last_seen = {}
    for i in range(len(accesses) - 1, -1, -1):
        block = accesses[i]
        next_use[i] = last_seen.get(block, never)
        last_seen[block] = i

    resident = {}  # block -> next use index
    misses = 0
    for i, block in enumerate(accesses):
        if block in resident:
            resident[block] = next_use[i]
            continue
        misses += 1
        if len(resident) >= ways:
            farthest = max(resident, key=resident.__getitem__)
            del resident[farthest]
        resident[block] = next_use[i]
    return misses
