"""Most-Recently-Used replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView


class MRUPolicy(ReplacementPolicy):
    """MRU: evict the valid block touched most recently.

    On its own MRU is usually a poor policy, but the paper pairs it with
    FIFO in an adaptive cache (Figure 8) because MRU is near-optimal for
    linear loops slightly larger than the cache: it keeps a stable prefix
    of the loop resident instead of thrashing the whole set.
    """

    name = "mru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._clock = 0
        self._stamp = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._touch(set_index, way)

    def victim(self, set_index: int, set_view: SetView) -> int:
        stamps = self._stamp[set_index]
        return max(set_view.valid_ways(), key=stamps.__getitem__)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the recency clock and stamps."""
        return {
            "clock": self._clock,
            "stamp": [list(row) for row in self._stamp],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._clock = int(state["clock"])
        self._stamp = [list(map(int, row)) for row in state["stamp"]]
