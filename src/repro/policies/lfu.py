"""Least-Frequently-Used replacement with saturating counters."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView
from repro.utils.bitops import mask


class LFUPolicy(ReplacementPolicy):
    """In-cache LFU with per-way saturating frequency counters.

    The paper's simulated configuration (Table 1) uses 5-bit LFU counters,
    so counters saturate at 31 by default. A newly filled block starts at
    frequency 1; every hit increments (saturating). The victim is the
    valid block with the lowest count, breaking ties in favour of the
    oldest fill — this makes LFU deterministic and keeps single-use scan
    blocks (count 1) flowing through one way while frequently reused data
    is retained, the behaviour the paper highlights for media workloads.
    """

    name = "lfu"

    def __init__(self, num_sets: int, ways: int, counter_bits: int = 5):
        super().__init__(num_sets, ways)
        if counter_bits <= 0:
            raise ValueError(
                f"counter_bits must be positive, got {counter_bits}"
            )
        self.counter_bits = counter_bits
        self._max_count = mask(counter_bits)
        self._count = [[0] * ways for _ in range(num_sets)]
        self._clock = 0
        self._fill_stamp = [[0] * ways for _ in range(num_sets)]

    def frequency(self, set_index: int, way: int) -> int:
        """Current saturating frequency count of (set_index, way)."""
        self._check_slot(set_index, way)
        return self._count[set_index][way]

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        counts = self._count[set_index]
        if counts[way] < self._max_count:
            counts[way] += 1

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._count[set_index][way] = 1
        self._clock += 1
        self._fill_stamp[set_index][way] = self._clock

    def victim(self, set_index: int, set_view: SetView) -> int:
        counts = self._count[set_index]
        stamps = self._fill_stamp[set_index]
        if set_view.valid_count() == self.ways:
            # Full set (the overwhelmingly common case — the cache only
            # asks for victims on full sets): tuple-compare in C. Fill
            # stamps are globally unique, so the comparison never falls
            # through to the way index and the result is identical to
            # the keyed min over (count, stamp).
            _, _, way = min(zip(counts, stamps, range(self.ways)))
            return way
        return min(
            set_view.valid_ways(),
            key=lambda way: (counts[way], stamps[way]),
        )

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of counters, clock and fill stamps."""
        return {
            "count": [list(row) for row in self._count],
            "clock": self._clock,
            "fill_stamp": [list(row) for row in self._fill_stamp],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._count = [list(map(int, row)) for row in state["count"]]
        self._clock = int(state["clock"])
        self._fill_stamp = [list(map(int, row)) for row in state["fill_stamp"]]
