"""First-In-First-Out replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView


class FIFOPolicy(ReplacementPolicy):
    """FIFO: evict the valid block that was *installed* longest ago.

    Fill order is an intrusive doubly-linked list per set (same scheme
    as :class:`~repro.policies.lru.LRUPolicy`), except that hits do not
    move a way — a block's position is fixed at fill time. The victim
    of a full set is the list head in O(1).
    """

    name = "fifo"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        # Sentinel index ``ways``; prev == -1 marks an unlinked way.
        self._nxt = [[0] * (ways + 1) for _ in range(num_sets)]
        self._prv = [[0] * (ways + 1) for _ in range(num_sets)]
        for nxt, prv in zip(self._nxt, self._prv):
            nxt[ways] = ways
            prv[ways] = ways
            for way in range(ways):
                prv[way] = -1

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        nxt = self._nxt[set_index]
        prv = self._prv[set_index]
        sentinel = self.ways
        before = prv[way]
        if before != -1:
            after = nxt[way]
            nxt[before] = after
            prv[after] = before
        tail = prv[sentinel]
        nxt[tail] = way
        prv[way] = tail
        nxt[way] = sentinel
        prv[sentinel] = way

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Unlink an invalidated way so it cannot surface as a victim."""
        self._check_slot(set_index, way)
        prv = self._prv[set_index]
        before = prv[way]
        if before == -1:
            return
        nxt = self._nxt[set_index]
        after = nxt[way]
        nxt[before] = after
        prv[after] = before
        prv[way] = -1

    def victim(self, set_index: int, set_view: SetView) -> int:
        nxt = self._nxt[set_index]
        head = nxt[self.ways]
        if set_view.valid_count() == self.ways:
            return head
        allowed = set(set_view.valid_ways())
        way = head
        sentinel = self.ways
        while way != sentinel:
            if way in allowed:
                return way
            way = nxt[way]
        raise ValueError("victim() called on a view with no valid ways")

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the per-set fill-order lists."""
        return {
            "nxt": [list(row) for row in self._nxt],
            "prv": [list(row) for row in self._prv],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._nxt = [list(map(int, row)) for row in state["nxt"]]
        self._prv = [list(map(int, row)) for row in state["prv"]]
