"""First-In-First-Out replacement."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView


class FIFOPolicy(ReplacementPolicy):
    """FIFO: evict the valid block that was *installed* longest ago.

    Identical bookkeeping to LRU except that hits do not refresh the
    stamp, so a block's priority is fixed at fill time.
    """

    name = "fifo"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._clock = 0
        self._fill_stamp = [[0] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._clock += 1
        self._fill_stamp[set_index][way] = self._clock

    def victim(self, set_index: int, set_view: SetView) -> int:
        stamps = self._fill_stamp[set_index]
        return min(set_view.valid_ways(), key=stamps.__getitem__)
