"""Bimodal Insertion Policy (BIP).

BIP (Qureshi et al., ISCA 2007) is the thrash-resistant component of
DIP, the set-dueling descendant of this paper's adaptivity idea: it
manages the cache like LRU but inserts new blocks at the *LRU* position
except with a small probability epsilon, so a loop larger than the
cache keeps a stable resident subset instead of thrashing. Combined
with plain LRU under a set-sampling selector (our
:class:`~repro.core.sbar.SbarPolicy`), this reproduces a DIP-like
design inside the paper's framework — see
``repro.experiments.ext_dip``.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView
from repro.utils.rng import DeterministicRNG


class BIPPolicy(ReplacementPolicy):
    """LRU with bimodal (mostly-LRU-position) insertion.

    Args:
        epsilon: probability that a fill is promoted to MRU position;
            the ISCA'07 paper uses 1/32.
        seed: RNG seed for the bimodal throttle.
    """

    name = "bip"

    def __init__(self, num_sets: int, ways: int, epsilon: float = 1 / 32,
                 seed: int = 0):
        super().__init__(num_sets, ways)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = DeterministicRNG(seed)
        self._clock = 0
        self._stamp = [[0] * ways for _ in range(num_sets)]
        # Fills at LRU position get stamps *below* every real access; a
        # separate decreasing counter orders cold blocks so the newest
        # LRU-inserted block is the next victim, matching
        # insert-at-LRU-position semantics.
        self._cold_clock = 0

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        if self._rng.random() < self.epsilon:
            self._clock += 1
            self._stamp[set_index][way] = self._clock
        else:
            self._cold_clock -= 1
            self._stamp[set_index][way] = self._cold_clock

    def victim(self, set_index: int, set_view: SetView) -> int:
        stamps = self._stamp[set_index]
        return min(set_view.valid_ways(), key=stamps.__getitem__)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot: stamps, both clocks and the RNG
        stream position (the bimodal throttle draws once per fill)."""
        return {
            "clock": self._clock,
            "cold_clock": self._cold_clock,
            "stamp": [list(row) for row in self._stamp],
            "rng": self._rng.state(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._clock = int(state["clock"])
        self._cold_clock = int(state["cold_clock"])
        self._stamp = [list(map(int, row)) for row in state["stamp"]]
        self._rng.restore(state["rng"])
