"""The replacement-policy interface.

A policy manages metadata for every (set, way) slot of one cache and is
driven by the cache through a small set of events:

* :meth:`ReplacementPolicy.observe` — every access, before lookup. Simple
  policies ignore it; the adaptive policy uses it to update its shadow tag
  arrays and miss-history buffers (off the critical path, per Section 3.3).
* :meth:`ReplacementPolicy.on_hit` — the access hit at (set, way).
* :meth:`ReplacementPolicy.victim` — the set is full; choose a way to evict.
* :meth:`ReplacementPolicy.on_fill` — a block was installed at (set, way).
* :meth:`ReplacementPolicy.on_invalidate` — the block was removed without
  replacement (e.g. coherence invalidation).

The cache guarantees that ``victim`` is only called on a full set and that
every miss is followed by exactly one ``on_fill``.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence


class SetView(abc.ABC):
    """Read-only view of one cache set, passed to ``victim``.

    The adaptive policy needs to compare the real set's contents against
    its shadow tag arrays ("evict a block that is not in B's cache");
    this view is how it sees them. Conventional policies never look at it.
    """

    @property
    @abc.abstractmethod
    def ways(self) -> int:
        """Associativity of the set."""

    @abc.abstractmethod
    def tag_at(self, way: int) -> Optional[int]:
        """Tag stored at ``way``, or None if the way is invalid."""

    @abc.abstractmethod
    def valid_ways(self) -> Sequence[int]:
        """Indices of ways currently holding valid blocks."""

    def valid_count(self) -> int:
        """Number of valid ways.

        Hot-path helper: policies keeping an intrusive recency/fill
        order (LRU, FIFO) use this to recognise the common full-set
        case in O(1) and return their list head directly instead of
        materialising ``valid_ways``. Views with a cheaper census
        override it; the default just counts ``valid_ways``.
        """
        return len(self.valid_ways())


class ReplacementPolicy(abc.ABC):
    """Base class for replacement policies.

    Subclasses set :attr:`name` (used by the registry and in reports) and
    implement the event methods. State must be reconstructible from the
    event stream alone, so a policy can equally manage a real data cache
    or a tags-only shadow array.
    """

    name: str = "abstract"

    def __init__(self, num_sets: int, ways: int):
        if num_sets <= 0:
            raise ValueError(f"num_sets must be positive, got {num_sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways

    def observe(self, set_index: int, tag: int, is_write: bool) -> None:
        """Called once per access before lookup. Default: no-op."""

    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int) -> None:
        """The current access hit the block at (set_index, way)."""

    @abc.abstractmethod
    def victim(self, set_index: int, set_view: SetView) -> int:
        """Choose the way to evict from a full set."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        """A new block with ``tag`` was installed at (set_index, way)."""

    def on_invalidate(self, set_index: int, way: int) -> None:
        """Block removed without replacement. Default: no-op.

        Policies whose victim choice iterates valid ways only (all of the
        built-ins) need no cleanup; policies keeping ordered structures
        override this.
        """

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of all replacement state.

        Together with :meth:`load_state_dict` this is the contract that
        makes checkpoint/resume and the online engine's crash recovery
        *decision-identical*: a policy restored from a snapshot must
        pick byte-identical victims to the instance that produced it.
        Every built-in policy implements the pair; custom policies that
        want to ride through :mod:`repro.online.persistence` snapshots
        must too.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not implement state_dict(); "
            "snapshot/restore requires it"
        )

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        raise NotImplementedError(
            f"policy {self.name!r} does not implement load_state_dict(); "
            "snapshot/restore requires it"
        )

    def _check_slot(self, set_index: int, way: int) -> None:
        """Validate a (set, way) pair; shared guard for subclasses."""
        if not 0 <= set_index < self.num_sets:
            raise IndexError(
                f"set index {set_index} out of range [0, {self.num_sets})"
            )
        if not 0 <= way < self.ways:
            raise IndexError(f"way {way} out of range [0, {self.ways})")
