"""Static Re-Reference Interval Prediction (SRRIP).

SRRIP post-dates the paper (Jaleel et al., ISCA 2010); it is included as
an extension component to demonstrate the paper's claim that *any*
replacement algorithm can serve as a component of the adaptive scheme
(Section 5: "any advanced caching algorithm can be used as a component
algorithm in an adaptive cache implementation").
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, SetView
from repro.utils.bitops import mask


class SRRIPPolicy(ReplacementPolicy):
    """SRRIP with M-bit re-reference prediction values (RRPV).

    Fills insert with a "long" re-reference prediction (max-1); hits
    promote to "near-immediate" (0). The victim is any block with the
    maximal RRPV; if none exists, all RRPVs age until one saturates.
    """

    name = "srrip"

    def __init__(self, num_sets: int, ways: int, rrpv_bits: int = 2):
        super().__init__(num_sets, ways)
        if rrpv_bits <= 0:
            raise ValueError(f"rrpv_bits must be positive, got {rrpv_bits}")
        self.rrpv_bits = rrpv_bits
        self._max_rrpv = mask(rrpv_bits)
        self._rrpv = [[self._max_rrpv] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._rrpv[set_index][way] = self._max_rrpv - 1

    def victim(self, set_index: int, set_view: SetView) -> int:
        rrpvs = self._rrpv[set_index]
        candidates = set_view.valid_ways()
        while True:
            for way in candidates:
                if rrpvs[way] == self._max_rrpv:
                    return way
            for way in candidates:
                rrpvs[way] += 1

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the per-way RRPV counters."""
        return {"rrpv": [list(row) for row in self._rrpv]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._rrpv = [list(map(int, row)) for row in state["rrpv"]]
