"""Empirical checks of the theoretical miss bound (Appendix).

The paper proves that the counter-based adaptive policy suffers at most
**2x** the misses of the better component policy, per set, plus an
additive constant that covers warm-up. These helpers run the adaptive
cache and its components on an arbitrary block trace and report the
observed per-set factors, so property-based tests can hammer the bound
with random and adversarial traces.

With full tags, the component shadow arrays inside the adaptive policy
*are* exact simulations of the component caches, so their per-set miss
counts are the comparison baseline — no separate runs needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.core.history import CounterHistory
from repro.core.multi import make_adaptive


@dataclass(frozen=True)
class BoundReport:
    """Result of one bound check.

    Attributes:
        adaptive_misses: per-set miss counts of the adaptive cache.
        component_misses: per-component, per-set miss counts.
        slack: the additive constant allowed per set.
        factor: the multiplicative bound being checked (2.0 per the
            Appendix for the counter-based selector).
    """

    adaptive_misses: List[int]
    component_misses: List[List[int]]
    slack: int
    factor: float

    def best_component_misses(self, set_index: int) -> int:
        """Fewest misses any component suffered on ``set_index``."""
        return min(c[set_index] for c in self.component_misses)

    def violations(self) -> List[int]:
        """Sets where adaptive misses exceed factor*best + slack."""
        return [
            s
            for s, a in enumerate(self.adaptive_misses)
            if a > self.factor * self.best_component_misses(s) + self.slack
        ]

    def holds(self) -> bool:
        """True iff the bound holds on every set."""
        return not self.violations()

    def worst_ratio(self) -> float:
        """max over sets of adaptive/(best + slack); <= factor iff holds."""
        worst = 0.0
        for s, a in enumerate(self.adaptive_misses):
            denom = self.best_component_misses(s) + self.slack
            if denom > 0:
                worst = max(worst, a / denom)
        return worst


def check_miss_bound(
    block_addresses: Sequence[int],
    config: CacheConfig,
    component_names: Sequence[str] = ("lru", "lfu"),
    factor: float = 2.0,
    slack: int = None,
) -> BoundReport:
    """Run the counter-history adaptive cache and report the bound.

    Args:
        block_addresses: line-granular addresses (no offset bits).
        config: cache geometry.
        component_names: component policies to adapt over.
        factor: multiplicative bound (Appendix: 2 for counters).
        slack: additive constant per set; defaults to 2*ways, covering
            the warm-up misses the asymptotic statement ignores.
    """
    if slack is None:
        slack = 2 * config.ways
    policy = make_adaptive(
        config.num_sets,
        config.ways,
        component_names,
        history_factory=lambda n: CounterHistory(n),
    )
    cache = SetAssociativeCache(config, policy)
    for block in block_addresses:
        cache.access(block << config.offset_bits)
    return BoundReport(
        adaptive_misses=list(cache.stats.per_set_misses),
        component_misses=[list(s.per_set_misses) for s in policy.shadows],
        slack=slack,
        factor=factor,
    )


def adversarial_trace(
    ways: int,
    phase_length: int,
    phases: int,
    target_set: int = 0,
    num_sets: int = 1,
) -> List[int]:
    """A trace that alternates LRU-hostile and LFU-hostile phases.

    Odd phases cycle over ``ways + 1`` distinct blocks (a loop slightly
    larger than the set — LRU misses on every access, while LFU settles
    on a resident subset). Even phases stream fresh single-use blocks
    interleaved with one hot block (LFU's counters protect stale blocks,
    LRU adapts immediately). An adaptive policy must switch components
    every phase to stay within its bound.

    Returns block addresses all mapping to ``target_set``.
    """
    if ways <= 0 or phase_length <= 0 or phases <= 0:
        raise ValueError("ways, phase_length and phases must be positive")
    trace: List[int] = []
    fresh = 1000  # block ids disjoint from the loop blocks
    for phase in range(phases):
        if phase % 2 == 0:
            loop = [i for i in range(ways + 1)]
            for i in range(phase_length):
                trace.append(loop[i % len(loop)])
        else:
            hot = ways + 2
            for i in range(phase_length):
                if i % 2 == 0:
                    trace.append(hot)
                else:
                    fresh += 1
                    trace.append(fresh)
    # Map every block id onto the target set of an num_sets-set cache.
    return [block * num_sets + target_set for block in trace]
