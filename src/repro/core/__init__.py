"""The paper's contribution: adaptive cache replacement.

* :class:`PartialTagScheme` — Section 3.1's partial tags.
* :class:`BitVectorHistory` / :class:`CounterHistory` /
  :class:`SaturatingCounterHistory` — Section 2.2's miss history buffers.
* :class:`AdaptivePolicy` — Algorithm 1, generalized to N components.
* :func:`make_adaptive` / :func:`five_policy_adaptive` — convenience
  constructors (Section 4.4's design-space exploration).
* :class:`SbarPolicy` — the set-sampling variant of Section 4.7.
* :class:`PolicySelector` / :class:`GlobalSelector` — the adaptation
  decisions themselves, decoupled from set indexing so the online
  key-value engine (:mod:`repro.online`) can reuse them per shard.
* :mod:`repro.core.theory` — empirical checks of the Appendix's 2x bound.
"""

from repro.core.partial import PartialTagScheme, full_tags
from repro.core.history import (
    MissHistory,
    BitVectorHistory,
    CounterHistory,
    SaturatingCounterHistory,
    make_history_factory,
)
from repro.core.adaptive import AdaptivePolicy
from repro.core.multi import make_adaptive, five_policy_adaptive
from repro.core.sbar import SbarPolicy
from repro.core.selector import GlobalSelector, PolicySelector
from repro.core.theory import BoundReport, check_miss_bound, adversarial_trace

__all__ = [
    "PartialTagScheme",
    "full_tags",
    "MissHistory",
    "BitVectorHistory",
    "CounterHistory",
    "SaturatingCounterHistory",
    "make_history_factory",
    "AdaptivePolicy",
    "make_adaptive",
    "five_policy_adaptive",
    "SbarPolicy",
    "PolicySelector",
    "GlobalSelector",
    "BoundReport",
    "check_miss_bound",
    "adversarial_trace",
]
