"""Per-set miss history buffers (Section 2.2).

The history buffer records the recent relative performance of the
component policies for one cache set. The paper discusses three
realizations, all implemented here:

* :class:`CounterHistory` — integer counts of all misses "since the
  beginning of time". Easiest to reason about; the Appendix proves the
  2x bound for this variant.
* :class:`SaturatingCounterHistory` — bounded-width approximation.
* :class:`BitVectorHistory` — the paper's implementation choice: an
  m-bit vector of the last m *decisive* misses (misses suffered by some
  but not all components), giving quick adaptation to recent behaviour.
  m defaults to the associativity.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Sequence

from repro.utils.bitops import mask


class MissHistory(abc.ABC):
    """Interface shared by all history buffer variants."""

    def __init__(self, num_components: int):
        if num_components < 2:
            raise ValueError(
                f"history needs at least 2 components, got {num_components}"
            )
        self.num_components = num_components

    def record(self, missed: Sequence[bool]) -> bool:
        """Record the component miss outcomes of one access.

        Only *decisive* events — where at least one component missed and
        at least one hit — carry information about which policy is
        better, so ties (all hit / all missed) are not recorded, exactly
        as the paper specifies for its bit-vector ("if both component
        policies would have missed, then there is no need to record").

        Returns:
            True if the event was decisive and recorded.
        """
        if len(missed) != self.num_components:
            raise ValueError(
                f"expected {self.num_components} outcomes, got {len(missed)}"
            )
        decisive = any(missed) and not all(missed)
        if decisive:
            self._record_decisive(missed)
        return decisive

    @abc.abstractmethod
    def _record_decisive(self, missed: Sequence[bool]) -> None:
        """Store one decisive miss event."""

    @abc.abstractmethod
    def misses(self, component: int) -> int:
        """Recorded miss score of ``component``."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Forget every recorded event (fault-injection hook).

        Models a transient fault wiping the buffer. The history is hint
        state only: a cleared buffer merely resets the selector toward
        the first component, it cannot make the cache return wrong data.
        """

    def scramble(self, rng, events: int = 4) -> None:
        """Replace the recorded state with random decisive events.

        Models a multi-bit upset in the buffer's SRAM. The corruption is
        expressed through :meth:`record` so every variant's internal
        invariants (window/count agreement) hold even for faulted state.

        Args:
            rng: a :class:`~repro.utils.rng.DeterministicRNG`.
            events: number of random decisive events to record.
        """
        self.clear()
        for _ in range(events):
            loser = rng.choice_index(self.num_components)
            self.record([i == loser for i in range(self.num_components)])

    def best_component(self) -> int:
        """Component with the fewest recorded misses; ties favour the
        lower index (the paper's example imitates A on equal counts)."""
        scores = [self.misses(i) for i in range(self.num_components)]
        return scores.index(min(scores))

    def saturated(self) -> bool:
        """Whether the recorded history is pegged: so one-sided that a
        further decisive event blaming the same loser cannot change any
        score or the selected component.

        Only the bit-vector variant can make that promise (a full,
        unanimous window shifts into itself); unbounded and saturating
        counters keep accumulating, so the base answer is False. The
        columnar kernel's saturation-skip mode elides history updates
        exactly when this holds (see docs/performance.md).
        """
        return False

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the recorded events.

        Part of the crash-recovery contract (see
        :meth:`repro.policies.base.ReplacementPolicy.state_dict`): a
        restored history must score components identically to the one
        that produced the snapshot.
        """

    @abc.abstractmethod
    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""


class CounterHistory(MissHistory):
    """Unbounded integer miss counters (the provable variant)."""

    def __init__(self, num_components: int = 2):
        super().__init__(num_components)
        self._counts = [0] * num_components

    def _record_decisive(self, missed: Sequence[bool]) -> None:
        for i, m in enumerate(missed):
            if m:
                self._counts[i] += 1

    def misses(self, component: int) -> int:
        return self._counts[component]

    def best_component(self) -> int:
        """Component with the fewest recorded misses; ties favour the
        lower index. Direct-on-counts override of the generic scan (the
        adaptive policy asks on every real miss)."""
        counts = self._counts
        return counts.index(min(counts))

    def clear(self) -> None:
        self._counts = [0] * self.num_components

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the miss counters."""
        return {"counts": list(self._counts)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._counts = [int(c) for c in state["counts"]]


class SaturatingCounterHistory(MissHistory):
    """Fixed-width counters; on saturation all counters halve.

    Halving preserves the *relative* standing of the components while
    keeping the counters bounded, so the selector keeps adapting instead
    of freezing once a counter pegs.
    """

    def __init__(self, num_components: int = 2, bits: int = 8):
        super().__init__(num_components)
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self._max = mask(bits)
        self._counts = [0] * num_components

    def _record_decisive(self, missed: Sequence[bool]) -> None:
        for i, m in enumerate(missed):
            if m:
                self._counts[i] += 1
        if any(c > self._max for c in self._counts):
            self._counts = [c >> 1 for c in self._counts]

    def misses(self, component: int) -> int:
        return self._counts[component]

    def best_component(self) -> int:
        """Component with the fewest recorded misses; ties favour the
        lower index. Direct-on-counts override of the generic scan."""
        counts = self._counts
        return counts.index(min(counts))

    def clear(self) -> None:
        self._counts = [0] * self.num_components

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the saturating counters."""
        return {"counts": list(self._counts)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._counts = [int(c) for c in state["counts"]]


class BitVectorHistory(MissHistory):
    """Sliding window over the last m decisive misses (the paper's choice).

    Each recorded event remembers *which* components missed; the score of
    a component is how many of the last m decisive events it missed on.
    For two components this is exactly the paper's m-bit vector where
    each bit says whether the miss belonged to the first or the second
    policy.
    """

    def __init__(self, num_components: int = 2, window: int = 8):
        super().__init__(num_components)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._events = deque(maxlen=window)
        self._counts = [0] * num_components

    def _record_decisive(self, missed: Sequence[bool]) -> None:
        event = tuple(bool(m) for m in missed)
        if len(self._events) == self.window:
            oldest = self._events[0]
            for i, m in enumerate(oldest):
                if m:
                    self._counts[i] -= 1
        self._events.append(event)
        for i, m in enumerate(event):
            if m:
                self._counts[i] += 1

    def misses(self, component: int) -> int:
        return self._counts[component]

    def best_component(self) -> int:
        """Component with the fewest window misses; ties favour the
        lower index. Direct-on-counts override of the generic scan."""
        counts = self._counts
        return counts.index(min(counts))

    def saturated(self) -> bool:
        """True when the window is full and unanimous — every recorded
        event blames the same component. A further event blaming it
        again shifts the window into itself: counts, window contents and
        the best component are all provably unchanged."""
        return (
            len(self._events) == self.window
            and max(self._counts) == self.window
        )

    def clear(self) -> None:
        self._events.clear()
        self._counts = [0] * self.num_components

    def recorded_events(self) -> int:
        """Number of events currently in the window (testing aid)."""
        return len(self._events)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the event window.

        The derived counts are rebuilt on load rather than stored, so a
        snapshot can never carry a window/count disagreement.
        """
        return {"events": [list(event) for event in self._events]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self._events = deque(
            (tuple(bool(m) for m in event) for event in state["events"]),
            maxlen=self.window,
        )
        self._counts = [0] * self.num_components
        for event in self._events:
            for i, m in enumerate(event):
                if m:
                    self._counts[i] += 1


def make_history_factory(
    kind: str = "bitvector", **kwargs
) -> Callable[[int], MissHistory]:
    """Build a per-set history factory from a kind name.

    Args:
        kind: ``"bitvector"`` (default, paper's implementation),
            ``"counter"`` (theory variant) or ``"saturating"``.
        kwargs: forwarded to the history constructor (``window``,
            ``bits``, ...).

    Returns:
        A callable ``factory(num_components) -> MissHistory``; the
        adaptive policy calls it once per cache set.
    """
    kinds = {
        "bitvector": BitVectorHistory,
        "counter": CounterHistory,
        "saturating": SaturatingCounterHistory,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        known = ", ".join(sorted(kinds))
        raise ValueError(f"unknown history kind {kind!r}; known: {known}") from None

    def factory(num_components: int) -> MissHistory:
        return cls(num_components, **kwargs)

    return factory
