"""Convenience constructors for adaptive policies (Section 4.4).

The adaptive machinery is policy-agnostic; these helpers assemble the
configurations the paper evaluates — LRU/LFU (the headline result),
FIFO/MRU (Figure 8), and the five-policy combination of Section 4.4 —
from plain policy names.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cache.tag_array import identity_tag
from repro.core.adaptive import AdaptivePolicy
from repro.core.history import MissHistory
from repro.policies.registry import make_policy


def make_adaptive(
    num_sets: int,
    ways: int,
    component_names: Sequence[str] = ("lru", "lfu"),
    tag_transform: Callable[[int], int] = identity_tag,
    history_factory: Optional[Callable[[int], MissHistory]] = None,
    fallback: str = "lru",
    seed: int = 0,
    component_kwargs: Optional[dict] = None,
) -> AdaptivePolicy:
    """Build an adaptive policy from component policy names.

    Args:
        component_names: registry names, e.g. ``("lru", "lfu")``.
        component_kwargs: optional per-name constructor kwargs, e.g.
            ``{"lfu": {"counter_bits": 5}, "random": {"seed": 7}}``.
        (remaining args are forwarded to :class:`AdaptivePolicy`.)
    """
    component_kwargs = component_kwargs or {}
    components = [
        make_policy(name, num_sets, ways, **component_kwargs.get(name, {}))
        for name in component_names
    ]
    return AdaptivePolicy(
        num_sets,
        ways,
        components,
        tag_transform=tag_transform,
        history_factory=history_factory,
        fallback=fallback,
        seed=seed,
    )


def five_policy_adaptive(
    num_sets: int,
    ways: int,
    tag_transform: Callable[[int], int] = identity_tag,
    seed: int = 0,
) -> AdaptivePolicy:
    """The paper's generalized five-policy adaptive cache.

    Combines LRU, LFU, FIFO, MRU and Random (Section 4.4). The paper
    notes this is "perhaps not a realistic configuration" in hardware
    (five parallel tag arrays) but uses it to probe the achievable
    benefit; it turned out no better than LRU/LFU overall.
    """
    return make_adaptive(
        num_sets,
        ways,
        ("lru", "lfu", "fifo", "mru", "random"),
        tag_transform=tag_transform,
        seed=seed,
        component_kwargs={"random": {"seed": seed + 1}},
    )
