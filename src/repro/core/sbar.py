"""SBAR-like set-sampling adaptive replacement (Section 4.7).

Qureshi, Lynch, Mutlu and Patt's Sampling Based Adaptive Replacement
eliminates the duplicated tag structures for all but a few *leader* sets.
As the paper describes its SBAR-like variant:

* Policy-specific metadata (recency order, frequency counts) is kept at
  all times for the blocks actually in the cache, for *both* component
  policies — so either policy can take over the current contents.
* Leader sets behave like regular adaptive sets: they carry parallel tag
  arrays and a miss history, and their decisive misses additionally vote
  into a global saturating selector (a PSEL-style counter).
* Follower sets carry no extra structures; on a miss they evict whatever
  the globally selected policy's metadata says ("the LFU algorithm
  begins executing on the blocks that are currently in the cache").

This forfeits the theoretical guarantee — switching policies restarts
from the current contents instead of the imitated policy's contents —
but costs only ~0.16% extra SRAM (~0.09% with partial-tag leaders).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.tag_array import ShadowOutcome, TagArray, identity_tag
from repro.core.history import BitVectorHistory, MissHistory
from repro.core.selector import GlobalSelector
from repro.policies.base import ReplacementPolicy, SetView


def spread_leader_sets(num_sets: int, num_leaders: int) -> List[int]:
    """Evenly spaced leader set indices."""
    if not 0 < num_leaders <= num_sets:
        raise ValueError(
            f"num_leaders must be in (0, {num_sets}], got {num_leaders}"
        )
    stride = num_sets // num_leaders
    return [i * stride for i in range(num_leaders)]


class SbarPolicy(ReplacementPolicy):
    """Set-sampling adaptive replacement over two component policies.

    Args:
        num_sets: cache geometry.
        ways: cache associativity.
        resident_components: two policy instances sized to the *full*
            cache; they track metadata for the blocks actually resident
            and supply victims for follower sets.
        shadow_components: two policy instances sized to
            ``num_leaders`` sets; they manage the leaders' parallel tag
            arrays.
        num_leaders: number of leader sets (16 reproduces the paper's
            0.16% overhead figure).
        tag_transform: full or partial tags for the leader shadows.
        psel_bits: width of the global saturating selector.
    """

    name = "sbar"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        resident_components: List[ReplacementPolicy],
        shadow_components: List[ReplacementPolicy],
        num_leaders: int = 16,
        tag_transform: Callable[[int], int] = identity_tag,
        history_factory: Optional[Callable[[int], MissHistory]] = None,
        psel_bits: int = 10,
    ):
        super().__init__(num_sets, ways)
        if len(resident_components) != 2 or len(shadow_components) != 2:
            raise ValueError("SBAR adapts over exactly two components")
        for component in resident_components:
            if component.num_sets != num_sets or component.ways != ways:
                raise ValueError(
                    f"resident component {component.name!r} must span the "
                    f"full cache ({num_sets}x{ways})"
                )
        for component in shadow_components:
            if component.num_sets != num_leaders or component.ways != ways:
                raise ValueError(
                    f"shadow component {component.name!r} must span the "
                    f"leader sets ({num_leaders}x{ways})"
                )
        self.resident = list(resident_components)
        self.tag_transform = tag_transform
        self.name = "sbar(" + "+".join(c.name for c in self.resident) + ")"

        leaders = spread_leader_sets(num_sets, num_leaders)
        self._leader_slot: Dict[int, int] = {s: i for i, s in enumerate(leaders)}
        self.shadows = [
            TagArray(num_leaders, ways, component, tag_transform)
            for component in shadow_components
        ]
        if history_factory is None:
            def history_factory(n):
                return BitVectorHistory(n, window=ways)
        self.histories = [history_factory(2) for _ in range(num_leaders)]

        self.selector = GlobalSelector(psel_bits)

        self._last_outcomes: List[ShadowOutcome] = []
        self._last_set = -1
        self.leader_evictions = 0
        self.follower_evictions = 0
        self.fallback_evictions = 0
        # Recency stamps for the aliasing fallback in leader sets.
        self._clock = 0
        self._stamp = [[0] * ways for _ in range(num_sets)]
        # Armed by repro.faults.FaultInjector; None costs one pointer
        # comparison per access and nothing else.
        self.fault_injector = None

    @property
    def leader_sets(self) -> List[int]:
        """Indices of the leader sets."""
        return sorted(self._leader_slot)

    def selected_component(self) -> int:
        """Component the global selector currently favours."""
        return self.selector.selected()

    @property
    def selector_max(self) -> int:
        """Largest value the PSEL selector can hold."""
        return self.selector.max_value

    @property
    def _psel(self) -> int:
        """Current PSEL counter value (kept for tests/introspection)."""
        return self.selector.value

    def set_selector(self, value: int) -> None:
        """Clamp-write the PSEL counter (fault-injection hook).

        The selector is a pure performance hint: an arbitrary value only
        changes which component the follower sets imitate until real
        decisive misses re-train it, so corrupting it is always safe.
        """
        self.selector.set_value(value)

    # ------------------------------------------------------------------
    # ReplacementPolicy events
    # ------------------------------------------------------------------

    def observe(self, set_index: int, tag: int, is_write: bool) -> None:
        self._last_set = set_index
        slot = self._leader_slot.get(set_index)
        if slot is None:
            self._last_outcomes = []
        else:
            outcomes = [
                shadow.lookup_update(slot, tag, is_write)
                for shadow in self.shadows
            ]
            missed = [o.missed for o in outcomes]
            self.histories[slot].record(missed)
            # A decisive miss is evidence against the missing component.
            self.selector.vote(missed)
            self._last_outcomes = outcomes
        if self.fault_injector is not None:
            self.fault_injector.tick()

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        for component in self.resident:
            component.on_hit(set_index, way)
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        for component in self.resident:
            component.on_fill(set_index, way, tag)
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        for component in self.resident:
            component.on_invalidate(set_index, way)

    def victim(self, set_index: int, set_view: SetView) -> int:
        slot = self._leader_slot.get(set_index)
        if slot is None:
            self.follower_evictions += 1
            chosen = self.selected_component()
            return self.resident[chosen].victim(set_index, set_view)
        self.leader_evictions += 1
        return self._leader_victim(set_index, slot, set_view)

    # ------------------------------------------------------------------
    # Leader-set adaptive logic (Algorithm 1, scoped to the leaders)
    # ------------------------------------------------------------------

    def _leader_victim(self, set_index: int, slot: int, set_view: SetView) -> int:
        if set_index != self._last_set or not self._last_outcomes:
            raise RuntimeError(
                "victim() called without a preceding observe() for leader "
                f"set {set_index}"
            )
        chosen = self.histories[slot].best_component()
        outcome = self._last_outcomes[chosen]
        shadow = self.shadows[chosen]

        if outcome.missed and outcome.victim_tag is not None:
            for way in set_view.valid_ways():
                if self.tag_transform(set_view.tag_at(way)) == outcome.victim_tag:
                    return way
        for way in set_view.valid_ways():
            stored = self.tag_transform(set_view.tag_at(way))
            if not shadow.contains_stored(slot, stored):
                return way
        self.fallback_evictions += 1
        stamps = self._stamp[set_index]
        return min(set_view.valid_ways(), key=stamps.__getitem__)
