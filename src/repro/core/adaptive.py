"""The adaptive replacement policy (Sections 2.2-2.3, Algorithm 1).

:class:`AdaptivePolicy` is a :class:`~repro.policies.base.ReplacementPolicy`,
so it plugs into an unmodified :class:`~repro.cache.cache.SetAssociativeCache`
— mirroring the paper's hardware claim that adaptivity adds structures
*beside* the conventional cache (Figure 1) without touching its critical
path.

Per access (the ``observe`` hook, which the cache invokes before lookup):

1. Replay the reference into each component's parallel tag array,
   recording whether that component would have hit or missed and which
   block it evicted.
2. If the outcome was decisive (some but not all components missed),
   record it in the set's miss history buffer.

On a real miss the cache asks for a victim; Algorithm 1 runs:

1. Pick the component with the fewest recorded misses (ties go to the
   first component, as in the paper's worked example).
2. If that component itself missed and the block it just evicted is in
   the real cache, evict the same block.
3. Otherwise evict any real block *not* present in that component's tag
   array. With full tags such a block must exist whenever the contents
   differ; with partial tags aliasing can hide every candidate, in which
   case an arbitrary block is evicted (Section 3.1).

The policy generalizes transparently from two components to N — the
paper's five-policy experiment (Section 4.4) uses the same class.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cache.tag_array import ShadowOutcome, TagArray, identity_tag
from repro.core.history import BitVectorHistory, MissHistory
from repro.core.selector import PolicySelector
from repro.policies.base import ReplacementPolicy, SetView
from repro.utils.rng import DeterministicRNG


class AdaptivePolicy(ReplacementPolicy):
    """Adaptive replacement over N >= 2 component policies.

    Args:
        num_sets: cache geometry (must match the component policies).
        ways: cache associativity.
        components: component policy instances; each becomes the manager
            of one parallel tag array. Order matters: ties in the history
            favour earlier components, and reports use this order.
        tag_transform: full-tag identity or a
            :class:`~repro.core.partial.PartialTagScheme`.
        history_factory: per-set miss history constructor; defaults to
            the paper's m-bit vector with m = ``ways``.
        fallback: victim choice when aliasing defeats the "not in
            component" search — ``"lru"`` (default; the paper suggests
            keeping a recency order, Section 3.3) or ``"random"``.
        seed: RNG seed for the random fallback.
        vote_sink: optional callable receiving each access's
            per-component miss vector; lets sampled leader units feed a
            shared :class:`~repro.core.selector.GlobalSelector` (used by
            the online engine's SBAR-style mode).
    """

    name = "adaptive"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        components: Sequence[ReplacementPolicy],
        tag_transform: Callable[[int], int] = identity_tag,
        history_factory: Optional[Callable[[int], MissHistory]] = None,
        fallback: str = "lru",
        seed: int = 0,
        vote_sink: Optional[Callable[[List[bool]], None]] = None,
    ):
        super().__init__(num_sets, ways)
        if len(components) < 2:
            raise ValueError(
                f"adaptivity needs at least 2 components, got {len(components)}"
            )
        if fallback not in ("lru", "random"):
            raise ValueError(f"unknown fallback {fallback!r}")
        for component in components:
            if component.num_sets != num_sets or component.ways != ways:
                raise ValueError(
                    f"component {component.name!r} geometry "
                    f"({component.num_sets}x{component.ways}) does not match "
                    f"({num_sets}x{ways})"
                )
        self.components = list(components)
        self.tag_transform = tag_transform
        self.fallback = fallback
        self.name = "adaptive(" + "+".join(c.name for c in self.components) + ")"

        if history_factory is None:
            def history_factory(n):
                return BitVectorHistory(n, window=ways)
        self.selectors: List[PolicySelector] = [
            PolicySelector(history_factory(len(self.components)))
            for _ in range(num_sets)
        ]
        self.vote_sink = vote_sink
        self.shadows = [
            TagArray(num_sets, ways, component, tag_transform)
            for component in self.components
        ]

        # Bound methods of the shadow arrays, hoisted once: observe()
        # runs every access and pays one replay per component. The
        # two-component case (the paper's default) is unrolled.
        self._shadow_lookups = [
            shadow.lookup_update for shadow in self.shadows
        ]
        self._lookup_pair = (
            tuple(self._shadow_lookups)
            if len(self._shadow_lookups) == 2
            else None
        )
        self._identity = tag_transform is identity_tag
        self._rng = DeterministicRNG(seed)
        # Recency stamps for the LRU fallback and the imitate-LRU shortcut.
        self._clock = 0
        self._stamp = [[0] * ways for _ in range(num_sets)]
        # Outcomes of the current access's shadow replays, consumed by
        # victim(); the cache calls observe() exactly once per access.
        self._last_outcomes: List[ShadowOutcome] = []
        self._last_set = -1
        # Imitation decisions per set per component, drained by Figure 7.
        self._decisions = [[0] * len(self.components) for _ in range(num_sets)]
        self.fallback_evictions = 0
        # Armed by repro.faults.FaultInjector; None costs one pointer
        # comparison per access and nothing else.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # ReplacementPolicy events
    # ------------------------------------------------------------------

    @property
    def histories(self) -> List[MissHistory]:
        """Per-set miss-history buffers (fault-injection surface)."""
        return [selector.history for selector in self.selectors]

    def observe(self, set_index: int, tag: int, is_write: bool) -> None:
        pair = self._lookup_pair
        if pair is not None:
            first = pair[0](set_index, tag, is_write)
            second = pair[1](set_index, tag, is_write)
            outcomes = [first, second]
            missed = [first.missed, second.missed]
        else:
            outcomes = [
                lookup(set_index, tag, is_write)
                for lookup in self._shadow_lookups
            ]
            missed = [o.missed for o in outcomes]
        self.selectors[set_index].record(missed)
        if self.vote_sink is not None:
            self.vote_sink(missed)
        self._last_outcomes = outcomes
        self._last_set = set_index
        if self.fault_injector is not None:
            self.fault_injector.tick()

    def on_hit(self, set_index: int, way: int) -> None:
        self._check_slot(set_index, way)
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def on_fill(self, set_index: int, way: int, tag: int) -> None:
        self._check_slot(set_index, way)
        self._clock += 1
        self._stamp[set_index][way] = self._clock

    def victim(self, set_index: int, set_view: SetView) -> int:
        if set_index != self._last_set or not self._last_outcomes:
            raise RuntimeError(
                "victim() called without a preceding observe() for set "
                f"{set_index}; the adaptive policy must be driven by a "
                "SetAssociativeCache"
            )
        chosen = self.selectors[set_index].best_component()
        self._decisions[set_index][chosen] += 1
        outcome = self._last_outcomes[chosen]
        shadow = self.shadows[chosen]

        # Step 2: the imitated component evicted a block that the real
        # cache also holds -> evict the same block.
        if outcome.missed and outcome.victim_tag is not None:
            way = self._find_way_by_stored_tag(set_view, outcome.victim_tag)
            if way is not None:
                return way

        # Step 3: evict any real block not in the imitated component.
        way = self._find_way_not_in_shadow(set_index, set_view, shadow)
        if way is not None:
            return way

        # Aliasing (partial tags) hid every candidate: arbitrary victim.
        self.fallback_evictions += 1
        return self._fallback_victim(set_index, set_view)

    def on_invalidate(self, set_index: int, way: int) -> None:
        # Stale recency stamps are harmless: invalid ways are filled
        # before victim() can ever be consulted about them.
        self._check_slot(set_index, way)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _find_way_by_stored_tag(
        self, set_view: SetView, stored_tag: int
    ) -> Optional[int]:
        # victim() only runs on full sets, where valid_ways() is just
        # 0..ways-1 in order; skip building the list (and skip the
        # identity transform for full tags).
        if set_view.valid_count() == self.ways:
            ways = range(self.ways)
        else:
            ways = set_view.valid_ways()
        tag_at = set_view.tag_at
        if self._identity:
            for way in ways:
                if tag_at(way) == stored_tag:
                    return way
            return None
        transform = self.tag_transform
        for way in ways:
            if transform(tag_at(way)) == stored_tag:
                return way
        return None

    def _find_way_not_in_shadow(
        self, set_index: int, set_view: SetView, shadow: TagArray
    ) -> Optional[int]:
        if set_view.valid_count() == self.ways:
            ways = range(self.ways)
        else:
            ways = set_view.valid_ways()
        tag_at = set_view.tag_at
        resident = shadow.sets[set_index]._tag_to_way
        if self._identity:
            for way in ways:
                if tag_at(way) not in resident:
                    return way
            return None
        transform = self.tag_transform
        for way in ways:
            if transform(tag_at(way)) not in resident:
                return way
        return None

    def _fallback_victim(self, set_index: int, set_view: SetView) -> int:
        candidates = set_view.valid_ways()
        if self.fallback == "random":
            return candidates[self._rng.choice_index(len(candidates))]
        stamps = self._stamp[set_index]
        return min(candidates, key=stamps.__getitem__)

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------

    def component_misses(self) -> List[int]:
        """Total shadow misses per component (what each policy alone
        would have suffered — up to partial-tag optimism)."""
        return [shadow.misses for shadow in self.shadows]

    def selector_switches(self) -> int:
        """Total imitation-target changes across all per-set selectors."""
        return sum(selector.switches for selector in self.selectors)

    def drain_decisions(self) -> List[List[int]]:
        """Per-set imitation decision counts since the previous drain.

        Figure 7's set-vs-time maps sample this every time quantum: the
        majority component per set paints the pixel.
        """
        drained = [list(row) for row in self._decisions]
        for row in self._decisions:
            for i in range(len(row)):
                row[i] = 0
        return drained

    # ------------------------------------------------------------------
    # Crash-recovery state capture
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the full adaptive machinery.

        Covers the component policies, shadow tag arrays, per-set
        selectors, fallback RNG, recency stamps and decision counters —
        everything Algorithm 1 consults. The transient per-access replay
        outcomes (``_last_outcomes``) are *not* saved: snapshots are
        taken between accesses, where they are dead state, and
        :meth:`load_state_dict` resets them so a restored policy demands
        a fresh ``observe()`` before its first ``victim()``.
        """
        return {
            "components": [c.state_dict() for c in self.components],
            "shadows": [s.state_dict() for s in self.shadows],
            "selectors": [s.state_dict() for s in self.selectors],
            "rng": self._rng.state(),
            "clock": self._clock,
            "stamp": [list(row) for row in self._stamp],
            "decisions": [list(row) for row in self._decisions],
            "fallback_evictions": self.fallback_evictions,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        for component, comp_state in zip(self.components, state["components"]):
            component.load_state_dict(comp_state)
        for shadow, shadow_state in zip(self.shadows, state["shadows"]):
            shadow.load_state_dict(shadow_state)
        for selector, sel_state in zip(self.selectors, state["selectors"]):
            selector.load_state_dict(sel_state)
        self._rng.restore(state["rng"])
        self._clock = int(state["clock"])
        self._stamp = [list(map(int, row)) for row in state["stamp"]]
        self._decisions = [list(map(int, row)) for row in state["decisions"]]
        self.fallback_evictions = int(state["fallback_evictions"])
        self._last_outcomes = []
        self._last_set = -1
