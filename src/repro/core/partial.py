"""Partial tags (Section 3.1).

Instead of replicating full tags in the parallel arrays, the adaptive
cache can keep a small hash of each tag: the low-order bits, or an XOR
fold of bit groups. Partial tags make aliasing possible (two different
blocks look identical to the shadow array), which the paper shows is
harmless at 6+ bits (Figure 5) and cuts the storage overhead from ~9.9%
to ~4.0% at 8 bits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PartialTagScheme:
    """A callable mapping full tags to partial tags.

    Attributes:
        bits: width of the partial tag; the paper sweeps 4..12.
        method: ``"low"`` keeps the low-order bits (the paper's default,
            "no XOR'ing of tag bits"); ``"xor"`` folds the whole tag by
            XOR-ing ``bits``-wide groups.
    """

    bits: int
    method: str = "low"

    def __post_init__(self):
        if self.bits <= 0:
            raise ValueError(f"partial tag width must be positive, got {self.bits}")
        if self.method not in ("low", "xor"):
            raise ValueError(f"unknown partial tag method {self.method!r}")
        # The transform runs once per shadow array per access, so the
        # fold is precomputed: a cached width mask and a method flag
        # replace the per-call mask construction and string compare
        # (not dataclass fields — equality/hash/pickle are unchanged).
        object.__setattr__(self, "_mask", (1 << self.bits) - 1)
        object.__setattr__(self, "_is_low", self.method == "low")

    def __call__(self, tag: int) -> int:
        if self._is_low:
            return tag & self._mask
        folded = 0
        bits = self.bits
        mask_ = self._mask
        remaining = tag & ((1 << 64) - 1)
        while remaining:
            folded ^= remaining & mask_
            remaining >>= bits
        return folded


def full_tags(tag: int) -> int:
    """Identity transform: the full-tag (no aliasing) configuration."""
    return tag


FULL_TAG_WIDTH = 24


def stored_tag_width(transform, default_bits: int = FULL_TAG_WIDTH) -> int:
    """Bit width of the tags a transform stores in the shadow arrays.

    A :class:`PartialTagScheme` reports its configured width; the
    full-tag identity transform has no inherent bound, so callers get
    ``default_bits`` (sized to the paper's 512 KB / 64-bit address
    geometry). The fault injector uses this to pick which bit of a
    stored tag to flip — flips must land inside the bits the hardware
    would actually hold.
    """
    bits = getattr(transform, "bits", None)
    if isinstance(bits, int) and bits > 0:
        return bits
    return default_bits
