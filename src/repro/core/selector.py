"""Reusable adaptation selectors, decoupled from set indexing.

The paper's machinery makes two kinds of decisions:

* a *local* decision — per cache set, imitate the component policy with
  the fewest recorded decisive misses (Algorithm 1, step 1);
* a *global* decision — a saturating PSEL-style counter trained by
  sampled leader sets, imitated by everyone else (the SBAR variant of
  Section 4.7).

Both were originally embedded in the set-indexed policies
(:class:`~repro.core.adaptive.AdaptivePolicy`,
:class:`~repro.core.sbar.SbarPolicy`). This module extracts them so the
same logic can select between replacement policies for *any* cache
unit — a hardware set, or a shard of the online key-value engine
(:mod:`repro.online`), which has no notion of set indices at all.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.history import BitVectorHistory, MissHistory
from repro.utils.bitops import mask


class PolicySelector:
    """Algorithm 1's local selector over one miss-history buffer.

    Wraps a :class:`~repro.core.history.MissHistory` and answers the
    question "which component policy should this unit imitate right
    now?". One instance serves one adaptation unit (a cache set, an
    online shard).

    Args:
        history: the miss-history buffer recording decisive outcomes;
            defaults to the paper's bit-vector with an 8-event window.
        num_components: number of component policies; only used to build
            the default history.
    """

    def __init__(
        self,
        history: Optional[MissHistory] = None,
        num_components: int = 2,
    ):
        self.history = history or BitVectorHistory(num_components)
        self.switches = 0
        self._best = 0

    @property
    def num_components(self) -> int:
        """Number of component policies being selected between."""
        return self.history.num_components

    def record(self, missed: Sequence[bool]) -> bool:
        """Record one access's per-component miss outcomes.

        Only decisive events (some but not all components missed) carry
        information; the history filters them itself. A decisive event
        that changes the imitated component bumps :attr:`switches`.

        Returns:
            True if the event was decisive and recorded.
        """
        decisive = self.history.record(missed)
        if decisive:
            best = self.history.best_component()
            if best != self._best:
                self.switches += 1
                self._best = best
        return decisive

    def best_component(self) -> int:
        """Component with the fewest recorded misses (ties favour 0)."""
        return self.history.best_component()

    def pegged(self) -> bool:
        """Whether the verdict is locked in: the history is so one-sided
        (:meth:`MissHistory.saturated`) that another decisive event
        blaming the current loser would change nothing — not the window,
        not the counts, not the imitated component. The columnar
        kernel's saturation-skip mode elides exactly those updates; a
        phase change (an event blaming the other component) fails the
        guard and recording resumes automatically."""
        return self.history.saturated()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot: history state, switch counter and
        the currently imitated component."""
        return {
            "history": self.history.state_dict(),
            "switches": self.switches,
            "best": self._best,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self.history.load_state_dict(state["history"])
        self.switches = int(state["switches"])
        self._best = int(state["best"])


class GlobalSelector:
    """A PSEL-style saturating counter selecting between two components.

    The SBAR variant's global decision structure (Section 4.7): decisive
    misses observed in sampled leader units vote the counter toward the
    component that did *not* miss, and follower units imitate whichever
    side of the midpoint the counter sits on. Extracted from
    :class:`~repro.core.sbar.SbarPolicy` so the online engine's sampled
    mode can reuse it across shards.

    Args:
        bits: counter width; the counter saturates at ``2**bits - 1``
            and starts at the midpoint (no initial preference).
    """

    def __init__(self, bits: int = 10):
        if bits <= 1:
            raise ValueError(f"psel_bits must be > 1, got {bits}")
        self.bits = bits
        self.max_value = mask(bits)
        self._mid = (self.max_value + 1) // 2
        self.value = self._mid
        self.switches = 0

    def selected(self) -> int:
        """Component the counter currently favours (0 or 1)."""
        return 1 if self.value > self._mid else 0

    def vote(self, missed: Sequence[bool]) -> bool:
        """Feed one access's (two-component) miss outcomes.

        A miss suffered only by component 0 is evidence for component 1
        and vice versa; ties (both hit / both missed) are ignored, as in
        the per-set history buffers. Flipping sides bumps
        :attr:`switches`.

        Returns:
            True if the vote was decisive and moved the counter.
        """
        if len(missed) != 2:
            raise ValueError(
                f"the global selector adapts over exactly 2 components, "
                f"got {len(missed)} outcomes"
            )
        if missed[0] == missed[1]:
            return False
        before = self.selected()
        if missed[0] and self.value < self.max_value:
            self.value += 1
        elif missed[1] and self.value > 0:
            self.value -= 1
        else:
            return False
        if self.selected() != before:
            self.switches += 1
        return True

    def set_value(self, value: int) -> None:
        """Clamp-write the counter (fault-injection hook).

        The counter is a pure performance hint: an arbitrary value only
        changes which component followers imitate until real decisive
        misses re-train it, so corrupting it is always safe.
        """
        self.value = max(0, min(self.max_value, value))

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the counter and switch count."""
        return {"value": self.value, "switches": self.switches}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON round-trip safe)."""
        self.value = max(0, min(self.max_value, int(state["value"])))
        self.switches = int(state["switches"])
