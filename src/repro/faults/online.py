"""Chaos campaigns against the online serving stack.

The simulator-side fault model (:mod:`repro.faults.plan`) corrupts the
adaptive machinery's auxiliary state; this module attacks the *online*
layers added around the engine instead:

* **Loader faults** — :class:`FlakyLoader` wraps a backend loader with
  seeded exceptions and latency spikes, exercising the retry /
  circuit-breaker / stale-serve ladder of
  :class:`~repro.online.resilience.ResilientKVCache`.
* **Torn writes** — :func:`torn_write` shears or flips bytes at seeded
  offsets of a persistence file, modelling a crash mid-append; the WAL
  reader must truncate-and-continue.
* **Kill points** — :func:`chaos_campaign` kills a
  :class:`~repro.online.persistence.PersistentKVCache` at seeded
  operation indices (including exactly at snapshot rotation, the
  fragile window) by abandoning it un-flushed, then recovers and
  resumes from wherever the persisted prefix ends.

The campaign's verdict (:class:`ChaosReport`) checks the two
invariants the robustness story rests on: the recovered run is
*decision-identical* to an uninterrupted one (same merged stats after
the full stream), and the Appendix's 2x miss bound still holds on the
recovered engine's shard counters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.history import CounterHistory
from repro.core.theory import BoundReport
from repro.online.engine import AdaptiveKVCache
from repro.online.persistence import PersistentKVCache, recover
from repro.online.resilience import (
    CircuitBreaker,
    LoaderUnavailable,
    ResilientKVCache,
    RetryPolicy,
)
from repro.utils.rng import DeterministicRNG


class FlakyLoader:
    """A backend loader with seeded failures and latency spikes.

    Args:
        base: the real loader ``key -> value``.
        failure_rate: probability a call raises :class:`IOError`.
        burst: once a failure fires, how many *further* consecutive
            calls also fail (models a backend brown-out rather than
            independent coin flips).
        latency: seconds of delay injected per call (via ``sleep``).
        latency_rate: probability a call pays ``latency``.
        seed: deterministic seed; identical seeds give identical
            failure/latency sequences.
        sleep: sleep function (inject a virtual clock in tests).
    """

    def __init__(
        self,
        base: Callable,
        failure_rate: float = 0.2,
        burst: int = 0,
        latency: float = 0.0,
        latency_rate: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] = None,
    ):
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0,1], got {failure_rate}")
        if not 0.0 <= latency_rate <= 1.0:
            raise ValueError(f"latency_rate must be in [0,1], got {latency_rate}")
        if burst < 0:
            raise ValueError(f"burst must be >= 0, got {burst}")
        self.base = base
        self.failure_rate = failure_rate
        self.burst = burst
        self.latency = latency
        self.latency_rate = latency_rate
        self._sleep = sleep
        self._rng = DeterministicRNG(seed)
        self._burst_left = 0
        self.calls = 0
        self.failures = 0

    def _decide(self, key):
        """Draw one call's fate: ``(delay_seconds, error_or_None)``.

        Shared by the sync and async call paths so both consume the
        seeded stream identically — a plan replayed through either
        loader makes the same injection decisions.
        """
        self.calls += 1
        delay = 0.0
        if self.latency > 0 and self._rng.random() < self.latency_rate:
            delay = self.latency
        if self._burst_left > 0:
            self._burst_left -= 1
            self.failures += 1
            return delay, IOError(f"injected burst failure for {key!r}")
        if self._rng.random() < self.failure_rate:
            self._burst_left = self.burst
            self.failures += 1
            return delay, IOError(f"injected failure for {key!r}")
        return delay, None

    def __call__(self, key):
        """One loader call; may raise ``IOError`` or inject latency."""
        if self._sleep is not None and self.latency > 0:
            delay, error = self._decide(key)
            if delay > 0:
                self._sleep(delay)
        else:
            # No sleep injected: latency decisions still consume the
            # stream only when latency is configured (original
            # behavior: the latency draw is skipped entirely).
            saved_latency = self.latency
            if self._sleep is None:
                self.latency = 0.0
            try:
                delay, error = self._decide(key)
            finally:
                self.latency = saved_latency
        if error is not None:
            raise error
        return self.base(key)


class AsyncFlakyLoader(FlakyLoader):
    """A :class:`FlakyLoader` whose latency is *awaited*, not slept.

    The open-loop serving harness (:mod:`repro.serve`) models backend
    service time as awaitable delay on the event loop — under a
    virtual-time loop, thousands of loader calls overlap without real
    elapsed time. Failure/burst decisions reuse the seeded
    :meth:`FlakyLoader._decide` stream, so a chaos plan drives the
    async ladder exactly as it drives the sync one.

    Args:
        base: the real loader ``key -> value`` (plain callable).
        base_latency: seconds awaited on *every* call (the backend's
            service time); the inherited ``latency``/``latency_rate``
            model extra spikes on top.
        (remaining args as :class:`FlakyLoader`)
    """

    def __init__(self, base, base_latency: float = 0.0, **kwargs):
        if base_latency < 0:
            raise ValueError(
                f"base_latency must be >= 0, got {base_latency}"
            )
        super().__init__(base, **kwargs)
        self.base_latency = base_latency

    async def __call__(self, key):  # type: ignore[override]
        """One awaited loader call; may raise ``IOError``."""
        import asyncio

        delay, error = self._decide(key)
        delay += self.base_latency
        if delay > 0:
            await asyncio.sleep(delay)
        if error is not None:
            raise error
        return self.base(key)


def torn_write(path: str, rng: DeterministicRNG, max_shear: int = 24,
               flip_byte: bool = False) -> int:
    """Damage a file's tail at a seeded offset (crash-mid-append model).

    Shears 1..``max_shear`` bytes off the end; with ``flip_byte`` the
    new last byte is additionally XOR-flipped, so the damage is a CRC
    violation rather than a clean truncation.

    Returns:
        Bytes sheared (0 if the file was empty or missing).
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0
    if size == 0:
        return 0
    shear = min(size, 1 + rng.choice_index(max_shear))
    with open(path, "r+b") as handle:
        handle.truncate(size - shear)
        if flip_byte and size - shear > 0:
            handle.seek(size - shear - 1)
            byte = handle.read(1)
            handle.seek(size - shear - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
    return shear


def newest_wal(directory: str) -> Optional[str]:
    """Path of the highest-generation WAL file, or None."""
    best = None
    best_gen = -1
    for name in os.listdir(directory):
        if name.startswith("wal-") and name.endswith(".log"):
            try:
                gen = int(name[4:-4])
            except ValueError:
                continue
            if gen > best_gen:
                best_gen = gen
                best = os.path.join(directory, name)
    return best


@dataclass(frozen=True)
class ChaosPlan:
    """One chaos campaign, as inert data (mirrors ``FaultPlan``).

    Attributes:
        ops: length of the key stream.
        hot_keys: working-set size of the stream's hot region.
        capacity_entries: engine capacity.
        num_shards: engine shard count.
        components: adaptive component policies.
        crashes: operation indices at which the cache is killed.
        torn: whether each crash also tears the newest WAL's tail.
        snapshot_every: snapshot cadence of the persistent wrapper.
        wal_flush_ops: WAL flush cadence (crashes lose the unflushed
            window; the campaign resumes from the persisted prefix).
        failure_rate: loader failure probability in the serving phase.
        burst: consecutive-failure burst length in the serving phase.
        seed: master seed for streams, tears and loader faults.
    """

    ops: int = 1500
    hot_keys: int = 96
    capacity_entries: int = 64
    num_shards: int = 4
    components: Tuple[str, ...] = ("lru", "lfu")
    crashes: Tuple[int, ...] = ()
    torn: bool = True
    snapshot_every: int = 400
    wal_flush_ops: int = 8
    failure_rate: float = 0.25
    burst: int = 2
    seed: int = 0

    @classmethod
    def seeded(cls, seed: int, num_crashes: int = 3, **overrides
               ) -> "ChaosPlan":
        """Place ``num_crashes`` kills at seeded offsets, one of them
        pinned to a snapshot-rotation boundary (the fragile window)."""
        base = cls(seed=seed, **overrides)
        rng = DeterministicRNG(seed).fork(101)
        crashes = set()
        if num_crashes > 0 and base.ops > base.snapshot_every:
            # Rotation happens while logging op snapshot_every-1 (the
            # counter reaches the cadence); kill right after it.
            crashes.add(base.snapshot_every)
        while len(crashes) < num_crashes:
            crashes.add(1 + rng.choice_index(max(base.ops - 1, 1)))
        return cls(
            seed=seed,
            crashes=tuple(sorted(crashes)),
            **overrides,
        )


@dataclass
class ChaosReport:
    """What a chaos campaign observed and whether invariants held.

    Attributes:
        ops: operations in the stream.
        crashes: kills performed.
        torn_events: WAL tails damaged.
        replayed_ops: operations re-issued after recoveries (lost to
            unflushed buffers or torn tails).
        decisions_match: recovered final stats equal the uninterrupted
            reference run's (decision identity).
        bound: the 2x miss-bound report on the recovered engine.
        serving_requests: requests in the flaky-loader phase.
        stale_serves: expired entries served while the loader failed.
        degraded_denials: requests with neither loader nor stale value.
        wrong_values: served values that did not match the backend's
            ground truth (must be zero — staleness is allowed, lies are
            not).
        breaker_trips: circuit-breaker trips across shards.
    """

    ops: int = 0
    crashes: int = 0
    torn_events: int = 0
    replayed_ops: int = 0
    decisions_match: bool = False
    bound: Optional[BoundReport] = None
    serving_requests: int = 0
    stale_serves: int = 0
    degraded_denials: int = 0
    wrong_values: int = 0
    breaker_trips: int = 0

    def ok(self) -> bool:
        """All invariants held: identity, miss bound, no wrong values."""
        return (
            self.decisions_match
            and self.bound is not None
            and self.bound.holds()
            and self.wrong_values == 0
        )


def chaos_stream(plan: ChaosPlan) -> List[int]:
    """The campaign's deterministic key stream.

    Alternates a hot-region phase (reuse-heavy, favours recency) with a
    scan phase (fresh keys mixed with one pinned hot key, favours
    frequency), so the adaptive components actually disagree and the
    bound check is not vacuous.
    """
    rng = DeterministicRNG(plan.seed).fork(7)
    keys: List[int] = []
    cold = plan.hot_keys
    phase = plan.hot_keys * 2
    for index in range(plan.ops):
        if (index // phase) % 2 == 0:
            keys.append(rng.choice_index(plan.hot_keys))
        elif index % 3 == 0:
            keys.append(0)
        else:
            cold += 1
            keys.append(cold)
    return keys


def _bound_engine(plan: ChaosPlan) -> AdaptiveKVCache:
    """An engine in the bound-checkable configuration (counter
    histories, full fingerprints — exact shadow directories)."""
    return AdaptiveKVCache(
        capacity_entries=plan.capacity_entries,
        num_shards=plan.num_shards,
        policy="adaptive",
        components=plan.components,
        partial_bits=None,
        history_factory=lambda n: CounterHistory(n),
        seed=plan.seed,
    )


def _fill(key):
    """The campaign's deterministic backend: ground truth per key."""
    return key * 2 + 1


def chaos_campaign(plan: ChaosPlan, directory: str) -> ChaosReport:
    """Run the full campaign; see the module docstring for the model.

    Phase 1 (durability): drive the key stream through a persistent
    cache, killing and recovering at the plan's crash points, then
    check decision identity against an uninterrupted reference and the
    2x miss bound on the recovered engine.

    Phase 2 (serving): replay the stream through a resilient cache
    whose loader fails per the plan, under a virtual clock; check that
    every answer matches the backend's ground truth (stale answers are
    ground truth too — the backend is deterministic).
    """
    report = ChaosReport(ops=plan.ops)
    keys = chaos_stream(plan)
    tear_rng = DeterministicRNG(plan.seed).fork(31)

    reference = _bound_engine(plan)
    for key in keys:
        reference.get_or_compute(key, _fill)
    reference_stats = reference.stats()

    cache = PersistentKVCache(
        _bound_engine(plan),
        directory,
        snapshot_every=plan.snapshot_every,
        wal_flush_ops=plan.wal_flush_ops,
    )
    position = 0
    for crash_at in list(plan.crashes) + [plan.ops]:
        crash_at = min(crash_at, plan.ops)
        while position < crash_at:
            cache.get_or_compute(keys[position], _fill)
            position += 1
        if crash_at == plan.ops:
            break
        # Kill: abandon the wrapper un-flushed (buffered records die
        # with the process), optionally tear the newest WAL's tail.
        cache._wal.close()
        del cache
        report.crashes += 1
        if plan.torn:
            wal = newest_wal(directory)
            if wal is not None and torn_write(wal, tear_rng) > 0:
                report.torn_events += 1
        cache = recover(
            directory,
            snapshot_every=plan.snapshot_every,
            wal_flush_ops=plan.wal_flush_ops,
            # Callable overrides are not recorded in the manifest; the
            # recovering process must supply the same ones it booted
            # the original engine with.
            history_factory=lambda n: CounterHistory(n),
        )
        # Resume exactly where the persisted prefix ends: the stream
        # is get_or_compute-only, so the recovered get count *is* the
        # stream position.
        recovered_position = cache.stats().gets
        report.replayed_ops += position - recovered_position
        position = recovered_position
    cache.sync()
    final_stats = cache.stats()
    report.decisions_match = final_stats == reference_stats

    engine = cache.cache
    slack = 2 * max(shard.capacity for shard in engine.shards)
    report.bound = BoundReport(
        adaptive_misses=[shard.misses for shard in engine.shards],
        component_misses=[
            [shard.policy.shadows[c].misses for shard in engine.shards]
            for c in range(len(plan.components))
        ],
        slack=slack,
        factor=2.0,
    )
    cache.close()

    _serving_phase(plan, keys, report)
    return report


def _serving_phase(plan: ChaosPlan, keys: List[int],
                   report: ChaosReport) -> None:
    """Phase 2: flaky loader against the resilient ladder."""
    now = [0.0]

    def clock() -> float:
        return now[0]

    def sleep(seconds: float) -> None:
        now[0] += seconds

    engine = AdaptiveKVCache(
        capacity_entries=plan.capacity_entries,
        num_shards=plan.num_shards,
        components=plan.components,
        default_ttl=50.0,
        seed=plan.seed,
        clock=clock,
    )
    loader = FlakyLoader(
        _fill,
        failure_rate=plan.failure_rate,
        burst=plan.burst,
        latency=0.5,
        latency_rate=0.1,
        seed=plan.seed + 13,
        sleep=sleep,
    )
    resilient = ResilientKVCache(
        engine,
        retry=RetryPolicy(attempts=3, backoff=0.05, budget=5.0),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=4, recovery_timeout=10.0, clock=clock
        ),
        sleep=sleep,
        clock=clock,
    )
    for key in keys:
        now[0] += 0.25  # entries age; some requests find only stale data
        report.serving_requests += 1
        try:
            value = resilient.get_or_compute(key, loader)
        except LoaderUnavailable:
            report.degraded_denials += 1
            continue
        if value != _fill(key):
            report.wrong_values += 1
    stats = resilient.stats()
    report.stale_serves = stats.stale_hits
    report.breaker_trips = sum(b.trips for b in resilient.breakers)
