"""Fault plans: *what* to corrupt, *how often*, and *when*.

A :class:`FaultPlan` is a declarative description of an injection
campaign against the adaptive machinery's auxiliary state. It names
fault sites (shadow tag arrays, per-set miss-history buffers, the SBAR
selector counter), a per-access injection rate for each, and an
optional access-index window. The plan is inert data; a
:class:`~repro.faults.injector.FaultInjector` arms it on a policy.

The paper's structural claim (Section 3.2) makes this safe by
construction: all of the targeted state is performance-only. Faults can
shift which component policy gets imitated — costing misses — but the
real cache's tag/data arrays are never touched, so a hit always returns
the right block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

SITE_SHADOW_TAGS = "shadow-tags"
SITE_HISTORY = "history"
SITE_SELECTOR = "selector"

ALL_SITES: Tuple[str, ...] = (SITE_SHADOW_TAGS, SITE_HISTORY, SITE_SELECTOR)

HISTORY_MODES: Tuple[str, ...] = ("scramble", "clear")


@dataclass(frozen=True)
class FaultSpec:
    """One fault site with its rate and access-window.

    Attributes:
        site: one of :data:`ALL_SITES`.
        rate: probability of injecting one fault at this site per
            policy access (0 disables the site, 1 faults every access).
        start: first access index (inclusive) at which the site fires.
        stop: access index (exclusive) after which the site goes quiet,
            or None for the whole run.
        bits: for ``shadow-tags``, number of tag bits flipped per event.
        mode: for ``history``, ``"scramble"`` (replace with random
            decisive events) or ``"clear"`` (wipe the buffer).
    """

    site: str
    rate: float
    start: int = 0
    stop: Optional[int] = None
    bits: int = 1
    mode: str = "scramble"

    def __post_init__(self):
        if self.site not in ALL_SITES:
            known = ", ".join(ALL_SITES)
            raise ValueError(f"unknown fault site {self.site!r}; known: {known}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"stop ({self.stop}) must exceed start ({self.start})"
            )
        if self.bits <= 0:
            raise ValueError(f"bits must be positive, got {self.bits}")
        if self.mode not in HISTORY_MODES:
            known = ", ".join(HISTORY_MODES)
            raise ValueError(f"unknown history mode {self.mode!r}; known: {known}")

    def active_at(self, access_index: int) -> bool:
        """Whether this site can fire at ``access_index``."""
        if access_index < self.start:
            return False
        return self.stop is None or access_index < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the campaign's RNG seed.

    Attributes:
        specs: the fault sites to exercise.
        seed: seed of the injector's deterministic RNG, so identical
            plans produce bit-identical corruption sequences.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def uniform(
        cls,
        rate: float,
        sites: Tuple[str, ...] = ALL_SITES,
        seed: int = 0,
        bits: int = 1,
        mode: str = "scramble",
        start: int = 0,
        stop: Optional[int] = None,
    ) -> "FaultPlan":
        """One spec per site, all at the same ``rate``."""
        specs = tuple(
            FaultSpec(site, rate, start=start, stop=stop, bits=bits, mode=mode)
            for site in sites
        )
        return cls(specs=specs, seed=seed)

    def is_quiet(self) -> bool:
        """True when no spec can ever fire (all rates zero or no specs)."""
        return all(spec.rate == 0.0 for spec in self.specs)


@dataclass
class FaultLog:
    """Counters of what an injector actually did.

    Attributes:
        accesses: policy accesses observed while armed.
        shadow_tag_flips: resident shadow tags corrupted.
        shadow_tag_aliased: flips whose new tag collided with a resident
            tag, dropping the block (absorbed by aliasing tolerance).
        shadow_tag_vacant: flip attempts that found an empty target set.
        history_scrambles: history buffers replaced with random events.
        history_clears: history buffers wiped.
        selector_writes: SBAR selector corruptions.
        inapplicable: events targeting a site the armed policy lacks
            (e.g. ``selector`` on a plain adaptive policy).
    """

    accesses: int = 0
    shadow_tag_flips: int = 0
    shadow_tag_aliased: int = 0
    shadow_tag_vacant: int = 0
    history_scrambles: int = 0
    history_clears: int = 0
    selector_writes: int = 0
    inapplicable: int = 0

    def injected(self) -> int:
        """Total faults actually landed in auxiliary state."""
        return (
            self.shadow_tag_flips
            + self.history_scrambles
            + self.history_clears
            + self.selector_writes
        )

    def merge(self, other: "FaultLog") -> None:
        """Accumulate another log's counters into this one."""
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))
