"""Fault injection into the adaptive cache's auxiliary state.

The paper's overhead analysis (Section 3.2) rests on a structural
property: everything the adaptive machinery adds — parallel (shadow)
tag arrays, per-set miss-history buffers, SBAR's selector counter — is
*performance-only* state. Corrupting it can shift which component
policy the cache imitates, costing extra misses, but can never make the
cache return wrong data, and partial tags already tolerate aliasing by
design (Section 3.1). This package turns that claim into something the
repository can exercise:

* :class:`~repro.faults.plan.FaultPlan` / ``FaultSpec`` describe an
  injection campaign (sites, rates, access windows) as inert data.
* :class:`~repro.faults.injector.FaultInjector` arms a plan on an
  adaptive or SBAR policy and corrupts state as the simulation runs,
  counting everything it does in a ``FaultLog``.
* ``repro-experiments ext-faults`` sweeps fault rates and reports MPKI
  degradation, asserting the graceful-degradation invariants.
* :mod:`repro.faults.online` extends the campaign to the serving layer:
  :class:`~repro.faults.online.FlakyLoader` (failing/bursty/slow
  loaders), :func:`~repro.faults.online.torn_write` (seeded WAL tail
  shears), and :func:`~repro.faults.online.chaos_campaign` — a
  crash/tear/flaky-loader gauntlet that asserts recovery
  decision-identity and the 2x miss bound end to end.

When no plan is armed the hooks cost one pointer comparison per access.
See docs/robustness.md for the fault model.
"""

from repro.faults.injector import FaultInjector
from repro.faults.online import (
    ChaosPlan,
    ChaosReport,
    FlakyLoader,
    chaos_campaign,
    chaos_stream,
    newest_wal,
    torn_write,
)
from repro.faults.plan import (
    ALL_SITES,
    HISTORY_MODES,
    SITE_HISTORY,
    SITE_SELECTOR,
    SITE_SHADOW_TAGS,
    FaultLog,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ALL_SITES",
    "HISTORY_MODES",
    "SITE_HISTORY",
    "SITE_SELECTOR",
    "SITE_SHADOW_TAGS",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "ChaosPlan",
    "ChaosReport",
    "FlakyLoader",
    "chaos_campaign",
    "chaos_stream",
    "newest_wal",
    "torn_write",
]
