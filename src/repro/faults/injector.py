"""The fault injector: arms a :class:`~repro.faults.plan.FaultPlan` on a
policy and corrupts auxiliary state as the access stream flows.

The injector attaches to an :class:`~repro.core.adaptive.AdaptivePolicy`
or :class:`~repro.core.sbar.SbarPolicy` through the single
``fault_injector`` attribute those classes expose; the policy calls
:meth:`FaultInjector.tick` once per ``observe``. When nothing is armed
the hook is one ``is not None`` check — zero overhead by design, so the
production simulation path is untouched.

Every corruption goes through a narrow, documented mutation hook on the
target structure (``TagArray.corrupt_stored``, ``MissHistory.clear`` /
``scramble``, ``SbarPolicy.set_selector``), never through private state,
so the faulted structures keep their internal invariants and the
simulation is guaranteed to terminate with consistent statistics.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.tag_array import TagArray
from repro.core.history import MissHistory
from repro.core.partial import stored_tag_width
from repro.faults.plan import (
    SITE_HISTORY,
    SITE_SELECTOR,
    SITE_SHADOW_TAGS,
    FaultLog,
    FaultPlan,
)
from repro.utils.rng import DeterministicRNG


class FaultInjector:
    """Executes a fault plan against one armed policy.

    Args:
        plan: the campaign description.

    Usage::

        policy = make_adaptive(num_sets, ways, ("lru", "lfu"))
        injector = FaultInjector(FaultPlan.uniform(0.01)).arm(policy)
        ...  # simulate as usual
        print(injector.log.injected())
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log = FaultLog()
        self._rng = DeterministicRNG(plan.seed)
        self._shadows: List[TagArray] = []
        self._histories: List[MissHistory] = []
        self._set_selector: Optional[Callable[[int], None]] = None
        self._selector_max = 0
        self._tag_width = 1
        self._armed = None

    def arm(self, policy) -> "FaultInjector":
        """Attach to ``policy`` (adaptive or SBAR) and start injecting.

        Discovers the policy's auxiliary structures — shadow tag arrays,
        per-set miss histories, and (for SBAR) the selector counter —
        and registers itself as the policy's ``fault_injector``.

        Returns:
            self, for chaining.
        """
        if self._armed is not None:
            raise RuntimeError("injector is already armed; use one per policy")
        shadows = getattr(policy, "shadows", None)
        histories = getattr(policy, "histories", None)
        if not shadows or not histories:
            raise TypeError(
                f"policy {getattr(policy, 'name', policy)!r} exposes no "
                "shadow arrays / histories to inject into"
            )
        self._shadows = list(shadows)
        self._histories = list(histories)
        setter = getattr(policy, "set_selector", None)
        if callable(setter):
            self._set_selector = setter
            self._selector_max = policy.selector_max
        self._tag_width = stored_tag_width(policy.tag_transform)
        policy.fault_injector = self
        self._armed = policy
        return self

    def disarm(self) -> None:
        """Detach from the armed policy; the plan stops firing."""
        if self._armed is not None:
            self._armed.fault_injector = None
            self._armed = None

    def tick(self) -> None:
        """One policy access: roll each active spec and maybe inject."""
        index = self.log.accesses
        self.log.accesses += 1
        for spec in self.plan.specs:
            if spec.rate <= 0.0 or not spec.active_at(index):
                continue
            if self._rng.random() >= spec.rate:
                continue
            if spec.site == SITE_SHADOW_TAGS:
                self._flip_shadow_tag(spec.bits)
            elif spec.site == SITE_HISTORY:
                self._corrupt_history(spec.mode)
            elif spec.site == SITE_SELECTOR:
                self._corrupt_selector()

    # ------------------------------------------------------------------
    # Site-specific corruption
    # ------------------------------------------------------------------

    def _flip_shadow_tag(self, bits: int) -> None:
        shadow = self._shadows[self._rng.choice_index(len(self._shadows))]
        set_index = self._rng.choice_index(shadow.num_sets)
        tags = shadow.resident_tags(set_index)
        if not tags:
            self.log.shadow_tag_vacant += 1
            return
        old = tags[self._rng.choice_index(len(tags))]
        new = old
        for _ in range(bits):
            new ^= 1 << self._rng.choice_index(self._tag_width)
        if new == old:
            # An even number of flips landed on the same bit.
            self.log.shadow_tag_vacant += 1
            return
        aliased = shadow.contains_stored(set_index, new)
        if shadow.corrupt_stored(set_index, old, new):
            self.log.shadow_tag_flips += 1
            if aliased:
                self.log.shadow_tag_aliased += 1

    def _corrupt_history(self, mode: str) -> None:
        history = self._histories[self._rng.choice_index(len(self._histories))]
        if mode == "clear":
            history.clear()
            self.log.history_clears += 1
        else:
            history.scramble(self._rng)
            self.log.history_scrambles += 1

    def _corrupt_selector(self) -> None:
        if self._set_selector is None:
            self.log.inapplicable += 1
            return
        self._set_selector(self._rng.randint(0, self._selector_max))
        self.log.selector_writes += 1
