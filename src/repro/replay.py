"""``repro-sim``: replay a trace against one cache configuration.

The workhorse CLI for ad-hoc studies: point it at a saved ``.npz``
trace (see :mod:`repro.workloads.io`) or a suite workload name, choose
a geometry and a policy spec, and get miss statistics — optionally full
timing (CPI) through the processor model.

Examples::

    repro-sim --workload mcf --policy adaptive --size-kb 64
    repro-sim --trace mytrace.npz --policy sbar --components lru bip
    repro-sim --workload art-1 --policy adaptive --partial-bits 8 --timing
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cpu.config import ProcessorConfig
from repro.cpu.timing import compile_workload, simulate
from repro.experiments.base import build_l2_policy
from repro.workloads.io import load_trace
from repro.workloads.suite import build_workload
from repro.workloads.trace import Trace


def build_parser() -> argparse.ArgumentParser:
    """The repro-sim argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Replay a memory trace against a cache configuration.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help="path to a saved .npz trace")
    source.add_argument("--workload", help="suite workload name")
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="references to generate for --workload")
    parser.add_argument("--size-kb", type=int, default=64,
                        help="cache capacity in KB (default 64)")
    parser.add_argument("--ways", type=int, default=8)
    parser.add_argument("--line-bytes", type=int, default=64)
    parser.add_argument("--policy", default="adaptive",
                        help="lru|lfu|fifo|mru|random|srrip|bip|adaptive|"
                             "adaptive5|sbar")
    parser.add_argument("--components", nargs=2, default=["lru", "lfu"],
                        metavar=("A", "B"),
                        help="component policies for adaptive/sbar")
    parser.add_argument("--partial-bits", type=int, default=None,
                        help="partial tag width for shadow arrays")
    parser.add_argument("--leaders", type=int, default=16,
                        help="SBAR leader sets")
    parser.add_argument("--timing", action="store_true",
                        help="also run the processor timing model (CPI)")
    parser.add_argument("--characterize", action="store_true",
                        help="print the trace's structural profile "
                             "(stack distances, miss-ratio curve)")
    parser.add_argument("--compare", nargs="+", default=None,
                        metavar="POLICY",
                        help="replay against several policies side by "
                             "side (overrides --policy)")
    return parser


def _load(args) -> Trace:
    if args.trace:
        return load_trace(args.trace)
    config = CacheConfig(
        size_bytes=args.size_kb * 1024, ways=args.ways,
        line_bytes=args.line_bytes,
    )
    return build_workload(args.workload, config, accesses=args.accesses)


def _compare(args: argparse.Namespace, trace: Trace,
             config: CacheConfig) -> str:
    """Side-by-side replay of several policy specs."""
    from repro.analysis.tables import render_table

    rows = []
    for kind in args.compare:
        policy = build_l2_policy(
            config, kind, tuple(args.components),
            partial_bits=args.partial_bits, num_leaders=args.leaders,
        )
        cache = SetAssociativeCache(config, policy)
        addresses, writes = trace.memory_stream()
        cache.access_many(addresses, writes)
        stats = cache.stats
        rows.append([
            policy.name,
            stats.misses,
            stats.miss_ratio,
            stats.mpki(trace.instruction_count),
            stats.writebacks,
        ])
    rows.sort(key=lambda row: row[1])
    return render_table(
        ["policy", "misses", "miss ratio", "MPKI", "writebacks"],
        rows,
        title=f"{trace.name} on {args.size_kb}KB {args.ways}-way "
        "(best first)",
    )


def run_replay(args: argparse.Namespace) -> str:
    """Execute one replay; returns the printed report."""
    trace = _load(args)
    config = CacheConfig(
        size_bytes=args.size_kb * 1024, ways=args.ways,
        line_bytes=args.line_bytes, hit_latency=15,
    )
    if args.compare:
        return _compare(args, trace, config)
    policy = build_l2_policy(
        config, args.policy, tuple(args.components),
        partial_bits=args.partial_bits, num_leaders=args.leaders,
    )
    cache = SetAssociativeCache(config, policy)

    lines = [
        f"trace: {trace.name} ({trace.memory_access_count()} references, "
        f"{trace.instruction_count} instructions, "
        f"{trace.footprint_lines(config.line_bytes)} distinct lines)",
        f"cache: {args.size_kb}KB {args.ways}-way, {args.line_bytes}B "
        f"lines, policy {policy.name}",
    ]
    if args.characterize:
        from repro.workloads.characterize import characterize

        profile = characterize(
            trace,
            line_bytes=config.line_bytes,
            curve_capacities=(
                config.num_lines // 4, config.num_lines,
                4 * config.num_lines,
            ),
        )
        lines.append("profile:")
        lines.extend("  " + row for row in profile.render().splitlines())
    if args.timing:
        l1 = CacheConfig(
            size_bytes=max(1, args.size_kb // 16) * 1024, ways=4,
            line_bytes=args.line_bytes, hit_latency=2,
        )
        processor = ProcessorConfig(l1d=l1, l1i=l1, l2=config)
        compiled = compile_workload(trace, processor)
        result = simulate(compiled, cache, processor)
        lines.append(
            f"timing: CPI {result.cpi:.3f}, MPKI {result.mpki:.2f}, "
            f"{result.cycles:.0f} cycles"
        )
        for component, cycles in sorted(result.breakdown.items()):
            lines.append(f"  {component:12s} {cycles:14.0f} cycles")
    else:
        addresses, writes = trace.memory_stream()
        cache.access_many(addresses, writes)
        stats = cache.stats
        lines.append(
            f"result: {stats.misses} misses / {stats.accesses} accesses "
            f"(miss ratio {stats.miss_ratio:.3f}, "
            f"MPKI {stats.mpki(trace.instruction_count):.2f})"
        )
        lines.append(
            f"        {stats.evictions} evictions, "
            f"{stats.writebacks} writebacks"
        )
    from repro.core.adaptive import AdaptivePolicy

    if isinstance(policy, AdaptivePolicy):
        per_component = ", ".join(
            f"{c.name}={m}" for c, m in
            zip(policy.components, policy.component_misses())
        )
        lines.append(f"component misses (shadow): {per_component}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        print(run_replay(args))
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
