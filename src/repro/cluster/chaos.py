"""Node-level chaos against the cluster: kills, partitions, flakiness.

The single-node campaign (:mod:`repro.faults.online`) attacks one
process's persistence and loader; this module attacks the *cluster*:
members are SIGKILL-crashed mid-stream (their unflushed WAL window
dies), partitioned away from the router, or made flaky (a seeded
fraction of their requests raise), while a deterministic workload keeps
reading and writing through the router.

:func:`cluster_chaos_campaign` runs two phases and verdicts them in a
:class:`ClusterChaosReport`:

* **Pressure phase** — small per-node capacity (evictions happen),
  kills with later recovery, a partition with later heal, one flaky
  member, one tail-latency member (so hedged reads fire). Invariants:
  *zero wrong values* (every served ``(version, value)`` pair is
  exactly what was written at that version — staleness is legal, lies
  are not), read-repair + a final sweep leave no key's owner set
  divergent, every member's operation log replays decision-identically
  against the :mod:`repro.oracle` spec, and every member's final
  engine state is *byte-identical* to a fresh engine replaying its
  log, entries and policy state and counters all included (which is
  exactly the recovered-prefix guarantee: a crashed member's log was
  truncated to what its snapshot + WAL survived).
* **Durability phase** — a no-eviction regime (capacity exceeds the
  keyspace) where one member is killed mid-stream and another
  partitioned. Invariant: with ``replication >= 2``, *no acked write
  is lost* — an ack means a write quorum applied it, at most one
  member died, so the latest acked version of every key must still be
  readable (at that version or newer) after recovery and rebalance.

Everything is seeded: the same :class:`ClusterChaosPlan` produces the
same kills, the same flaky faults, the same hedges and the same
verdict, run after run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cache import ClusterKVCache, WriteQuorumError
from repro.cluster.latency import LatencyModel
from repro.online.engine import AdaptiveKVCache
from repro.oracle.harness import Divergence, build_shard_pair, run_differential
from repro.utils.rng import DeterministicRNG


class FlakyReplica:
    """A node fault hook: seeded request failures with brown-out bursts.

    Attach as ``node.fault``; raises :class:`IOError` *before* the
    operation applies (so a failed request never reaches the engine or
    the op log, like a connection refused at the socket).

    Args:
        failure_rate: probability a request raises.
        burst: further consecutive failures after one fires.
        seed: deterministic seed.
    """

    def __init__(self, failure_rate: float = 0.1, burst: int = 0,
                 seed: int = 0):
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in [0,1], got {failure_rate}"
            )
        if burst < 0:
            raise ValueError(f"burst must be >= 0, got {burst}")
        self.failure_rate = failure_rate
        self.burst = burst
        self._rng = DeterministicRNG(seed)
        self._burst_left = 0
        self.calls = 0
        self.failures = 0

    def __call__(self, op: str, key) -> None:
        self.calls += 1
        if self._burst_left > 0:
            self._burst_left -= 1
            self.failures += 1
            raise IOError(f"injected replica failure on {op} {key!r}")
        if self._rng.random() < self.failure_rate:
            self._burst_left = self.burst
            self.failures += 1
            raise IOError(f"injected replica failure on {op} {key!r}")


@dataclass(frozen=True)
class ClusterChaosPlan:
    """One cluster chaos campaign, as inert data.

    Attributes:
        ops: length of the pressure-phase operation stream.
        hot_keys: working-set size of the stream's hot region.
        num_nodes: cluster members.
        replication: replicas per key.
        write_quorum: acks per write (None = majority).
        read_fanout: replicas a read consults before declaring a miss.
        capacity_per_node: pressure-phase per-node capacity (small on
            purpose — evictions must happen).
        vnodes: virtual nodes per member.
        snapshot_every: per-node snapshot cadence.
        wal_flush_ops: per-node WAL flush cadence (a kill loses the
            unflushed window).
        kills: pressure-phase op indices at which a member is killed
            (the member is a seeded choice among up nodes); each
            recovers ``recover_after`` ops later.
        recover_after: ops between a kill and its recovery.
        partition_at: op index at which a member is partitioned
            (None = no partition).
        heal_after: ops between the partition and its heal.
        flaky_rate: request failure rate of the flaky member (node 1;
            0 disables).
        flaky_burst: brown-out burst length of the flaky member.
        spike_rate: tail-latency rate of the straggler member (node 2).
        hedge_after: latency budget that triggers hedged reads.
        durable_ops: length of the durability-phase stream.
        durable_kill_at: durability-phase op index of the kill.
        durable_partition_at: durability-phase op index of the
            partition (healed before the final check).
        put_rate: fraction of stream operations that are writes.
        seed: master seed for streams, choices and faults.
    """

    ops: int = 1200
    hot_keys: int = 96
    num_nodes: int = 5
    replication: int = 3
    write_quorum: Optional[int] = None
    read_fanout: int = 2
    capacity_per_node: int = 64
    vnodes: int = 32
    snapshot_every: int = 200
    wal_flush_ops: int = 4
    kills: Tuple[int, ...] = ()
    recover_after: int = 150
    partition_at: Optional[int] = None
    heal_after: int = 120
    flaky_rate: float = 0.05
    flaky_burst: int = 2
    spike_rate: float = 0.15
    hedge_after: float = 0.01
    durable_ops: int = 500
    durable_kill_at: int = 200
    durable_partition_at: int = 120
    put_rate: float = 0.4
    seed: int = 0

    @classmethod
    def seeded(cls, seed: int, num_kills: int = 2, **overrides
               ) -> "ClusterChaosPlan":
        """Place ``num_kills`` kills and one partition at seeded
        offsets, keeping every chaos window inside the stream."""
        base = cls(seed=seed, **overrides)
        rng = DeterministicRNG(seed).fork(101)
        latest = max(base.ops - base.recover_after - 1, 1)
        kills = set()
        while len(kills) < num_kills:
            kills.add(1 + rng.choice_index(latest))
        partition_at = 1 + rng.choice_index(
            max(base.ops - base.heal_after - 1, 1)
        )
        return cls(
            seed=seed,
            kills=tuple(sorted(kills)),
            partition_at=partition_at,
            **overrides,
        )


@dataclass
class ClusterChaosReport:
    """What a cluster campaign observed and whether invariants held.

    Attributes:
        ops: pressure-phase operations driven.
        kills: members killed (both phases).
        partitions: members partitioned (both phases).
        recoveries: crashed members recovered from snapshot + WAL.
        reads / read_hits: pressure-phase read traffic.
        wrong_values: served ``(version, value)`` pairs that were never
            written at that version (must be zero).
        stale_serves: reads that returned an older-than-latest-acked
            version (legal; counted for visibility).
        acked_writes / failed_writes: quorum outcomes, both phases.
        hedged_reads / hedge_wins / read_repairs: router behaviour
            under chaos (sanity floor: chaos should trigger some).
        swept: replica copies written by the final rebalance sweeps.
        divergent_after_repair: keys whose owner set still disagreed
            after the final sweep (must be zero).
        oracle_divergences: per-node decision divergences against the
            :mod:`repro.oracle` specs (must be empty).
        identity_mismatches: members whose final engine state was not
            byte-identical to a fresh replay of their op log (must be
            zero — this is the recovered-prefix guarantee).
        durable_acked: durability-phase acked writes.
        lost_acked_writes: acked writes unreadable at (or above) their
            acked version after recovery (must be zero at
            ``replication >= 2``).
    """

    ops: int = 0
    kills: int = 0
    partitions: int = 0
    recoveries: int = 0
    reads: int = 0
    read_hits: int = 0
    wrong_values: int = 0
    stale_serves: int = 0
    acked_writes: int = 0
    failed_writes: int = 0
    hedged_reads: int = 0
    hedge_wins: int = 0
    read_repairs: int = 0
    swept: int = 0
    divergent_after_repair: int = 0
    oracle_divergences: List[Divergence] = field(default_factory=list)
    identity_mismatches: int = 0
    durable_acked: int = 0
    lost_acked_writes: int = 0

    def ok(self) -> bool:
        """All invariants held (see the class docstring)."""
        return (
            self.wrong_values == 0
            and self.divergent_after_repair == 0
            and not self.oracle_divergences
            and self.identity_mismatches == 0
            and self.lost_acked_writes == 0
        )


def cluster_stream(plan: ClusterChaosPlan, ops: int, salt: int,
                   key_space: Optional[int] = None) -> List[tuple]:
    """A deterministic ``(op, key)`` stream: reads and writes mixed.

    Alternates a hot-region phase with a scan phase (like the
    single-node campaign's stream) so component policies disagree and
    the per-node oracle check is not vacuous; ``key_space`` bounds the
    keys (the durability phase needs a closed keyspace that fits in
    capacity).
    """
    rng = DeterministicRNG(plan.seed).fork(salt)
    stream: List[tuple] = []
    cold = plan.hot_keys
    phase = plan.hot_keys * 2
    for index in range(ops):
        if (index // phase) % 2 == 0:
            key = rng.choice_index(plan.hot_keys)
        elif index % 3 == 0:
            key = 0
        else:
            cold += 1
            key = cold
        if key_space is not None:
            key %= key_space
        op = "put" if rng.random() < plan.put_rate else "get"
        stream.append((op, key))
    return stream


def _build_cluster(plan: ClusterChaosPlan, directory: Optional[str],
                   capacity: int, seed_salt: int) -> ClusterKVCache:
    """The campaign's cluster: one straggler member, hedging armed."""

    def latency_factory(index: int) -> LatencyModel:
        spike_rate = plan.spike_rate if index == 2 % plan.num_nodes else 0.0
        return LatencyModel(
            base=0.001, spike=0.05, spike_rate=spike_rate,
            seed=plan.seed + seed_salt + 7919 * index,
        )

    return ClusterKVCache(
        num_nodes=plan.num_nodes,
        replication=plan.replication,
        write_quorum=plan.write_quorum,
        read_fanout=plan.read_fanout,
        capacity_per_node=capacity,
        vnodes=plan.vnodes,
        seed=plan.seed + seed_salt,
        directory=directory,
        snapshot_every=plan.snapshot_every,
        wal_flush_ops=plan.wal_flush_ops,
        hedge_after=plan.hedge_after,
        latency_factory=latency_factory,
    )


def _replay_reference(node) -> AdaptiveKVCache:
    """A fresh engine replaying the node's full operation log."""
    sentinel = object()
    reference = AdaptiveKVCache(**node.config)
    for op in node.op_log:
        if op[0] == "get":
            reference.get(op[1], sentinel)
        elif op[0] == "put":
            reference.put(op[1], op[2])
        else:
            reference.delete(op[1])
    return reference


def _check_node_identity(node, report: ClusterChaosReport) -> None:
    """Engine state must be identical to a fresh log replay.

    A member that crashed had its log truncated to the persisted
    prefix, so this equality *is* the snapshot + WAL recovery
    guarantee; for members that never crashed it is a plain
    determinism check. The comparison is deep structural equality of
    the full :meth:`~repro.online.engine.AdaptiveKVCache.state_dict`
    (entries, way order, counters, every byte of policy state) —
    *not* pickle bytes, which also encode interior object sharing
    (the replay shares record tuples with the op log; a recovered
    engine holds unpickled copies of the same values).
    """
    if node.engine is None:
        return
    reference = _replay_reference(node)
    if reference.state_dict() != node.engine.state_dict():
        report.identity_mismatches += 1


def _check_node_oracle(node, report: ClusterChaosReport) -> None:
    """The node's decision stream must match the reference spec."""
    if node.engine is None:
        return
    config = node.config
    events = []
    for op in node.op_log:
        if op[0] == "get":
            events.append(("get", op[1]))
        elif op[0] == "put":
            events.append(("put", op[1]))
        else:
            events.append(("delete", op[1]))
    pair = build_shard_pair(
        config["policy"],
        capacity=config["capacity_entries"],
        seed=config["seed"],
        components=config["components"],
    )
    divergence = run_differential(pair, events, seed=config["seed"])
    if divergence is not None:
        report.oracle_divergences.append(divergence)


def _restore_all(cluster: ClusterKVCache,
                 report: ClusterChaosReport) -> None:
    """Heal partitions and recover crashes, byte-checking each member
    as it comes back (before peer catch-up muddies the waters)."""
    controller, view = cluster.controller, cluster.view
    for node_id in view.node_ids():
        if view.status(node_id) == "partitioned":
            controller.heal(node_id)
    for node_id in view.node_ids():
        if view.status(node_id) == "down":
            controller.recover(node_id, readmit=False)
            report.recoveries += 1
            _check_node_identity(cluster.nodes[node_id], report)
            controller.readmit(node_id)


def _pressure_phase(plan: ClusterChaosPlan, directory: Optional[str],
                    report: ClusterChaosReport) -> None:
    """Chaos under eviction pressure: integrity and convergence."""
    cluster = _build_cluster(plan, directory, plan.capacity_per_node,
                             seed_salt=0)
    if plan.flaky_rate > 0 and plan.num_nodes > 1:
        cluster.nodes["n1"].fault = FlakyReplica(
            failure_rate=plan.flaky_rate, burst=plan.flaky_burst,
            seed=plan.seed + 13,
        )

    pick_rng = DeterministicRNG(plan.seed).fork(47)
    events: Dict[int, List[str]] = {}
    for kill_at in plan.kills:
        events.setdefault(kill_at, []).append("kill")
        events.setdefault(kill_at + plan.recover_after, []).append("recover")
    if plan.partition_at is not None:
        events.setdefault(plan.partition_at, []).append("partition")
        events.setdefault(
            plan.partition_at + plan.heal_after, []
        ).append("heal")

    written: Dict[int, Dict[int, tuple]] = {}
    latest_acked: Dict[int, int] = {}
    stream = cluster_stream(plan, plan.ops, salt=7)
    report.ops = len(stream)

    for index, (op, key) in enumerate(stream):
        for action in events.get(index, ()):
            _apply_event(cluster, action, pick_rng, report)
        if op == "put":
            value = ("v", key, index)
            try:
                version = cluster.put(key, value)
                latest_acked[key] = max(latest_acked.get(key, 0), version)
            except WriteQuorumError as error:
                version = error.version
            # Partial (un-acked) writes are legal replicas; their
            # versions are real and may legitimately be served.
            written.setdefault(key, {})[version] = value
        else:
            found, version, value, _consulted = cluster.get_details(key)
            if found:
                expected = written.get(key, {}).get(version)
                if expected is None or expected != value:
                    report.wrong_values += 1
                if version < latest_acked.get(key, 0):
                    report.stale_serves += 1

    for node in cluster.nodes.values():
        node.fault = None  # chaos is over; verdict sweeps run clean
    _restore_all(cluster, report)
    report.swept += cluster.repair_sweep()
    for key in sorted(cluster.view.resident_keys()):
        if cluster.view.divergent(key, plan.replication):
            report.divergent_after_repair += 1
    for node_id in cluster.view.node_ids():
        node = cluster.nodes[node_id]
        _check_node_identity(node, report)
        _check_node_oracle(node, report)

    stats = cluster.stats()
    report.reads = stats.reads
    report.read_hits = stats.read_hits
    report.acked_writes += stats.acked_writes
    report.failed_writes += stats.failed_writes
    report.hedged_reads += stats.hedged_reads
    report.hedge_wins += stats.hedge_wins
    report.read_repairs += stats.read_repairs
    cluster.close()


def _apply_event(cluster: ClusterKVCache, action: str,
                 rng: DeterministicRNG,
                 report: ClusterChaosReport) -> None:
    """One scheduled chaos action against a seeded member choice."""
    controller, view = cluster.controller, cluster.view
    if action == "kill":
        up = view.up_nodes()
        if len(up) > 1:
            controller.kill(up[rng.choice_index(len(up))])
            report.kills += 1
    elif action == "recover":
        for node_id in view.node_ids():
            if view.status(node_id) == "down":
                controller.recover(node_id)
                report.recoveries += 1
                break
    elif action == "partition":
        up = view.up_nodes()
        if len(up) > 1:
            controller.partition(up[rng.choice_index(len(up))])
            report.partitions += 1
    elif action == "heal":
        for node_id in view.node_ids():
            if view.status(node_id) == "partitioned":
                controller.heal(node_id)
                break
    else:  # pragma: no cover - plans only emit the four above
        raise ValueError(f"unknown chaos action {action!r}")


def _durability_phase(plan: ClusterChaosPlan, directory: Optional[str],
                      report: ClusterChaosReport) -> None:
    """No-eviction regime: acked writes must survive a single kill."""
    if plan.replication < 2 or plan.durable_ops <= 0:
        return
    key_space = plan.hot_keys
    cluster = _build_cluster(
        plan, directory, capacity=key_space + 8, seed_salt=1,
    )
    pick_rng = DeterministicRNG(plan.seed).fork(53)
    stream = cluster_stream(plan, plan.durable_ops, salt=11,
                            key_space=key_space)
    written: Dict[int, Dict[int, tuple]] = {}
    latest_acked: Dict[int, Tuple[int, tuple]] = {}

    for index, (op, key) in enumerate(stream):
        if index == plan.durable_partition_at:
            _apply_event(cluster, "partition", pick_rng, report)
        if index == plan.durable_kill_at:
            _apply_event(cluster, "kill", pick_rng, report)
        if op == "put":
            value = ("d", key, index)
            try:
                version = cluster.put(key, value)
                previous = latest_acked.get(key)
                if previous is None or version > previous[0]:
                    latest_acked[key] = (version, value)
                report.durable_acked += 1
            except WriteQuorumError as error:
                version = error.version
            written.setdefault(key, {})[version] = value
        else:
            found, version, value, _consulted = cluster.get_details(key)
            if found:
                expected = written.get(key, {}).get(version)
                if expected is None or expected != value:
                    report.wrong_values += 1

    _restore_all(cluster, report)
    report.swept += cluster.repair_sweep()

    for key, (acked_version, _value) in sorted(latest_acked.items()):
        found, version, value, _consulted = cluster.get_details(key)
        if not found or version < acked_version:
            report.lost_acked_writes += 1
            continue
        if written.get(key, {}).get(version) != value:
            report.wrong_values += 1

    stats = cluster.stats()
    report.acked_writes += stats.acked_writes
    report.failed_writes += stats.failed_writes
    report.read_repairs += stats.read_repairs
    cluster.close()


def cluster_chaos_campaign(plan: ClusterChaosPlan,
                           directory: Optional[str] = None
                           ) -> ClusterChaosReport:
    """Run both phases; see the module docstring for the model.

    Args:
        plan: the seeded campaign description.
        directory: persistence root; each phase's members live under
            their own subtree. ``None`` runs memory-only (crashed
            members then restart empty and rebuild from peers — the
            acked-write invariant still holds, via replication).

    Returns:
        The filled report; ``report.ok()`` is the verdict.
    """
    report = ClusterChaosReport()
    pressure_dir = durable_dir = None
    if directory is not None:
        pressure_dir = os.path.join(os.fspath(directory), "pressure")
        durable_dir = os.path.join(os.fspath(directory), "durable")
    _pressure_phase(plan, pressure_dir, report)
    _durability_phase(plan, durable_dir, report)
    return report
