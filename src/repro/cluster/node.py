"""One member of the simulated cache cluster.

A :class:`ClusterNode` wraps a single-shard
:class:`~repro.online.engine.AdaptiveKVCache` — optionally behind the
crash-safe :class:`~repro.online.persistence.PersistentKVCache`
(``RKVSNAP1`` snapshots + WAL) — and adds the three things the cluster
layer needs from a member:

* **Versioned records.** Values are stored as ``(version, value)``
  pairs; versions are issued by the router
  (:class:`~repro.cluster.cache.ClusterKVCache`) so replicas of the
  same key are comparable and read-repair can pick a winner.
* **Lifecycle.** A node is ``up``, ``down`` (crashed — its engine is
  gone, only its persistence directory survives), ``partitioned``
  (healthy but unreachable from the router) or ``rejoining``
  (recovered from disk, not yet readmitted to the ring). ``crash()``
  abandons the persistent wrapper *un-flushed*, exactly like the
  single-node chaos campaign kills: buffered WAL records die with the
  process.
* **An operation log.** Every applied engine operation is recorded in
  order, which is what lets the chaos campaign (a) replay each node's
  decision stream against the :mod:`repro.oracle` specs and (b) prove
  a recovered node is *byte-identical* to a reference engine that
  replayed exactly the persisted prefix.

Nodes are single-shard on purpose: sharding happens *across* nodes
now, and one shard per node keeps each node's event stream couplable
to one oracle :class:`~repro.oracle.spec.SpecCache`.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from repro.online.engine import AdaptiveKVCache
from repro.online.keyspace import key_fingerprint, shard_of
from repro.online.persistence import PersistentKVCache, recover

#: Node lifecycle states.
NODE_STATES = ("up", "down", "partitioned", "rejoining")


class NodeDownError(RuntimeError):
    """An operation reached a node whose process is dead."""


class ClusterNode:
    """One cluster member: a versioned, optionally durable cache node.

    Args:
        node_id: stable identifier (also the ring membership key).
        capacity_entries: entry capacity of the node's cache.
        policy: engine policy kind (``"adaptive"`` or a registry name).
        components: adaptive component policies.
        partial_bits: shadow-directory fingerprint width.
        seed: deterministic seed for the node's policy machinery.
        directory: persistence directory; ``None`` keeps the node
            memory-only (a crash then loses everything it held).
        snapshot_every: automatic snapshot cadence (persistent only).
        wal_flush_ops: WAL flush cadence (persistent only); the
            unflushed window is what a crash loses.
        latency: optional :class:`~repro.cluster.latency.LatencyModel`
            consulted by the router for hedging decisions.
        clock: monotonic time source for the engine (virtual in
            simulations).
        fault: optional callable ``(op, key) -> None`` invoked before
            every operation; raising makes the node misbehave (the
            flaky-replica chaos hook).
    """

    def __init__(
        self,
        node_id: str,
        capacity_entries: int = 64,
        policy: str = "adaptive",
        components: Sequence[str] = ("lru", "lfu"),
        partial_bits: Optional[int] = 16,
        seed: int = 0,
        directory: Optional[str] = None,
        snapshot_every: Optional[int] = 400,
        wal_flush_ops: int = 8,
        latency=None,
        clock: Callable[[], float] = None,
        fault: Optional[Callable] = None,
    ):
        self.node_id = node_id
        self.directory = None if directory is None else os.fspath(directory)
        self.snapshot_every = snapshot_every
        self.wal_flush_ops = wal_flush_ops
        self.latency = latency
        self.fault = fault
        self.status = "up"
        self._seed = seed
        self._clock = clock
        self._engine_kwargs = dict(
            capacity_entries=capacity_entries,
            num_shards=1,
            policy=policy,
            components=tuple(components),
            partial_bits=partial_bits,
            seed=seed,
        )
        #: Applied operations, in engine order: ``("get", key)``,
        #: ``("put", key, record)`` or ``("del", key, found)``.
        self.op_log: List[tuple] = []
        self.crashes = 0
        self.recoveries = 0
        self._boot(fresh=True)

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------

    def _boot(self, fresh: bool) -> None:
        """Build (or rebuild) the node's engine and wrapper."""
        self.engine = AdaptiveKVCache(
            clock=self._clock, **self._engine_kwargs
        )
        if self.directory is None:
            self.store = self.engine
        elif fresh:
            self.store = PersistentKVCache(
                self.engine,
                self.directory,
                snapshot_every=self.snapshot_every,
                wal_flush_ops=self.wal_flush_ops,
            )
        # else: recover() installs the store itself.

    @property
    def config(self) -> dict:
        """The engine configuration (reference-replay coordinates)."""
        return dict(self._engine_kwargs)

    def crash(self) -> None:
        """Kill the node: abandon the engine, buffered WAL and all.

        Models a process death: the persistent wrapper is dropped with
        its buffer *un-flushed* (records since the last flush die), the
        engine object is gone, and only the on-disk snapshot/WAL chain
        survives for :meth:`recover`.
        """
        if self.status == "down":
            return
        if isinstance(self.store, PersistentKVCache):
            # Release the file handle without flushing the buffer —
            # the un-durable window dies here, as it would in SIGKILL.
            self.store._wal.close()
        self.engine = None
        self.store = None
        self.status = "down"
        self.crashes += 1

    def recover_from_disk(self) -> int:
        """Rebuild the node from its own snapshot + WAL chain.

        Returns:
            The number of operations the recovered state covers (the
            persisted prefix length); the in-memory operation log is
            truncated to match, since operations in the lost window
            never survived the crash.

        Raises:
            RuntimeError: the node has no persistence directory.
        """
        if self.directory is None:
            raise RuntimeError(
                f"node {self.node_id!r} is memory-only; nothing to recover"
            )
        self.store = recover(
            self.directory,
            snapshot_every=self.snapshot_every,
            wal_flush_ops=self.wal_flush_ops,
            clock=self._clock,
        )
        self.engine = self.store.cache
        stats = self.engine.stats()
        recovered = stats.gets + stats.puts + stats.deletes
        self.op_log = self._prefix(recovered)
        self.status = "rejoining"
        self.recoveries += 1
        return len(self.op_log)

    def rebuild_empty(self) -> None:
        """Restart the node with a fresh, empty engine (memory-only
        members have nothing to recover from)."""
        self.op_log = []
        self._boot(fresh=True)
        self.status = "rejoining"
        self.recoveries += 1

    def _prefix(self, counted: int) -> List[tuple]:
        """The shortest op-log prefix covering ``counted`` counted ops.

        ``del`` of an absent key is logged but counted by no engine
        counter (and is a no-op on policy state), so the prefix walks
        until the *counted* operations reach the recovered total.
        """
        if counted <= 0:
            return []
        seen = 0
        for index, op in enumerate(self.op_log):
            if op[0] != "del" or op[2]:
                seen += 1
                if seen == counted:
                    return self.op_log[: index + 1]
        return list(self.op_log)

    def close(self) -> None:
        """Flush and release the persistent wrapper, if any."""
        if isinstance(self.store, PersistentKVCache):
            self.store.close()

    # ------------------------------------------------------------------
    # Versioned record operations
    # ------------------------------------------------------------------

    _MISS = object()

    def _check_serving(self, op: str, key) -> None:
        if self.status == "down" or self.engine is None:
            raise NodeDownError(f"node {self.node_id!r} is down")
        if self.fault is not None:
            self.fault(op, key)

    def get(self, key) -> Tuple[bool, Optional[tuple]]:
        """Policy-visible read: ``(found, (version, value))``."""
        self._check_serving("get", key)
        record = self.store.get(key, self._MISS)
        self.op_log.append(("get", key))
        if record is self._MISS:
            return False, None
        return True, record

    def put(self, key, version: int, value) -> None:
        """Store ``value`` under ``key`` at ``version``."""
        self._check_serving("put", key)
        record = (version, value)
        self.store.put(key, record)
        self.op_log.append(("put", key, record))

    def delete(self, key) -> bool:
        """Remove ``key``; True if it was resident."""
        self._check_serving("del", key)
        found = self.store.delete(key)
        self.op_log.append(("del", key, found))
        return found

    def peek(self, key) -> Tuple[bool, Optional[tuple]]:
        """Raw replica read: no policy events, nothing logged.

        The read-repair / convergence probe — observing a replica's
        contents must not perturb its replacement decisions, exactly
        like :meth:`~repro.online.shard.CacheShard.peek_stale` in the
        single-node resilience layer. Works on partitioned nodes (the
        *router* can't reach them; the observer can) but not on dead
        ones.
        """
        if self.status == "down" or self.engine is None:
            return False, None
        shard = self.engine.shards[
            shard_of(key_fingerprint(key), self.engine.num_shards)
        ]
        return shard.peek_stale(key)

    def resident_keys(self) -> list:
        """Keys resident on this node (no policy events)."""
        if self.status == "down" or self.engine is None:
            return []
        keys: list = []
        for shard in self.engine.shards:
            keys.extend(shard.resident_keys())
        return keys

    def stats(self):
        """The engine's merged counter snapshot (None when down)."""
        if self.engine is None:
            return None
        return self.engine.stats()

    def __repr__(self) -> str:
        return f"ClusterNode({self.node_id!r}, status={self.status!r})"
