"""A fault-tolerant distributed cache cluster over the online engine.

Routes keyspace fingerprints across a consistent-hash ring of
single-shard :class:`~repro.online.engine.AdaptiveKVCache` members
(optionally persistent), with N-way replication, write quorums,
versioned read-repair, hedged reads and crash/partition recovery. See
``docs/cluster.md`` for the architecture and the invariants the chaos
campaign enforces.
"""

from repro.cluster.cache import ClusterKVCache, WriteQuorumError
from repro.cluster.chaos import (
    ClusterChaosPlan,
    ClusterChaosReport,
    FlakyReplica,
    cluster_chaos_campaign,
    cluster_stream,
)
from repro.cluster.latency import LatencyModel, VirtualClock
from repro.cluster.network import ClusterController, ClusterView
from repro.cluster.node import NODE_STATES, ClusterNode, NodeDownError
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.stats import ClusterStats

__all__ = [
    "ClusterKVCache",
    "WriteQuorumError",
    "ClusterChaosPlan",
    "ClusterChaosReport",
    "FlakyReplica",
    "cluster_chaos_campaign",
    "cluster_stream",
    "LatencyModel",
    "VirtualClock",
    "ClusterController",
    "ClusterView",
    "ClusterNode",
    "NodeDownError",
    "NODE_STATES",
    "HashRing",
    "ClusterStats",
    "DEFAULT_VNODES",
]
