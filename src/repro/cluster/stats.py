"""Cluster-level counters, merged with per-node engine snapshots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.online.stats import KVCacheStats


@dataclass
class ClusterStats:
    """One snapshot of the router's counters plus every node's engine.

    Attributes:
        reads: cluster ``get`` requests served.
        read_hits: reads answered from some replica.
        read_misses: reads no consulted replica could answer.
        writes: cluster ``put`` requests issued.
        acked_writes: writes that reached the write quorum.
        failed_writes: writes that fell short of the quorum (the
            client was *not* acked; surviving partial replicas are
            legal — they carry real versions).
        hedged_reads: reads that consulted an extra replica because
            the primary's breaker was open, the primary was
            unreachable, or its latency sample blew the hedge budget.
        hedge_wins: hedged reads where the backup replica answered
            faster than the primary would have.
        read_repairs: stale or missing replica entries rewritten with
            the winning version during reads.
        unavailable: requests (read or write) that found no reachable
            replica at all.
        breaker_trips: circuit-breaker trips across node breakers.
        per_node: each member's merged
            :class:`~repro.online.stats.KVCacheStats` (None for a
            crashed node).
    """

    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    acked_writes: int = 0
    failed_writes: int = 0
    hedged_reads: int = 0
    hedge_wins: int = 0
    read_repairs: int = 0
    unavailable: int = 0
    breaker_trips: int = 0
    per_node: Dict[str, Optional[KVCacheStats]] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Fresh cluster-read hit fraction (0.0 when idle)."""
        return self.read_hits / self.reads if self.reads else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests that found a reachable replica."""
        total = self.reads + self.writes
        return (total - self.unavailable) / total if total else 1.0
