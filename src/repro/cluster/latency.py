"""Simulated time for the cluster: virtual clock and latency models.

The cluster is a *simulation* of a distributed cache, so time is
virtual: a :class:`VirtualClock` advances only when the router charges
it for a served request, and every node carries a seeded
:class:`LatencyModel` whose samples stand in for network + service
time. That keeps the whole stack deterministic — hedging decisions,
circuit-breaker cooldowns and TTLs all read the same injectable clock,
exactly like the ``clock=`` hooks the online engine already exposes —
while still letting tests model a slow replica (raise ``base``), a
tail-latency straggler (raise ``spike_rate``/``spike``), or a healthy
peer.
"""

from __future__ import annotations

from repro.utils.rng import DeterministicRNG


class VirtualClock:
    """A manually advanced monotonic clock (seconds are simulated)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move simulated time forward."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self._now += seconds


class LatencyModel:
    """Seeded per-request latency samples for one node.

    Most requests take ``base`` seconds; a ``spike_rate`` fraction
    take ``base + spike`` (the tail). Identical seeds give identical
    sample streams, so hedging behaviour is reproducible run to run.

    Args:
        base: common-case request latency, seconds.
        spike: extra latency a tail request pays, seconds.
        spike_rate: probability of a tail request.
        seed: deterministic seed.
    """

    def __init__(
        self,
        base: float = 0.001,
        spike: float = 0.05,
        spike_rate: float = 0.0,
        seed: int = 0,
    ):
        if base < 0 or spike < 0:
            raise ValueError("latencies must be >= 0")
        if not 0.0 <= spike_rate <= 1.0:
            raise ValueError(
                f"spike_rate must be in [0,1], got {spike_rate}"
            )
        self.base = base
        self.spike = spike
        self.spike_rate = spike_rate
        self._rng = DeterministicRNG(seed)
        self.samples = 0
        self.spikes = 0

    def sample(self) -> float:
        """One request's simulated latency."""
        self.samples += 1
        if self.spike_rate > 0.0 and self._rng.random() < self.spike_rate:
            self.spikes += 1
            return self.base + self.spike
        return self.base
