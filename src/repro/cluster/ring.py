"""Consistent-hash ring with virtual nodes.

The simulator shards *within* one engine by fingerprint high bits
(:func:`repro.online.keyspace.shard_of`); the cluster shards *across*
nodes with a consistent-hash ring so that membership changes move only
~K/n keys instead of rehashing everything. Each member contributes
``vnodes`` points to the ring (its virtual nodes), which smooths the
per-node load to within a few percent of uniform even for small
clusters; a key's *preference list* is the first N distinct members
clockwise from its fingerprint, which is where its N replicas live.

Ring points are themselves key fingerprints
(:func:`~repro.online.keyspace.key_fingerprint` of
``("vnode", node_id, index)``), so placement is deterministic across
processes — the same property the online engine relies on for
checkpoint/resume reproducibility.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.online.keyspace import key_fingerprint

#: Default virtual nodes per member. 64 points per node keeps the
#: largest-to-smallest arc ratio low enough that chi-square balance
#: tests over Zipf streams pass comfortably at 3-16 nodes.
DEFAULT_VNODES = 64


class HashRing:
    """A consistent-hash ring mapping fingerprints to member nodes.

    Args:
        vnodes: virtual nodes (ring points) per member.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        # Sorted parallel arrays: point fingerprints and their owners.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._members: set = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_node(self, node_id: str) -> None:
        """Add a member's virtual nodes to the ring."""
        if node_id in self._members:
            raise ValueError(f"node {node_id!r} is already on the ring")
        self._members.add(node_id)
        for index in range(self.vnodes):
            point = key_fingerprint(("vnode", node_id, index))
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, node_id)

    def remove_node(self, node_id: str) -> None:
        """Remove a member's virtual nodes from the ring."""
        if node_id not in self._members:
            raise KeyError(f"node {node_id!r} is not on the ring")
        self._members.discard(node_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node_id
        ]
        self._points = [point for point, _owner in keep]
        self._owners = [owner for _point, owner in keep]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        """Number of member nodes (not ring points)."""
        return len(self._members)

    def node_ids(self) -> List[str]:
        """Member node ids, sorted."""
        return sorted(self._members)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owners(self, fingerprint: int, n: int = 1) -> List[str]:
        """The preference list: first ``n`` distinct members clockwise.

        Args:
            fingerprint: a 64-bit key fingerprint.
            n: replicas wanted; capped at the member count.

        Returns:
            Up to ``n`` distinct node ids, in preference order. Empty
            when the ring has no members.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not self._points:
            return []
        n = min(n, len(self._members))
        start = bisect.bisect_right(self._points, fingerprint)
        owners: List[str] = []
        seen = set()
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                owners.append(owner)
                if len(owners) == n:
                    break
        return owners

    def primary(self, fingerprint: int) -> str:
        """The first owner clockwise of ``fingerprint``.

        Raises:
            LookupError: the ring is empty.
        """
        owners = self.owners(fingerprint, 1)
        if not owners:
            raise LookupError("the ring has no members")
        return owners[0]

    def assignment(self, fingerprints: Sequence[int],
                   n: int = 1) -> List[Tuple[str, ...]]:
        """Preference lists for a batch of fingerprints (test helper)."""
        return [tuple(self.owners(fp, n)) for fp in fingerprints]
