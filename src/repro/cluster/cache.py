"""The replicated cluster cache: routing, quorums, hedging, repair.

:class:`ClusterKVCache` is the client-facing router over a set of
:class:`~repro.cluster.node.ClusterNode` members arranged on a
consistent-hash :class:`~repro.cluster.ring.HashRing`:

* **Writes** go to the key's N-owner preference list and are **acked**
  only when at least ``write_quorum`` owners applied them; a write
  that falls short raises :class:`WriteQuorumError` (replicas that did
  apply it keep their versioned copies — they are real writes, just
  not acknowledged ones).
* **Reads** consult owners in preference order, stopping at the first
  replica that answers. A **hedged read** duplicates the request to
  the next replica when an owner's circuit breaker is open, the owner
  is unreachable, or its (simulated-clock) latency sample exceeds the
  hedge budget — the serving reply is whichever arrives first, so one
  straggler cannot drag the tail. The budget is either the static
  ``hedge_after`` constant or, with ``hedge_quantile`` set, **driven
  by live tail latency**: every sampled replica latency feeds a
  per-node :class:`~repro.serve.sketch.LatencySketch`, and the budget
  is ``hedge_margin`` times the *median* of the per-node p99s (median,
  not self-relative — a replica degraded by recovery or overload has
  a high p99 of its own, and comparing it to the healthy majority is
  what gets it hedged around automatically).
* **Read-repair** runs after every read: the key's resident replicas
  are *peeked* (no policy events) and any owner holding an older
  version than the winner is rewritten with it, so divergence created
  by partitions or missed writes converges during normal traffic. A
  replica missing the key entirely is left alone — re-inserting
  evicted entries on every read would fight the replacement policy;
  the rebalance sweep (rejoin, membership change) refills those.

Failures are tracked per node by the same
:class:`~repro.online.resilience.CircuitBreaker` the single-node
resilience layer uses (including its single-probe half-open), so a
dead or flaky member stops eating latency budget after a few failures
and hedges engage immediately.
"""

from __future__ import annotations

import os
import statistics
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.latency import LatencyModel, VirtualClock
from repro.cluster.network import ClusterController, ClusterView
from repro.cluster.node import ClusterNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.stats import ClusterStats
from repro.online.resilience import CircuitBreaker
from repro.serve.sketch import LatencySketch


class WriteQuorumError(RuntimeError):
    """A write reached fewer than ``write_quorum`` owners (not acked)."""

    def __init__(self, key, version: int, acks: int, quorum: int):
        super().__init__(
            f"write of {key!r} (version {version}) got {acks} ack(s), "
            f"quorum is {quorum}"
        )
        self.key = key
        self.version = version
        self.acks = acks
        self.quorum = quorum


class ClusterKVCache:
    """A fault-tolerant cache cluster behind one cache-shaped API.

    Args:
        num_nodes: initial member count (ids ``n0`` .. ``n{k-1}``).
        replication: replicas per key (capped at the member count).
        write_quorum: acks required before a write counts as acked;
            default is a majority of ``replication``.
        read_fanout: replicas consulted on a read before declaring a
            miss (first *found* reply is served; default 2).
        capacity_per_node: entry capacity of each member's cache.
        policy: per-node engine policy kind.
        components: adaptive component policies.
        partial_bits: shadow-directory fingerprint width.
        vnodes: virtual nodes per member on the ring.
        seed: base seed; node ``i`` seeds its machinery with
            ``seed + i``.
        directory: when given, every node persists under
            ``directory/<node_id>`` (snapshots + WAL) and can crash
            and recover; ``None`` keeps members memory-only.
        snapshot_every: per-node automatic snapshot cadence.
        wal_flush_ops: per-node WAL flush cadence (1 = every write
            durable before acked — what the CI SIGKILL smoke uses).
        hedge_after: static latency budget, simulated seconds; a
            primary sample above it triggers a hedged read. None
            disables latency hedging (breaker/unreachable hedging
            stays on) unless ``hedge_quantile`` takes over.
        hedge_quantile: when set (e.g. 0.99), the latency budget is
            driven by live tail latency instead of the constant:
            ``hedge_margin`` x the median of per-node sketch
            quantiles, over nodes with at least ``hedge_min_samples``
            samples. Until enough samples exist the static
            ``hedge_after`` (if any) applies.
        hedge_min_samples: samples a node's sketch needs before it
            votes into the dynamic budget.
        hedge_margin: multiplier on the median per-node quantile; the
            slack that separates "normal tail" from "straggler".
        latency_factory: ``node_index -> LatencyModel`` override; the
            default gives every node a uniform 1 ms model.
        breaker_factory: builds one node breaker; the default trips
            after 3 consecutive failures with a 5-simulated-second
            cooldown on the cluster clock.
        clock: the simulated clock; a fresh
            :class:`~repro.cluster.latency.VirtualClock` if omitted.
    """

    def __init__(
        self,
        num_nodes: int = 3,
        replication: int = 3,
        write_quorum: Optional[int] = None,
        read_fanout: int = 2,
        capacity_per_node: int = 64,
        policy: str = "adaptive",
        components: Sequence[str] = ("lru", "lfu"),
        partial_bits: Optional[int] = 16,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        directory: Optional[str] = None,
        snapshot_every: Optional[int] = 400,
        wal_flush_ops: int = 8,
        hedge_after: Optional[float] = None,
        hedge_quantile: Optional[float] = None,
        hedge_min_samples: int = 16,
        hedge_margin: float = 3.0,
        latency_factory: Optional[Callable[[int], LatencyModel]] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        clock: Optional[VirtualClock] = None,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        replication = min(replication, num_nodes)
        if write_quorum is None:
            write_quorum = replication // 2 + 1
        if not 1 <= write_quorum <= replication:
            raise ValueError(
                f"write_quorum must be in [1, {replication}], "
                f"got {write_quorum}"
            )
        if read_fanout < 1:
            raise ValueError(f"read_fanout must be >= 1, got {read_fanout}")
        if hedge_quantile is not None and not 0.0 < hedge_quantile < 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1), got {hedge_quantile}"
            )
        if hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {hedge_min_samples}"
            )
        if hedge_margin <= 0:
            raise ValueError(
                f"hedge_margin must be positive, got {hedge_margin}"
            )
        self.replication = replication
        self.write_quorum = write_quorum
        self.read_fanout = min(read_fanout, replication)
        self.hedge_after = hedge_after
        self.hedge_quantile = hedge_quantile
        self.hedge_min_samples = hedge_min_samples
        self.hedge_margin = hedge_margin
        #: Per-node sketches of sampled replica latencies (reads and
        #: writes both feed them); the source of the dynamic budget.
        self.latency_sketches: Dict[str, LatencySketch] = {}
        self.clock = clock if clock is not None else VirtualClock()
        if latency_factory is None:
            latency_factory = lambda index: LatencyModel(  # noqa: E731
                base=0.001, seed=seed + 7919 * index
            )
        if breaker_factory is None:
            breaker_factory = lambda: CircuitBreaker(  # noqa: E731
                failure_threshold=3, recovery_timeout=5.0, clock=self.clock
            )
        self._breaker_factory = breaker_factory

        self.ring = HashRing(vnodes=vnodes)
        self.nodes: Dict[str, ClusterNode] = {}
        for index in range(num_nodes):
            node_id = f"n{index}"
            node_dir = (
                None if directory is None
                else os.path.join(os.fspath(directory), node_id)
            )
            self.nodes[node_id] = ClusterNode(
                node_id,
                capacity_entries=capacity_per_node,
                policy=policy,
                components=components,
                partial_bits=partial_bits,
                seed=seed + index,
                directory=node_dir,
                snapshot_every=snapshot_every,
                wal_flush_ops=wal_flush_ops,
                latency=latency_factory(index),
                clock=self.clock,
            )
            self.ring.add_node(node_id)
        self.view = ClusterView(self.ring, self.nodes)
        self.controller = ClusterController(
            self.ring, self.nodes, replication, view=self.view
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            node_id: breaker_factory() for node_id in self.nodes
        }
        self._seq = 0
        self._stats = ClusterStats()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_version(self) -> int:
        self._seq += 1
        return self._seq

    def _breaker(self, node_id: str) -> CircuitBreaker:
        breaker = self.breakers.get(node_id)
        if breaker is None:
            breaker = self._breaker_factory()
            self.breakers[node_id] = breaker
        return breaker

    def _owners(self, key) -> List[str]:
        return self.view.owners(key, self.replication)

    def _observe_latency(self, node_id: str, latency: float) -> None:
        """Feed one sampled replica latency into the node's sketch."""
        sketch = self.latency_sketches.get(node_id)
        if sketch is None:
            sketch = self.latency_sketches[node_id] = LatencySketch()
        sketch.add(latency)

    def hedge_threshold(self) -> Optional[float]:
        """The latency budget a primary sample is judged against now.

        With ``hedge_quantile`` set and enough per-node samples:
        ``hedge_margin`` x the median of per-node sketch quantiles —
        the fleet's consensus of a normal tail, so one degraded
        replica cannot talk the budget up to its own slowness. Falls
        back to the static ``hedge_after`` until sketches warm up
        (and always, when ``hedge_quantile`` is None). ``None``
        disables latency hedging for the read.
        """
        if self.hedge_quantile is not None:
            tails = [
                sketch.quantile(self.hedge_quantile)
                for sketch in self.latency_sketches.values()
                if sketch.count >= self.hedge_min_samples
            ]
            if tails:
                return self.hedge_margin * statistics.median(tails)
        return self.hedge_after

    def _note_primary_hedge(self, position: int, hedged: bool) -> bool:
        """Count one hedged read, the single increment site.

        A read is *hedged* the first time its primary (position 0) is
        bypassed or duplicated — unreachable, breaker-refused, errored,
        or answering slower than the hedge budget. Returns the updated
        ``hedged`` flag; repeat calls on an already-hedged read are
        no-ops, so one read never counts twice.
        """
        if position == 0 and not hedged:
            self._stats.hedged_reads += 1
            return True
        return hedged

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(self, key, value) -> int:
        """Replicate ``value`` to the key's owners; ack on quorum.

        Returns:
            The version the write was issued at (acked).

        Raises:
            WriteQuorumError: fewer than ``write_quorum`` owners
                applied the write. Owners that did apply it keep their
                copies — the version is real, just unacknowledged.
        """
        owners = self._owners(key)
        self._stats.writes += 1
        version = self._next_version()
        acks = 0
        worst_latency = 0.0
        for node_id in owners:
            node = self.nodes[node_id]
            breaker = self._breaker(node_id)
            if not self.view.is_reachable(node_id):
                breaker.record_failure()
                continue
            if not breaker.allow():
                continue
            try:
                if node.latency is not None:
                    sample = node.latency.sample()
                    self._observe_latency(node_id, sample)
                    worst_latency = max(worst_latency, sample)
                node.put(key, version, value)
            except Exception:  # noqa: BLE001 — replica boundary
                breaker.record_failure()
                continue
            breaker.record_success()
            acks += 1
        self.clock.advance(worst_latency)
        if acks == 0 and not any(
            self.view.is_reachable(node_id) for node_id in owners
        ):
            self._stats.unavailable += 1
        if acks >= self.write_quorum:
            self._stats.acked_writes += 1
            return version
        self._stats.failed_writes += 1
        raise WriteQuorumError(key, version, acks, self.write_quorum)

    def delete(self, key) -> bool:
        """Remove ``key`` from every reachable owner."""
        removed = False
        for node_id in self._owners(key):
            if not self.view.is_reachable(node_id):
                continue
            try:
                removed = self.nodes[node_id].delete(key) or removed
            except Exception:  # noqa: BLE001 — replica boundary
                self._breaker(node_id).record_failure()
        return removed

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key, default=None):
        """Read ``key`` from the cluster (first found reply wins)."""
        found, _version, value, _consulted = self.get_details(key)
        return value if found else default

    def get_details(self, key) -> Tuple[bool, Optional[int], object, List[str]]:
        """Read with full provenance: (found, version, value, consulted).

        The mechanics behind :meth:`get`; chaos campaigns use the
        version and consulted-replica list for their invariants.
        """
        owners = self._owners(key)
        self._stats.reads += 1
        replies: List[Tuple[str, bool, Optional[tuple], float]] = []
        budget = self.read_fanout
        hedged = False
        # Pending hedge consults: a slow primary answers, but the
        # request is still duplicated to the next replica (ignoring
        # the usual stop-on-found), and the faster reply serves.
        pending_hedge = 0
        first_latency: Optional[float] = None
        for position, node_id in enumerate(owners):
            if pending_hedge == 0:
                if any(reply[1] for reply in replies):
                    break  # a found reply and no hedge outstanding
                if len(replies) >= budget:
                    break
            node = self.nodes[node_id]
            breaker = self._breaker(node_id)
            if not self.view.is_reachable(node_id):
                breaker.record_failure()
                hedged = self._note_primary_hedge(position, hedged)
                continue
            if not breaker.allow():
                hedged = self._note_primary_hedge(position, hedged)
                continue
            latency = (
                node.latency.sample() if node.latency is not None else 0.0
            )
            if node.latency is not None:
                self._observe_latency(node_id, latency)
            try:
                found, record = node.get(key)
            except Exception:  # noqa: BLE001 — replica boundary
                breaker.record_failure()
                hedged = self._note_primary_hedge(position, hedged)
                continue
            breaker.record_success()
            replies.append((node_id, found, record, latency))
            if position == 0:
                first_latency = latency
                threshold = self.hedge_threshold()
                if (threshold is not None
                        and latency > threshold and not hedged):
                    # Slow primary: duplicate the request to the next
                    # replica even though the primary did answer.
                    hedged = self._note_primary_hedge(position, hedged)
                    pending_hedge = 1
            elif pending_hedge > 0:
                pending_hedge -= 1

        consulted = [reply[0] for reply in replies]
        found_replies = [reply for reply in replies if reply[1]]
        if not replies and not any(
            self.view.is_reachable(node_id) for node_id in owners
        ):
            self._stats.unavailable += 1
        if found_replies:
            # Served by whichever found reply arrives first.
            serving = min(found_replies, key=lambda reply: reply[3])
            self.clock.advance(serving[3])
            if hedged and first_latency is not None \
                    and serving[3] < first_latency:
                self._stats.hedge_wins += 1
            self._stats.read_hits += 1
            version, value = serving[2]
            self._read_repair(key, owners, version, value)
            return True, version, value, consulted
        if replies:
            self.clock.advance(max(reply[3] for reply in replies))
        self._stats.read_misses += 1
        self._repair_from_peers(key, owners)
        return False, None, None, consulted

    def _read_repair(self, key, owners: List[str], version: int,
                     value) -> None:
        """Converge owners holding an *older* version than the winner.

        Replicas are peeked (no policy events), so the scan itself
        never perturbs replacement decisions; only genuinely divergent
        owners take a converging write. The winner may itself be
        superseded by a peeked replica — then the newer record wins
        and the serving replica is repaired too.
        """
        best_version, best_value = version, value
        holders: List[Tuple[str, int]] = []
        for node_id in owners:
            node = self.nodes[node_id]
            if node.status == "down":
                continue
            found, record = node.peek(key)
            if not found:
                continue
            holders.append((node_id, record[0]))
            if record[0] > best_version:
                best_version, best_value = record
        for node_id, held_version in holders:
            if held_version >= best_version:
                continue
            if not self.view.is_reachable(node_id):
                continue
            try:
                self.nodes[node_id].put(key, best_version, best_value)
            except Exception:  # noqa: BLE001 — replica boundary
                self._breaker(node_id).record_failure()
                continue
            self._stats.read_repairs += 1

    def _repair_from_peers(self, key, owners: List[str]) -> None:
        """After a miss, still converge any divergent resident copies."""
        best: Optional[tuple] = None
        for node_id in owners:
            found, record = self.nodes[node_id].peek(key)
            if found and (best is None or record[0] > best[0]):
                best = record
        if best is not None:
            self._read_repair(key, owners, best[0], best[1])

    def get_or_compute(self, key, loader):
        """Read-through: on a cluster-wide miss, load and replicate.

        A quorum failure on the fill write does not fail the request —
        the computed value is returned regardless (and counted as a
        failed write); the next read simply misses again.
        """
        found, _version, value, _consulted = self.get_details(key)
        if found:
            return value
        value = loader(key)
        try:
            self.put(key, value)
        except WriteQuorumError:
            pass
        return value

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------

    def repair_sweep(self, keys=None) -> int:
        """Run the controller's converging rebalance (see
        :meth:`~repro.cluster.network.ClusterController.rebalance`)."""
        return self.controller.rebalance(keys)

    def stats(self) -> ClusterStats:
        """Router counters plus every member's engine snapshot."""
        snapshot = ClusterStats(
            reads=self._stats.reads,
            read_hits=self._stats.read_hits,
            read_misses=self._stats.read_misses,
            writes=self._stats.writes,
            acked_writes=self._stats.acked_writes,
            failed_writes=self._stats.failed_writes,
            hedged_reads=self._stats.hedged_reads,
            hedge_wins=self._stats.hedge_wins,
            read_repairs=self._stats.read_repairs,
            unavailable=self._stats.unavailable,
            breaker_trips=sum(
                breaker.trips for breaker in self.breakers.values()
            ),
            per_node=self.view.node_stats(),
        )
        return snapshot

    def close(self) -> None:
        """Flush and release every member's persistence, if any."""
        for node in self.nodes.values():
            if node.status != "down":
                node.close()

    def __enter__(self) -> "ClusterKVCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        """Distinct keys resident on at least one member."""
        return len(self.view.resident_keys())
