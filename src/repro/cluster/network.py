"""The cluster's MVC split: a mutating controller, a read-only view.

Mirrors the network MVC discipline of simulators like Icarus: all
*mutations* of cluster state (membership, lifecycle, data movement) go
through :class:`ClusterController`; all *observation* (statuses,
preference lists, replica contents, merged stats) goes through
:class:`ClusterView`, which never fires a policy event or moves a
byte. Placement strategies, chaos campaigns and experiments talk to
these two objects rather than to nodes directly, so a future strategy
(different replication discipline, hinted handoff, load-aware
placement) plugs in without touching the node layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.node import ClusterNode
from repro.cluster.ring import HashRing
from repro.online.keyspace import key_fingerprint
from repro.online.stats import KVCacheStats


class ClusterView:
    """Read-only observation of a cluster (no side effects, ever).

    Args:
        ring: the cluster's consistent-hash ring.
        nodes: all known members (ring members and departed ones),
            keyed by node id. The view never mutates either.
    """

    def __init__(self, ring: HashRing, nodes: Dict[str, ClusterNode]):
        self._ring = ring
        self._nodes = nodes

    # -- membership and reachability -----------------------------------

    def node_ids(self) -> List[str]:
        """All known member ids, sorted."""
        return sorted(self._nodes)

    def ring_members(self) -> List[str]:
        """Ids currently owning ring ranges."""
        return self._ring.node_ids()

    def status(self, node_id: str) -> str:
        """Lifecycle state of one member."""
        return self._nodes[node_id].status

    def is_reachable(self, node_id: str) -> bool:
        """Whether the router may send requests to this member."""
        return self._nodes[node_id].status == "up"

    def up_nodes(self) -> List[str]:
        """Ids of members currently serving."""
        return [nid for nid in sorted(self._nodes)
                if self._nodes[nid].status == "up"]

    # -- placement ------------------------------------------------------

    def owners(self, key, n: int) -> List[str]:
        """The key's preference list (reachability *not* applied)."""
        return self._ring.owners(key_fingerprint(key), n)

    def replica_map(self, key, n: Optional[int] = None
                    ) -> Dict[str, Optional[tuple]]:
        """Each owner's raw record for ``key`` (peek — no events).

        Args:
            key: the key to probe.
            n: preference-list length; default all ring members.

        Returns:
            ``{node_id: (version, value) or None}`` over the key's
            owners; a crashed owner maps to None.
        """
        n = len(self._ring) if n is None else n
        out: Dict[str, Optional[tuple]] = {}
        for nid in self.owners(key, n):
            found, record = self._nodes[nid].peek(key)
            out[nid] = record if found else None
        return out

    def divergent(self, key, n: Optional[int] = None) -> bool:
        """Whether the key's resident replicas disagree on version."""
        versions = {
            record[0]
            for record in self.replica_map(key, n).values()
            if record is not None
        }
        return len(versions) > 1

    def resident_keys(self) -> set:
        """Union of keys resident on any non-crashed member."""
        keys: set = set()
        for node in self._nodes.values():
            keys.update(node.resident_keys())
        return keys

    # -- statistics -----------------------------------------------------

    def node_stats(self) -> Dict[str, Optional[KVCacheStats]]:
        """Each member's merged engine counters (None when down)."""
        return {nid: self._nodes[nid].stats() for nid in sorted(self._nodes)}

    def describe(self) -> str:
        """A human-readable membership table."""
        lines = ["node      status       ring  entries"]
        for nid in sorted(self._nodes):
            node = self._nodes[nid]
            stats = node.stats()
            occupancy = "-" if stats is None else str(stats.occupancy)
            on_ring = "yes" if nid in self._ring else "no"
            lines.append(
                f"{nid:<9} {node.status:<12} {on_ring:<5} {occupancy}"
            )
        return "\n".join(lines)


class ClusterController:
    """All cluster mutations: membership, lifecycle, data movement.

    Args:
        ring: the ring to administer.
        nodes: the member table to administer.
        replication: replica count data movement maintains.
        view: the read-only view used for observation (built over the
            same ring/nodes if omitted).
    """

    def __init__(
        self,
        ring: HashRing,
        nodes: Dict[str, ClusterNode],
        replication: int,
        view: Optional[ClusterView] = None,
    ):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self._ring = ring
        self._nodes = nodes
        self.replication = replication
        self.view = view if view is not None else ClusterView(ring, nodes)

    # -- membership -----------------------------------------------------

    def join(self, node: ClusterNode, rebalance: bool = True) -> int:
        """Admit a node to the cluster and ring.

        Args:
            node: the member to add; its id must be new.
            rebalance: copy the keys the new node now owns onto it.

        Returns:
            Keys moved by the post-join rebalance (0 when skipped).
        """
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} already joined")
        self._nodes[node.node_id] = node
        node.status = "up"
        self._ring.add_node(node.node_id)
        return self.rebalance() if rebalance else 0

    def leave(self, node_id: str, drain: bool = True) -> int:
        """Gracefully remove a node from the ring.

        Args:
            node_id: the departing member.
            drain: first copy its residents to their new owners, so a
                planned departure loses nothing.

        Returns:
            Keys drained to new owners.
        """
        node = self._nodes[node_id]
        keys = list(node.resident_keys()) if drain else []
        self._ring.remove_node(node_id)
        moved = self.rebalance(keys) if keys else 0
        del self._nodes[node_id]
        node.close()
        return moved

    # -- lifecycle ------------------------------------------------------

    def kill(self, node_id: str) -> None:
        """Crash a node (process death; see
        :meth:`~repro.cluster.node.ClusterNode.crash`). The node stays
        on the ring — it is expected back, and routing around it is
        the router's job."""
        self._nodes[node_id].crash()

    def partition(self, node_id: str) -> None:
        """Cut a healthy node off from the router (it keeps serving
        nothing but keeps its state — the classic partition)."""
        node = self._nodes[node_id]
        if node.status != "up":
            raise RuntimeError(
                f"cannot partition node in state {node.status!r}"
            )
        node.status = "partitioned"

    def heal(self, node_id: str) -> None:
        """Reconnect a partitioned node."""
        node = self._nodes[node_id]
        if node.status != "partitioned":
            raise RuntimeError(f"cannot heal node in state {node.status!r}")
        node.status = "up"

    def recover(self, node_id: str, readmit: bool = True) -> int:
        """Bring a crashed node back from its own snapshot + WAL.

        The node rebuilds from its persistence directory (or restarts
        empty when memory-only), then — with ``readmit`` — a rebalance
        refills whatever the recovered prefix is missing from its
        peers' replicas before the node serves again. Ring membership
        never lapsed, so no ranges moved.

        Returns:
            Operations the recovered state covers (0 for an empty
            restart).
        """
        node = self._nodes[node_id]
        if node.status != "down":
            raise RuntimeError(f"cannot recover node in state {node.status!r}")
        if node.directory is not None:
            recovered = node.recover_from_disk()
        else:
            node.rebuild_empty()
            recovered = 0
        if readmit:
            self.readmit(node_id)
        return recovered

    def readmit(self, node_id: str) -> int:
        """Promote a rejoining node to serving, after peer catch-up.

        Returns:
            Keys copied onto the node by the catch-up rebalance.
        """
        node = self._nodes[node_id]
        if node.status != "rejoining":
            raise RuntimeError(f"cannot readmit node in state {node.status!r}")
        node.status = "up"
        return self.rebalance()

    # -- data movement --------------------------------------------------

    def _winner(self, key) -> Optional[Tuple[int, object]]:
        """Highest-version record for ``key`` on any non-down member."""
        best: Optional[Tuple[int, object]] = None
        for node in self._nodes.values():
            found, record = node.peek(key)
            if found and (best is None or record[0] > best[0]):
                best = record
        return best

    def rebalance(self, keys: Optional[Iterable] = None) -> int:
        """Converge replica placement for ``keys`` (default: all).

        For every key, the highest-version record held by any
        non-crashed member is copied to each reachable owner that is
        missing it or holds an older version. This is the sweep form
        of read-repair: it converges divergent replicas, refills a
        rejoined node, and moves ownership after membership changes.
        Non-owner holders keep their (correct, versioned) copies —
        they are cache entries and will age out under pressure.

        Returns:
            Replica copies written.
        """
        if keys is None:
            keys = self.view.resident_keys()
        moved = 0
        for key in keys:
            best = self._winner(key)
            if best is None:
                continue
            for nid in self.view.owners(key, self.replication):
                node = self._nodes[nid]
                if node.status != "up":
                    continue
                found, record = node.peek(key)
                if not found or record[0] < best[0]:
                    try:
                        node.put(key, best[0], best[1])
                    except Exception:  # noqa: BLE001 — replica boundary
                        # A flaky or dying replica refuses the copy;
                        # the next sweep (or a read-repair) retries.
                        continue
                    moved += 1
        return moved
