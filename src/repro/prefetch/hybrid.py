"""Adaptive hybrid prefetching via usefulness history.

The direct analogue of the cache adaptivity scheme (Section 6 of the
paper): where the cache records which component policy *missed*, the
hybrid records which component prefetcher produced a *useless* prefetch
(evicted before use) versus a useful one, in the same sliding-window
history structure, and issues candidates only from the component with
the better recent record.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.history import BitVectorHistory, MissHistory
from repro.prefetch.base import Prefetcher, PrefetchRequest


class AdaptiveHybridPrefetcher(Prefetcher):
    """Adapts over N component prefetchers by recent usefulness.

    Every component observes every demand access (so all stay trained),
    but only the currently-best component's candidates are issued. The
    issuing engine reports back each prefetch's fate through
    :meth:`record_outcome`; a useless prefetch is the analogue of a miss
    in the cache scheme's history.

    Args:
        components: component prefetchers, order = tie-break priority.
        history: usefulness history; defaults to a 32-event window.
        probation: issue *all* components' candidates for the first
            ``probation`` observations so each accumulates a record
            before selection narrows (the cache scheme gets this for
            free because shadow tags always run; prefetch outcomes only
            exist for issued prefetches).
    """

    name = "adaptive-hybrid"

    def __init__(
        self,
        components: Sequence[Prefetcher],
        history: Optional[MissHistory] = None,
        probation: int = 512,
    ):
        if len(components) < 2:
            raise ValueError(
                f"hybrid needs at least 2 components, got {len(components)}"
            )
        if probation < 0:
            raise ValueError(f"probation must be >= 0, got {probation}")
        self.components = list(components)
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"component names must be unique, got {names}")
        self._index = {c.name: i for i, c in enumerate(self.components)}
        self.history = history or BitVectorHistory(
            len(self.components), window=32
        )
        self.probation = probation
        self.observations = 0
        self.name = "adaptive(" + "+".join(names) + ")"

    def selected_component(self) -> int:
        """Index of the component whose candidates are issued."""
        return self.history.best_component()

    def observe(self, block: int, was_hit: bool) -> List[PrefetchRequest]:
        self.observations += 1
        all_candidates = [
            component.observe(block, was_hit) for component in self.components
        ]
        if self.observations <= self.probation:
            return [r for candidates in all_candidates for r in candidates]
        return all_candidates[self.selected_component()]

    def record_outcome(self, request: PrefetchRequest, useful: bool) -> None:
        """Report the fate of an issued prefetch.

        A useless prefetch counts as a "miss" against its source in the
        history; a useful one counts as a miss against everyone else —
        so the score ranks components by recent usefulness, mirroring
        how decisive cache misses rank policies.
        """
        source = self._index.get(request.source)
        if source is None:
            return  # a candidate from a component since removed; ignore
        if useful:
            event = [True] * len(self.components)
            event[source] = False
        else:
            event = [False] * len(self.components)
            event[source] = True
        self.history.record(event)

    def reset(self) -> None:
        for component in self.components:
            component.reset()
        self.observations = 0
