"""Next-line (sequential) prefetching."""

from __future__ import annotations

from typing import List

from repro.prefetch.base import Prefetcher, PrefetchRequest


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential lines on a demand miss.

    The simplest useful prefetcher: ideal for streaming sweeps, pure
    pollution for pointer chasing — which is exactly the spread of
    behaviours a hybrid needs to adjudicate.
    """

    name = "nextline"

    def __init__(self, degree: int = 1, on_hit_too: bool = False):
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.degree = degree
        self.on_hit_too = on_hit_too

    def observe(self, block: int, was_hit: bool) -> List[PrefetchRequest]:
        if was_hit and not self.on_hit_too:
            return []
        return [
            PrefetchRequest(block + i, self.name)
            for i in range(1, self.degree + 1)
        ]
