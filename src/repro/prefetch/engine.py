"""The prefetch issuing engine: a cache wrapped with a prefetcher.

Keeps the cache itself prefetch-agnostic (as the real hardware's data
array is): the engine filters candidates, installs prefetched lines
through the normal fill path, tracks each prefetched line until it is
either referenced (useful) or evicted untouched (useless), and feeds
those outcomes back to adaptive hybrids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.prefetch.base import Prefetcher, PrefetchRequest
from repro.prefetch.hybrid import AdaptiveHybridPrefetcher


@dataclass
class PrefetchStats:
    """Demand-side and prefetch-side counters.

    ``demand_misses`` is the figure of merit: prefetching exists to
    reduce it. ``useful``/``useless`` classify completed prefetches;
    pending ones (still resident, untouched) are in neither bucket yet.
    """

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    issued: int = 0
    useful: int = 0
    useless: int = 0

    @property
    def accuracy(self) -> float:
        """useful / completed prefetches; 0.0 before any complete."""
        completed = self.useful + self.useless
        return self.useful / completed if completed else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses covered by prefetches."""
        would_miss = self.demand_misses + self.useful
        return self.useful / would_miss if would_miss else 0.0

    @property
    def demand_miss_ratio(self) -> float:
        """demand misses / demand accesses."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def mpki(self, instructions: int) -> float:
        """Demand misses per thousand instructions."""
        if instructions <= 0:
            raise ValueError(f"instructions must be positive, got {instructions}")
        return 1000.0 * self.demand_misses / instructions


class PrefetchingCache:
    """A set-associative cache fronted by a prefetcher.

    Args:
        cache: the underlying cache (its ``stats`` will include
            prefetch fills; use :attr:`stats` for demand-only numbers).
        prefetcher: candidate generator; adaptive hybrids additionally
            receive per-prefetch usefulness feedback.
        degree_budget: maximum prefetches issued per demand access.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        prefetcher: Prefetcher,
        degree_budget: int = 4,
    ):
        if degree_budget <= 0:
            raise ValueError(f"degree_budget must be positive, got {degree_budget}")
        self.cache = cache
        self.prefetcher = prefetcher
        self.degree_budget = degree_budget
        self.stats = PrefetchStats()
        # (set_index, tag) -> the request that brought the line in.
        self._pending: Dict[Tuple[int, int], PrefetchRequest] = {}

    def _report(self, request: PrefetchRequest, useful: bool) -> None:
        if useful:
            self.stats.useful += 1
        else:
            self.stats.useless += 1
        if isinstance(self.prefetcher, AdaptiveHybridPrefetcher):
            self.prefetcher.record_outcome(request, useful)

    def _note_eviction(self, set_index: int, evicted_tag) -> None:
        if evicted_tag is None:
            return
        request = self._pending.pop((set_index, evicted_tag), None)
        if request is not None:
            self._report(request, useful=False)

    def access(self, address: int, is_write: bool = False):
        """One demand access; returns the underlying AccessResult."""
        config = self.cache.config
        self.stats.demand_accesses += 1
        result = self.cache.access(address, is_write)
        key = (result.set_index, config.tag(address))
        if result.hit:
            self.stats.demand_hits += 1
            request = self._pending.pop(key, None)
            if request is not None:
                self._report(request, useful=True)
        else:
            self.stats.demand_misses += 1
            self._note_eviction(result.set_index, result.evicted_tag)

        block = config.block_address(address)
        candidates = self.prefetcher.observe(block, result.hit)
        issued = 0
        for request in candidates:
            if issued >= self.degree_budget:
                break
            prefetch_address = request.block << config.offset_bits
            if self.cache.contains(prefetch_address):
                continue
            fill = self.cache.access(prefetch_address)
            self._note_eviction(fill.set_index, fill.evicted_tag)
            self._pending[(fill.set_index, config.tag(prefetch_address))] = \
                request
            self.stats.issued += 1
            issued += 1
        return result

    def pending_prefetches(self) -> int:
        """Prefetched lines still resident and untouched."""
        return len(self._pending)
