"""Region-based stride prefetching."""

from __future__ import annotations

from typing import Dict, List

from repro.prefetch.base import Prefetcher, PrefetchRequest


class _RegionEntry:
    """Stride-detection state for one address region."""

    __slots__ = ("last_block", "stride", "confidence")

    def __init__(self, block: int):
        self.last_block = block
        self.stride = 0
        self.confidence = 0


class StridePrefetcher(Prefetcher):
    """Detects constant strides within address regions.

    Without per-instruction PCs in the L2-visible stream, strides are
    learned per *region* (the high bits of the block address), the way
    stream-buffer style prefetchers do. Two consecutive accesses to a
    region with the same delta train the entry; once confidence reaches
    the threshold, the prefetcher runs ``degree`` strides ahead.
    """

    name = "stride"

    def __init__(
        self,
        region_bits: int = 8,
        table_entries: int = 64,
        degree: int = 2,
        confidence_threshold: int = 2,
    ):
        if region_bits <= 0 or table_entries <= 0 or degree <= 0:
            raise ValueError("region_bits, table_entries and degree must be "
                             "positive")
        if confidence_threshold <= 0:
            raise ValueError("confidence_threshold must be positive")
        self.region_bits = region_bits
        self.table_entries = table_entries
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self._table: Dict[int, _RegionEntry] = {}
        self._lru = 0
        self._use: Dict[int, int] = {}

    def observe(self, block: int, was_hit: bool) -> List[PrefetchRequest]:
        region = block >> self.region_bits
        self._lru += 1
        self._use[region] = self._lru
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.table_entries:
                victim = min(self._table, key=lambda r: self._use.get(r, 0))
                del self._table[victim]
                self._use.pop(victim, None)
            self._table[region] = _RegionEntry(block)
            return []

        delta = block - entry.last_block
        entry.last_block = block
        if delta == 0:
            return []
        if delta == entry.stride:
            entry.confidence = min(entry.confidence + 1, 4)
        else:
            entry.stride = delta
            entry.confidence = 1
        if entry.confidence < self.confidence_threshold:
            return []
        return [
            PrefetchRequest(block + i * entry.stride, self.name)
            for i in range(1, self.degree + 1)
            if block + i * entry.stride >= 0
        ]

    def reset(self) -> None:
        self._table.clear()
        self._use.clear()
        self._lru = 0
