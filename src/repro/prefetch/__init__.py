"""Adaptive hybrid prefetching — the paper's Section 6 future work.

The conclusions propose extending the adaptivity scheme to hybrid
hardware prefetchers, with "hit/miss replaced by useful/not-useful
prefetch". This package realizes that: component prefetchers (next-line
and stride) generate candidate prefetches, a usefulness history — the
same sliding-window machinery as the cache's miss history — scores each
component, and the hybrid issues only the currently-better component's
prefetches.
"""

from repro.prefetch.base import Prefetcher, PrefetchRequest
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.hybrid import AdaptiveHybridPrefetcher
from repro.prefetch.engine import PrefetchingCache, PrefetchStats

__all__ = [
    "Prefetcher",
    "PrefetchRequest",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "AdaptiveHybridPrefetcher",
    "PrefetchingCache",
    "PrefetchStats",
]
