"""The prefetcher interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PrefetchRequest:
    """One candidate prefetch.

    Attributes:
        block: line-granular address to fetch.
        source: name of the component prefetcher that proposed it (the
            hybrid uses this to attribute usefulness).
    """

    block: int
    source: str


class Prefetcher(abc.ABC):
    """Base class for hardware prefetchers.

    A prefetcher observes the demand-access stream at line granularity
    and proposes blocks to fetch ahead of need. Proposals are
    *candidates*: the issuing engine applies its own budget and filters
    (already-resident, in-flight) before touching the cache.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def observe(self, block: int, was_hit: bool) -> List[PrefetchRequest]:
        """React to a demand access to ``block``; return candidates."""

    def reset(self) -> None:
        """Clear learned state. Default: no-op."""
