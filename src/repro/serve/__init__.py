"""Open-loop serving: asyncio front-end, load shedding, tail-latency SLOs.

The closed-loop benchmarks (``BENCH_perf.json``) measure how fast the
cache goes when the driver waits for every answer. Production serving
is *open-loop*: arrivals are independent of service rate, and the
number that matters is tail latency under overload and partial failure.
This package provides that measurement:

* :mod:`repro.serve.vloop` — a deterministic virtual-time asyncio event
  loop, so minutes of simulated traffic replay in milliseconds and a
  fixed seed reproduces byte-identical reports;
* :mod:`repro.serve.sketch` — a streaming log-bucketed percentile
  sketch with a bounded relative error, plus an exact-quantile
  reference;
* :mod:`repro.serve.front` — the asyncio serving front: bounded
  in-flight admission (load shedding), per-request deadlines, and the
  async resilient ladder of
  :meth:`~repro.online.resilience.ResilientKVCache.aget_or_compute`;
* :mod:`repro.serve.harness` — the five-regime SLO harness (steady,
  overload, degraded, live recovery under traffic, tiered front)
  behind ``repro-experiments ext-serve`` and the committed
  ``BENCH_serve.json``.

Request streams come from the load-generator layer in
:mod:`repro.workloads.keystreams` (Poisson/MMPP arrivals, Zipf
popularity, YCSB mixes, beta client skew, trace-driven replay).
"""

from repro.serve.front import AsyncServingFront, RequestShed, RequestTimeout
from repro.serve.harness import (
    RegimePlan,
    RegimeReport,
    ServeReport,
    default_plans,
    run_regime,
    run_serve,
)
from repro.serve.sketch import LatencySketch, exact_quantile
from repro.serve.vloop import VirtualTimeEventLoop
