"""Streaming percentile sketch with a bounded relative error.

An SLO report needs p99/p999 over millions of request latencies without
holding them all. :class:`LatencySketch` is a log-bucketed quantile
sketch in the DDSketch style: values land in geometric buckets
``gamma^k``; any quantile read back is within a configured *relative*
error of the exact sample quantile — the right error model for
latencies, where p999 may be 1000x p50 and a fixed absolute error would
be either useless at the tail or wasteful at the median.

The guarantee (checked differentially in
``tests/serve/test_sketch.py`` against exact sorted quantiles on
adversarial distributions): for any quantile ``q`` over recorded values
``v >= min_value``,

    |sketch.quantile(q) - exact_quantile(values, q)|
        <= relative_error * exact_quantile(values, q).

Sketches over the same ``relative_error`` merge losslessly (bucket-wise
addition), so per-shard or per-regime sketches can be combined.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Exact lower-nearest-rank quantile of ``values``.

    The reference the sketch is tested against: the element at 0-based
    rank ``floor(q * (n - 1))`` of the sorted sample — the same rank
    convention the sketch's cumulative walk uses, so the two are
    directly comparable.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        raise ValueError("cannot take a quantile of no values")
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


class LatencySketch:
    """A mergeable log-bucketed quantile sketch.

    Args:
        relative_error: the quantile accuracy bound (default 1%).
        min_value: values at or below this collapse into a zero bucket
            reported as ``min_value`` — sub-resolution latencies are
            all "effectively instant".
    """

    def __init__(self, relative_error: float = 0.01,
                 min_value: float = 1e-9):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.relative_error = relative_error
        self.min_value = min_value
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Record one value (must be finite and >= 0)."""
        if not math.isfinite(value) or value < 0:
            raise ValueError(f"value must be finite and >= 0, got {value}")
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value <= self.min_value:
            self._zero += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        """Record every value in ``values``."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile, within ``relative_error`` of exact.

        The estimate is additionally clamped into the exact observed
        ``[min, max]`` range, so no estimate can fall outside the
        recorded sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("cannot take a quantile of an empty sketch")
        rank = int(q * (self.count - 1))
        if rank < self._zero:
            return min(self.min_value, self._max)
        cumulative = self._zero
        estimate = self.min_value
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            if cumulative > rank:
                # Midpoint (in relative terms) of (gamma^(k-1), gamma^k].
                estimate = (
                    2.0 * self._gamma ** key / (self._gamma + 1.0)
                )
                break
        return max(self._min, min(self._max, estimate))

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several quantiles at once."""
        return [self.quantile(q) for q in qs]

    def merge(self, other: "LatencySketch") -> None:
        """Fold ``other`` into this sketch (same accuracy config only)."""
        if (other.relative_error != self.relative_error
                or other.min_value != self.min_value):
            raise ValueError(
                "cannot merge sketches with different accuracy configs"
            )
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def __len__(self) -> int:
        """Number of recorded values."""
        return self.count

    def __repr__(self) -> str:
        return (
            f"LatencySketch(count={self.count}, "
            f"buckets={len(self._buckets)}, "
            f"relative_error={self.relative_error})"
        )
