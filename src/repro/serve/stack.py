"""Serving-stack construction for the SLO harness.

One :class:`RegimePlan` describes a regime as inert data; the builders
here turn it into the stack the harness drives — engine, loader, the
resilient ladder or the near/far tiered front, and the admission
front. The recovery regime gets its own builder pair:
:func:`seed_persistent` writes the crash-point state and
:func:`build_recovery_stack` reopens it as a
:class:`~repro.online.liverecovery.LiveRecoveringKVCache` to be
replayed *under traffic*. The measurement loop and reports live in
:mod:`repro.serve.harness`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from types import SimpleNamespace
from typing import List, Optional, Tuple

from repro.faults.online import AsyncFlakyLoader
from repro.online.engine import AdaptiveKVCache
from repro.online.liverecovery import LiveRecoveringKVCache
from repro.online.persistence import PersistentKVCache
from repro.online.resilience import (
    CircuitBreaker,
    LoaderUnavailable,
    ResilientKVCache,
    RetryBudget,
    RetryPolicy,
)
from repro.serve.front import AsyncServingFront
from repro.tiers.kv import tiered_front
from repro.workloads.keystreams import StreamSpec


def backend_value(key):
    """The deterministic backend: ground truth per key.

    Stale serves return an *old* value of the same key; with a
    deterministic backend old values equal current ones, so any
    mismatch a regime observes is a genuine wrong value (a lie), never
    mere staleness — the invariant ``wrong_values == 0`` rests on this.
    """
    return ("v", key)


@dataclass(frozen=True)
class RegimePlan:
    """One serving regime, as inert data.

    Attributes:
        name: regime label (report key).
        spec: the open-loop request stream.
        warmup: seconds of traffic before measurement starts (cache
            fill; excluded from every reported number).
        duration: measured seconds.
        concurrency: parallel service slots.
        max_pending: in-flight bound (arrivals beyond it are shed).
        deadline: per-request sojourn deadline, seconds.
        service_time: in-slot cost paid by every request (hit or miss).
        miss_latency: backend service time awaited per loader call.
        spike_latency / spike_rate: extra seeded latency spikes.
        failure_rate / burst: seeded loader failures (brown-outs).
        capacity_entries / num_shards / components: engine geometry.
        ttl: entry TTL, seconds (None = no expiry; the degraded regime
            needs one so stale serving is reachable).
        retry_attempts / retry_backoff / retry_budget_tokens: the
            retry schedule and the shared retry-token pool.
        breaker_threshold / breaker_timeout: per-shard breaker tuning.
        quarantine_shards / quarantine_at / rebuild_at: the chaos
            schedule — shards taken out of service at ``quarantine_at``
            (virtual seconds from stream start) and rebuilt empty at
            ``rebuild_at``.
        front: ``"resilient"`` (the default stack) or ``"tiered"``
            (the near/far :func:`~repro.tiers.kv.tiered_front` behind
            the same admission front).
        near_capacity: near-shard entry capacity for the tiered front.
        recover_ops: when > 0 this is a *recovery* regime — a
            persistent cache is seeded with this many requests from the
            stream's own prefix, killed, and restarted through live WAL
            replay while the stream serves. Recovery plans should keep
            ``ttl=None`` and ``failure_rate=0`` so the end-of-regime
            digest check against stop-the-world recovery is exact
            (stale serving and degradation mutate engine counters the
            reference replay never sees).
        replay_chunk_ops / replay_interval: WAL records replayed per
            background step, and the virtual seconds between steps.
        seed: master seed (stream and loader fork from it).
    """

    name: str
    spec: StreamSpec
    warmup: float = 1.0
    duration: float = 3.0
    concurrency: int = 8
    max_pending: Optional[int] = 256
    deadline: Optional[float] = 0.1
    service_time: float = 0.001
    miss_latency: float = 0.005
    spike_latency: float = 0.0
    spike_rate: float = 0.0
    failure_rate: float = 0.0
    burst: int = 0
    capacity_entries: int = 256
    num_shards: int = 8
    components: Tuple[str, ...] = ("lru", "lfu")
    ttl: Optional[float] = None
    retry_attempts: int = 3
    retry_backoff: float = 0.005
    retry_budget_tokens: Optional[int] = 32
    breaker_threshold: int = 5
    breaker_timeout: float = 0.5
    quarantine_shards: Tuple[int, ...] = ()
    quarantine_at: Optional[float] = None
    rebuild_at: Optional[float] = None
    front: str = "resilient"
    near_capacity: int = 64
    recover_ops: int = 0
    replay_chunk_ops: int = 200
    replay_interval: float = 0.04
    seed: int = 0


def default_plans(quick: bool = False, seed: int = 0) -> List[RegimePlan]:
    """The five standard regimes, at bench (full) or CI (quick) scale.

    Capacity with the default knobs is roughly
    ``concurrency / (service_time + miss_ratio * miss_latency)`` ~= a
    few thousand requests/second; steady offers well under half of it,
    overload several times it.
    """
    warmup = 1.0 if quick else 2.0
    duration = 1.5 if quick else 5.0
    steady = RegimePlan(
        name="steady",
        spec=StreamSpec(rate=1500.0, universe=512, alpha=1.0, mix="B",
                        clients=16, seed=seed),
        warmup=warmup,
        duration=duration,
        concurrency=8,
        max_pending=256,
        deadline=0.1,
        spike_latency=0.04,
        spike_rate=0.02,
        seed=seed,
    )
    overload = RegimePlan(
        name="overload",
        spec=StreamSpec(rate=2500.0, universe=512, alpha=1.0, mix="C",
                        clients=16, process="mmpp", burst_rate=8000.0,
                        mean_dwell=1.0, burst_dwell=0.5, seed=seed + 1),
        warmup=warmup,
        duration=duration,
        concurrency=4,
        max_pending=64,
        deadline=0.05,
        spike_latency=0.05,
        spike_rate=0.05,
        seed=seed + 1,
    )
    chaos_at = warmup + 0.2 * duration
    rebuild_at = warmup + 0.7 * duration
    degraded = RegimePlan(
        name="degraded",
        spec=StreamSpec(rate=1500.0, universe=512, alpha=1.0, mix="B",
                        clients=16, seed=seed + 2),
        warmup=warmup,
        duration=duration,
        concurrency=8,
        max_pending=256,
        deadline=0.1,
        failure_rate=0.15,
        burst=6,
        ttl=1.0,
        retry_budget_tokens=4,
        breaker_threshold=5,
        breaker_timeout=0.25,
        quarantine_shards=(1, 5),
        quarantine_at=chaos_at,
        rebuild_at=rebuild_at,
        seed=seed + 2,
    )
    # Sized so replay (~chunk/interval records per virtual second)
    # finishes inside the measured window: the report sees both the
    # degraded replay phase and the recovered steady state.
    recovery = RegimePlan(
        name="recovery",
        spec=StreamSpec(rate=1500.0, universe=512, alpha=1.0, mix="B",
                        clients=16, seed=seed + 3),
        warmup=0.0,
        duration=duration,
        concurrency=8,
        max_pending=256,
        deadline=0.1,
        ttl=None,
        failure_rate=0.0,
        recover_ops=3000 if quick else 8000,
        replay_chunk_ops=200,
        replay_interval=0.04,
        seed=seed + 3,
    )
    steady_tiered = RegimePlan(
        name="steady_tiered",
        spec=StreamSpec(rate=1500.0, universe=512, alpha=1.0, mix="B",
                        clients=16, seed=seed + 4),
        warmup=warmup,
        duration=duration,
        concurrency=8,
        max_pending=256,
        deadline=0.1,
        spike_latency=0.04,
        spike_rate=0.02,
        front="tiered",
        near_capacity=64,
        seed=seed + 4,
    )
    return [steady, overload, degraded, recovery, steady_tiered]


class _TieredResilient:
    """Adapts a :class:`~repro.tiers.kv.TieredKVCache` to the surface
    :class:`~repro.serve.front.AsyncServingFront` serves through.

    Probe the topology; on a total miss await the loader and write the
    value through (placement decides which tiers keep a copy). Loader
    failures surface as :class:`LoaderUnavailable` — the tier walk has
    no retry/stale ladder of its own.
    """

    def __init__(self, tiered):
        self.tiered = tiered
        self.breakers = ()

    async def aget_or_compute(self, key, loader, ttl=None,
                              retry_budget=None):
        result = self.tiered.get_detailed(key)
        if result.found:
            return result.value
        try:
            value = loader(key)
            if asyncio.iscoroutine(value):
                value = await value
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — loader boundary
            raise LoaderUnavailable(
                f"loader failed for key {key!r} behind the tiered front"
            ) from error
        self.tiered.put(key, value)
        return value

    def put(self, key, value, ttl=None, size=None) -> None:
        self.tiered.put(key, value)

    def stats(self):
        """Counter view shaped like the resilient stack's stats."""
        raw = self.tiered.stats()
        return SimpleNamespace(
            gets=raw["gets"],
            hits=raw["tier_hits"],
            stale_hits=0,
        )


def _build_engine(plan: RegimePlan, clock) -> AdaptiveKVCache:
    return AdaptiveKVCache(
        capacity_entries=plan.capacity_entries,
        num_shards=plan.num_shards,
        components=plan.components,
        default_ttl=plan.ttl,
        seed=plan.seed,
        clock=clock,
    )


def _build_loader(plan: RegimePlan) -> AsyncFlakyLoader:
    return AsyncFlakyLoader(
        backend_value,
        base_latency=plan.miss_latency,
        failure_rate=plan.failure_rate,
        burst=plan.burst,
        latency=plan.spike_latency,
        latency_rate=plan.spike_rate,
        seed=plan.seed + 13,
    )


def _resilient_over(cache, plan: RegimePlan, clock) -> ResilientKVCache:
    return ResilientKVCache(
        cache,
        retry=RetryPolicy(
            attempts=plan.retry_attempts,
            backoff=plan.retry_backoff,
            budget=plan.deadline,
        ),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=plan.breaker_threshold,
            recovery_timeout=plan.breaker_timeout,
            clock=clock,
        ),
        clock=clock,
    )


def _front_over(resilient, plan: RegimePlan) -> Tuple[
        AsyncServingFront, Optional[RetryBudget]]:
    budget = (
        RetryBudget(plan.retry_budget_tokens)
        if plan.retry_budget_tokens is not None else None
    )
    front = AsyncServingFront(
        resilient,
        concurrency=plan.concurrency,
        max_pending=plan.max_pending,
        deadline=plan.deadline,
        retry_budget=budget,
        service_time=plan.service_time,
    )
    return front, budget


def build_stack(plan: RegimePlan, clock) -> Tuple[
        AsyncServingFront, AsyncFlakyLoader, Optional[RetryBudget]]:
    """The serving stack (front, loader, budget) for one plan.

    ``plan.front == "tiered"`` swaps the resilient ladder for the
    near/far :func:`~repro.tiers.kv.tiered_front` behind the same
    admission front; recovery plans are built by
    :func:`build_recovery_stack` instead.
    """
    engine = _build_engine(plan, clock)
    if plan.front == "tiered":
        resilient = _TieredResilient(tiered_front(
            engine,
            near_capacity=plan.near_capacity,
            far_capacity=plan.capacity_entries,
            seed=plan.seed,
        ))
    elif plan.front == "resilient":
        resilient = _resilient_over(engine, plan, clock)
    else:
        raise ValueError(f"unknown front kind {plan.front!r}")
    loader = _build_loader(plan)
    front, budget = _front_over(resilient, plan)
    return front, loader, budget


def seed_persistent(plan: RegimePlan, directory: str, clock) -> int:
    """Seed ``directory`` with the stream's first ``recover_ops``
    requests through a :class:`PersistentKVCache`, then close it — the
    crash point live recovery restarts from. Returns the op count."""
    seeded = PersistentKVCache(
        _build_engine(plan, clock),
        directory,
        snapshot_every=None,  # leave the whole prefix in the WAL
        wal_flush_ops=1,
    )
    count = 0
    for request in plan.spec.requests():
        if count >= plan.recover_ops:
            break
        if request.op == "read":
            seeded.get_or_compute(request.key, backend_value)
        else:
            seeded.put(request.key, backend_value(request.key))
        count += 1
    seeded.close()
    return count


def build_recovery_stack(plan: RegimePlan, clock, directory: str) -> Tuple[
        AsyncServingFront, AsyncFlakyLoader, Optional[RetryBudget],
        LiveRecoveringKVCache]:
    """The recovery-regime stack: seed, crash, reopen live.

    Returns ``(front, loader, budget, live)`` — the extra handle is the
    :class:`LiveRecoveringKVCache` the background replay task steps.
    """
    if plan.recover_ops <= 0:
        raise ValueError("recovery stack needs recover_ops > 0")
    seed_persistent(plan, directory, clock)
    live = LiveRecoveringKVCache(
        directory,
        chunk_ops=plan.replay_chunk_ops,
        snapshot_every=None,
        wal_flush_ops=1,
        clock=clock,
    )
    resilient = _resilient_over(live, plan, clock)
    loader = _build_loader(plan)
    front, budget = _front_over(resilient, plan)
    return front, loader, budget, live
