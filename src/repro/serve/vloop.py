"""A deterministic virtual-time asyncio event loop.

Open-loop serving experiments need two things a wall-clock loop cannot
give: *determinism* (a fixed seed must reproduce byte-identical latency
reports, on any machine, under any CI load) and *speed* (minutes of
simulated traffic should replay in milliseconds).
:class:`VirtualTimeEventLoop` provides both: it is a real asyncio event
loop — tasks, futures, ``asyncio.sleep``, ``wait_for``, semaphores and
cancellation all behave normally — except that ``loop.time()`` is a
virtual clock that jumps instantly to the next scheduled callback
whenever no work is ready. Nothing ever blocks on the operating system;
a simulated second costs only the callbacks scheduled within it.

The loop is single-threaded and offers no I/O (no sockets, no
executors, no signal handling) — it exists to schedule coroutines
against simulated time, which is exactly what the serving harness
does. Because callback execution order is a pure function of the
program (FIFO ready queue, stable timer heap), every run of a seeded
simulation is bit-identical.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque


class VirtualTimeEventLoop(asyncio.AbstractEventLoop):
    """An asyncio event loop on simulated time.

    Use :meth:`run_until_complete` as the single entry point::

        loop = VirtualTimeEventLoop()
        result = loop.run_until_complete(main())

    Inside ``main``, ``asyncio.get_running_loop()`` returns this loop,
    ``loop.time()`` starts at 0.0, and every ``await asyncio.sleep(d)``
    advances virtual time by exactly ``d`` (interleaved with any other
    scheduled work) without real elapsed time.
    """

    def __init__(self):
        self._time = 0.0
        self._ready = deque()
        self._scheduled = []
        self._sequence = 0
        self._running = False
        self._closed = False
        #: Exception-handler contexts captured from tasks whose
        #: exceptions were never retrieved (inspectable by tests).
        self.unhandled = []

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------

    def time(self) -> float:
        """Current virtual time, seconds (starts at 0.0)."""
        return self._time

    def call_soon(self, callback, *args, context=None):
        """Schedule ``callback`` on the next loop pass (FIFO)."""
        self._check_closed()
        handle = asyncio.Handle(callback, args, self, context)
        self._ready.append(handle)
        return handle

    # The loop is strictly single-threaded; thread-safe scheduling
    # degenerates to plain scheduling.
    call_soon_threadsafe = call_soon

    def call_later(self, delay, callback, *args, context=None):
        """Schedule ``callback`` after ``delay`` virtual seconds."""
        return self.call_at(
            self._time + max(0.0, delay), callback, *args, context=context
        )

    def call_at(self, when, callback, *args, context=None):
        """Schedule ``callback`` at absolute virtual time ``when``.

        Ties are broken by scheduling order (a stable heap), so runs
        are reproducible.
        """
        self._check_closed()
        timer = asyncio.TimerHandle(when, callback, args, self, context)
        self._sequence += 1
        heapq.heappush(self._scheduled, (when, self._sequence, timer))
        timer._scheduled = True
        return timer

    def _timer_handle_cancelled(self, handle) -> None:
        """Cancelled timers are skipped lazily when popped."""

    # ------------------------------------------------------------------
    # Futures and tasks
    # ------------------------------------------------------------------

    def create_future(self) -> asyncio.Future:
        """A future bound to this loop."""
        return asyncio.Future(loop=self)

    def create_task(self, coro, *, name=None, context=None):
        """A task bound to this loop, scheduled on the next pass."""
        self._check_closed()
        if context is not None:
            return asyncio.Task(coro, loop=self, name=name, context=context)
        return asyncio.Task(coro, loop=self, name=name)

    # ------------------------------------------------------------------
    # Introspection required by asyncio internals
    # ------------------------------------------------------------------

    def get_debug(self) -> bool:
        """Debug mode is always off: virtual time has no slow callbacks."""
        return False

    def is_running(self) -> bool:
        return self._running

    def is_closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the loop; further scheduling raises."""
        if self._running:
            raise RuntimeError("cannot close a running virtual loop")
        self._closed = True

    def call_exception_handler(self, context) -> None:
        """Record (never print) unretrieved task exceptions."""
        self.unhandled.append(context)

    def default_exception_handler(self, context) -> None:
        """Same as :meth:`call_exception_handler`: record, never print."""
        self.unhandled.append(context)

    def _check_closed(self) -> None:
        if self._closed:
            raise RuntimeError("virtual loop is closed")

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run_until_complete(self, future):
        """Drive the loop until ``future`` resolves; return its result.

        Raises:
            RuntimeError: re-entered while running, used after close,
                or *starved* — the future is pending but nothing is
                scheduled, i.e. the program deadlocked on an event no
                one will ever set (with real time this would hang; with
                virtual time it is detectable and reported).
        """
        self._check_closed()
        if self._running:
            raise RuntimeError("virtual loop is already running")
        future = asyncio.ensure_future(future, loop=self)
        self._running = True
        asyncio.events._set_running_loop(self)
        try:
            while not future.done():
                if not self._ready and not self._scheduled:
                    raise RuntimeError(
                        "virtual loop starved: the awaited future is "
                        "pending but no callback or timer is scheduled"
                    )
                self._run_once()
        finally:
            self._running = False
            asyncio.events._set_running_loop(None)
        return future.result()

    def _run_once(self) -> None:
        """One pass: jump time forward if idle, then drain the ready set.

        Only the callbacks ready at entry run in a pass; anything they
        schedule with ``call_soon`` runs in the next pass, matching the
        standard loop's fairness (a self-rescheduling task cannot
        starve timers).
        """
        while self._scheduled and self._scheduled[0][2]._cancelled:
            heapq.heappop(self._scheduled)
        if not self._ready and self._scheduled:
            self._time = max(self._time, self._scheduled[0][0])
        while self._scheduled and self._scheduled[0][0] <= self._time:
            _when, _seq, timer = heapq.heappop(self._scheduled)
            if not timer._cancelled:
                self._ready.append(timer)
        for _ in range(len(self._ready)):
            handle = self._ready.popleft()
            if not handle._cancelled:
                handle._run()
