"""The asyncio serving front: admission control, deadlines, service slots.

:class:`AsyncServingFront` is what sits between an open-loop arrival
stream and a :class:`~repro.online.resilience.ResilientKVCache`. It
adds the three things an overloadable service needs that the cache
itself does not provide:

* **bounded in-flight admission** — at most ``max_pending`` requests
  may be queued-or-in-service; arrivals beyond that are *shed*
  immediately (:class:`RequestShed`) instead of growing an unbounded
  queue whose tail latency diverges;
* **service concurrency** — ``concurrency`` slots (an
  ``asyncio.Semaphore``) model the server's parallel capacity; under
  overload, requests queue FIFO for a slot and the queueing delay is
  what the tail-latency report measures;
* **per-request deadlines** — the whole sojourn (queue wait + service)
  runs under ``asyncio.wait_for``; a request that cannot finish inside
  ``deadline`` is cancelled and counted (:class:`RequestTimeout`), the
  SLO-miss signal.

While the cache underneath is live-recovering (WAL replay in
progress), the admission bound additionally scales with the resilient
cache's :meth:`~repro.online.resilience.ResilientKVCache.serving_fraction`:
with only a fraction of shards serving, the front sheds earlier rather
than queueing depth the reduced capacity cannot drain — backpressure
that relaxes automatically as replay cursors drain and shards promote.

Each admitted request is served by the cache's async resilient ladder
(:meth:`~repro.online.resilience.ResilientKVCache.aget_or_compute`),
optionally under a shared :class:`~repro.online.resilience.RetryBudget`
so a browning-out backend cannot multiply offered load through retries.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.online.resilience import ResilientKVCache, RetryBudget


class RequestShed(RuntimeError):
    """The request was refused at admission: too many in flight."""


class RequestTimeout(RuntimeError):
    """The request missed its deadline and was cancelled."""


class AsyncServingFront:
    """Admission control and deadlines over the async resilient ladder.

    Args:
        resilient: the resilient cache to serve through.
        concurrency: parallel service slots (>= 1).
        max_pending: bound on requests queued-or-in-service; None
            disables shedding (an unbounded queue — only sensible when
            offered load is known to be under capacity).
        deadline: per-request sojourn deadline in seconds (queue wait
            plus service); None disables timeouts.
        retry_budget: optional shared retry-token pool passed through
            to the resilient ladder.
        service_time: fixed in-slot cost awaited by *every* admitted
            request, hit or miss — the server-side work of serving at
            all. With it, capacity is bounded at roughly
            ``concurrency / service_time`` even at a 100% hit ratio,
            which is what lets the harness overload the front.

    The semaphore is created lazily inside the running event loop, so
    one front can be constructed before the loop exists (and a fresh
    front must not be shared across loops).
    """

    def __init__(
        self,
        resilient: ResilientKVCache,
        concurrency: int = 8,
        max_pending: Optional[int] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        service_time: float = 0.0,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1 or None, got {max_pending}"
            )
        if deadline is not None and deadline <= 0:
            raise ValueError(
                f"deadline must be positive or None, got {deadline}"
            )
        if service_time < 0:
            raise ValueError(
                f"service_time must be >= 0, got {service_time}"
            )
        self.resilient = resilient
        self.concurrency = concurrency
        self.max_pending = max_pending
        self.deadline = deadline
        self.retry_budget = retry_budget
        self.service_time = service_time
        self._slots: Optional[asyncio.Semaphore] = None
        self._pending = 0
        # Outcome counters (monotonic; read for reports).
        self.admitted = 0
        self.shed = 0
        self.timeouts = 0
        self.completed = 0
        self.unavailable = 0

    @property
    def pending(self) -> int:
        """Requests currently queued or in service."""
        return self._pending

    def _semaphore(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.concurrency)
        return self._slots

    async def handle(self, key, loader, ttl: Optional[float] = None):
        """Serve one request end to end.

        Raises:
            RequestShed: refused at admission (``max_pending`` hit);
                the cache never sees the request.
            RequestTimeout: deadline exceeded; the in-flight work was
                cancelled (retry tokens and breaker probes released by
                the ladder's cancellation accounting).
            LoaderUnavailable: the ladder exhausted loader, retries and
                stale fallback.
        """
        return await self._admitted(key, self._serve_read(key, loader, ttl))

    async def write(self, key, value, ttl: Optional[float] = None) -> None:
        """Apply one write (update/insert) under the same admission
        control, deadline and service slots as reads."""
        await self._admitted(key, self._serve_write(key, value, ttl))

    def _admission_bound(self) -> Optional[int]:
        """The effective in-flight bound, scaled during live recovery.

        ``max_pending * serving_fraction`` (never below 1) while the
        underlying cache is replaying its WAL; ``max_pending`` — and no
        per-request probing — otherwise.
        """
        bound = self.max_pending
        if bound is None:
            return None
        fraction_of = getattr(self.resilient, "serving_fraction", None)
        if fraction_of is None:
            return bound
        fraction = fraction_of()
        if fraction >= 1.0:
            return bound
        return max(1, int(bound * fraction))

    async def _admitted(self, key, serving):
        """Admission check + deadline around one serving coroutine."""
        bound = self._admission_bound()
        if bound is not None and self._pending >= bound:
            self.shed += 1
            serving.close()  # never awaited; silence the warning
            raise RequestShed(
                f"{self._pending} requests in flight (bound "
                f"{bound}); shedding {key!r}"
            )
        self.admitted += 1
        self._pending += 1
        try:
            if self.deadline is None:
                return await serving
            try:
                return await asyncio.wait_for(
                    serving, timeout=self.deadline
                )
            except asyncio.TimeoutError:
                self.timeouts += 1
                raise RequestTimeout(
                    f"request for {key!r} missed its "
                    f"{self.deadline * 1000.0:.1f} ms deadline"
                ) from None
        finally:
            self._pending -= 1

    async def _serve_read(self, key, loader, ttl):
        """Wait for a service slot, then run the resilient ladder."""
        async with self._semaphore():
            if self.service_time > 0:
                await asyncio.sleep(self.service_time)
            try:
                value = await self.resilient.aget_or_compute(
                    key, loader, ttl=ttl, retry_budget=self.retry_budget
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                self.unavailable += 1
                raise
            self.completed += 1
            return value

    async def _serve_write(self, key, value, ttl):
        """Wait for a service slot, then apply the write."""
        async with self._semaphore():
            if self.service_time > 0:
                await asyncio.sleep(self.service_time)
            self.resilient.put(key, value, ttl=ttl)
            self.completed += 1

    def counters(self) -> dict:
        """One dict of the front's outcome counters."""
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "unavailable": self.unavailable,
        }
