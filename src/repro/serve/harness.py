"""The open-loop SLO harness: measurement loop, reports and floors.

Regime *construction* — :class:`~repro.serve.stack.RegimePlan` and the
stack builders — lives in :mod:`repro.serve.stack` and is re-exported
here; this module drives the stream and builds the reports.

This is the measurement the ROADMAP's "open-loop service benchmark"
item asks for. A seeded request stream (:mod:`repro.workloads.keystreams`)
arrives on its own schedule at an :class:`~repro.serve.front.AsyncServingFront`
over a :class:`~repro.online.resilience.ResilientKVCache`, all on a
virtual-time event loop (:mod:`repro.serve.vloop`) — so a multi-second
traffic simulation replays in milliseconds and a fixed seed reproduces
a byte-identical report.

Five regimes tell the serving story:

* **steady** — offered load well under capacity: the baseline SLO
  (p50/p99/p999, goodput ~= offered, nothing shed);
* **overload** — bursty MMPP arrivals beyond service capacity with a
  bounded queue: the load-shedding knob holds tail latency while
  goodput saturates at capacity and excess arrivals are shed;
* **degraded** — a flaky backend (seeded failure bursts) plus shards
  quarantined mid-run and rebuilt later: the resilient ladder serves
  stale-but-true values (stale fraction > 0) and **never** a wrong one;
* **recovery** — a persistent cache is seeded with a request prefix and
  killed, then restarted as a
  :class:`~repro.online.liverecovery.LiveRecoveringKVCache` *under
  traffic*: a background task replays the WAL in bounded chunks while
  the stream keeps arriving. The report carries the replay-window tail
  (``replay_p99_ms``), the honest-degradation counters (refusals,
  recovering stale serves, deferred writes), the virtual time to full
  recovery, and ``recovered_digest_match`` — the live-recovered state
  checked byte-identical against a stop-the-world
  :func:`~repro.online.persistence.recover` of the same directory
  (which proves zero acked-write loss: accepted writes were
  dual-logged, so the reference replay contains them too);
* **steady_tiered** — the steady stream served through
  :func:`~repro.tiers.kv.tiered_front` (a near shard over the adaptive
  engine) behind the same admission front, so the near/far topology
  has an open-loop SLO row of its own.

Per-request latency lands in a streaming
:class:`~repro.serve.sketch.LatencySketch` *and* an exact-quantile
reference list; both are reported, so sketch drift would be visible in
the report itself. ``repro-experiments serve`` writes the committed
``BENCH_serve.json``; :func:`check_floors` gates it (and CI re-runs)
against ``benchmarks/baselines.json``.
"""

from __future__ import annotations

import asyncio
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.online.liverecovery import (
    LiveRecoveringKVCache,
    RecoveryInProgress,
)
from repro.online.persistence import kv_stats_digest, recover
from repro.online.resilience import (
    LoaderUnavailable,
    ResilientKVCache,
    RetryBudget,
)
from repro.serve.front import AsyncServingFront, RequestShed, RequestTimeout
from repro.serve.sketch import LatencySketch, exact_quantile
# Stack construction (plans and builders) lives in repro.serve.stack;
# RegimePlan and the builders are re-exported here so the historical
# import surface (``from repro.serve.harness import RegimePlan``)
# keeps working.
from repro.serve.stack import (  # noqa: F401 — re-exported surface
    RegimePlan,
    backend_value,
    build_recovery_stack,
    build_stack,
    default_plans,
    seed_persistent,
)
from repro.serve.vloop import VirtualTimeEventLoop

#: Report schema version for BENCH_serve.json.
SCHEMA = 1

#: The quantiles every regime reports.
QUANTILES = (0.5, 0.99, 0.999)


@dataclass
class RegimeReport:
    """What one regime measured (virtual time; fully deterministic)."""

    name: str
    requests: int = 0
    offered_rps: float = 0.0
    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    unavailable: int = 0
    wrong_values: int = 0
    stale_serves: int = 0
    goodput_rps: float = 0.0
    shed_rate: float = 0.0
    timeout_rate: float = 0.0
    stale_fraction: float = 0.0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    p999_ms: float = 0.0
    exact_p50_ms: float = 0.0
    exact_p99_ms: float = 0.0
    exact_p999_ms: float = 0.0
    breaker_trips: int = 0
    retries_denied: int = 0
    hit_ratio: float = 0.0
    # Recovery-regime extras (zero everywhere else; kept in every
    # row so the report schema is uniform).
    replay_total_ops: int = 0
    replay_applied_ops: int = 0
    recovery_complete_s: float = 0.0
    refused_recovering: int = 0
    recovering_stale: int = 0
    deferred_writes: int = 0
    replay_p99_ms: float = 0.0
    recovered_digest_match: int = 0

    def to_dict(self) -> dict:
        """JSON-stable dict (floats rounded deterministically)."""
        out = {}
        for key, value in vars(self).items():
            out[key] = round(value, 6) if isinstance(value, float) else value
        return out


@dataclass
class _Accumulator:
    """Measured-phase tallies collected by the driver (internal)."""

    arrivals: int = 0
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    unavailable: int = 0
    wrong: int = 0
    refused: int = 0
    sketch: LatencySketch = field(
        default_factory=lambda: LatencySketch(relative_error=0.01)
    )
    latencies: List[float] = field(default_factory=list)
    boundary: Optional[object] = None


@dataclass
class _RecoveryTracker:
    """Live-recovery instrumentation for one regime run (internal)."""

    live: LiveRecoveringKVCache
    interval: float
    sketch: LatencySketch = field(
        default_factory=lambda: LatencySketch(relative_error=0.01)
    )
    start: Optional[float] = None
    completed_at: Optional[float] = None


async def _chaos_schedule(resilient: ResilientKVCache,
                          plan: RegimePlan) -> None:
    """Quarantine the plan's shards, then rebuild them empty."""
    await asyncio.sleep(plan.quarantine_at)
    for shard in plan.quarantine_shards:
        resilient.quarantine(shard)
    if plan.rebuild_at is not None:
        await asyncio.sleep(plan.rebuild_at - plan.quarantine_at)
        for shard in plan.quarantine_shards:
            resilient.rebuild(shard)


async def _one_request(front: AsyncServingFront, loader, request,
                       measured: bool, acc: _Accumulator, loop,
                       recovery: Optional[_RecoveryTracker] = None) -> None:
    """Serve one arrival; classify and (if measured) record it."""
    arrived = loop.time()
    in_replay = recovery is not None and recovery.live.recovering
    outcome = "ok"
    value = None
    try:
        if request.op == "read":
            value = await front.handle(request.key, loader)
        else:
            await front.write(request.key, backend_value(request.key))
    except RequestShed:
        outcome = "shed"
    except RequestTimeout:
        outcome = "timeout"
    except RecoveryInProgress:
        outcome = "refused"
    except LoaderUnavailable:
        outcome = "unavailable"
    if not measured:
        return
    latency = loop.time() - arrived
    if outcome == "ok":
        acc.ok += 1
        if request.op == "read" and value != backend_value(request.key):
            acc.wrong += 1
    elif outcome == "shed":
        acc.shed += 1
        return  # refused instantly; no latency to record
    elif outcome == "timeout":
        acc.timeouts += 1
    elif outcome == "refused":
        acc.refused += 1
    else:
        acc.unavailable += 1
    acc.sketch.add(latency)
    acc.latencies.append(latency)
    if in_replay:
        recovery.sketch.add(latency)


async def _replay_schedule(recovery: _RecoveryTracker) -> None:
    """Step live WAL replay on its cadence until recovery completes."""
    loop = asyncio.get_running_loop()
    live = recovery.live
    while live.recovering:
        await asyncio.sleep(recovery.interval)
        live.step()
    recovery.completed_at = loop.time()


async def _drive(plan: RegimePlan, front: AsyncServingFront, loader,
                 recovery: Optional[_RecoveryTracker] = None
                 ) -> _Accumulator:
    """Replay the plan's stream open-loop; return the measured tallies."""
    loop = asyncio.get_running_loop()
    acc = _Accumulator()
    start = loop.time()
    horizon = plan.warmup + plan.duration
    chaos = None
    if plan.quarantine_at is not None:
        chaos = loop.create_task(_chaos_schedule(front.resilient, plan))
    replay = None
    if recovery is not None:
        recovery.start = start
        replay = loop.create_task(_replay_schedule(recovery))
    tasks = []
    for request in plan.spec.requests():
        if request.at >= horizon:
            break
        delay = (start + request.at) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        measured = request.at >= plan.warmup
        if measured:
            if acc.boundary is None:
                acc.boundary = front.resilient.stats()
            acc.arrivals += 1
        tasks.append(loop.create_task(
            _one_request(front, loader, request, measured, acc, loop,
                         recovery)
        ))
    if tasks:
        await asyncio.gather(*tasks)
    if chaos is not None:
        await chaos
    if replay is not None:
        # Replay keeps stepping (in virtual time) past the stream's end
        # if it has not drained yet; completion time is still recorded.
        await replay
    return acc


def run_regime(plan: RegimePlan) -> RegimeReport:
    """Run one regime on a fresh virtual-time loop; return its report."""
    loop = VirtualTimeEventLoop()
    recovery = None
    directory = None
    try:
        if plan.recover_ops > 0:
            directory = tempfile.mkdtemp(prefix="repro-serve-recovery-")
            front, loader, budget, live = build_recovery_stack(
                plan, loop.time, directory
            )
            recovery = _RecoveryTracker(live, plan.replay_interval)
        else:
            front, loader, budget = build_stack(plan, loop.time)

        async def main():
            return await _drive(plan, front, loader, recovery)

        acc = loop.run_until_complete(main())
        loop.close()
        report = _build_report(plan, front, budget, acc)
        if recovery is not None:
            _finish_recovery_report(report, recovery, acc, directory)
        return report
    finally:
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)


def _finish_recovery_report(report: RegimeReport,
                            recovery: _RecoveryTracker, acc: _Accumulator,
                            directory: str) -> None:
    """Recovery-only report fields, ending in the digest cross-check."""
    live = recovery.live
    report.replay_total_ops = live.recovery.total_records
    report.replay_applied_ops = live.recovery.applied_records
    if recovery.completed_at is not None and recovery.start is not None:
        report.recovery_complete_s = recovery.completed_at - recovery.start
    report.refused_recovering = acc.refused
    report.recovering_stale = live.recovery.stale_serves
    report.deferred_writes = live.recovery.deferred_writes
    if recovery.sketch.count:
        report.replay_p99_ms = recovery.sketch.quantile(0.99) * 1000.0
    # The honesty proof: the live-recovered state must be byte-identical
    # to a stop-the-world recovery of the same directory — which also
    # replays the dual-logged writes accepted mid-replay, so a match
    # means zero acked-write loss.
    live.sync()
    live_digest = kv_stats_digest(live.stats())
    reference = recover(directory)
    match = live_digest == kv_stats_digest(reference.stats())
    report.recovered_digest_match = 1 if match else 0
    reference.close()
    live.close()


def _build_report(plan: RegimePlan, front: AsyncServingFront,
                  budget: Optional[RetryBudget],
                  acc: _Accumulator) -> RegimeReport:
    report = RegimeReport(name=plan.name)
    report.requests = acc.arrivals
    report.offered_rps = acc.arrivals / plan.duration
    report.completed = acc.ok
    report.shed = acc.shed
    report.timeouts = acc.timeouts
    report.unavailable = acc.unavailable
    report.wrong_values = acc.wrong
    report.goodput_rps = acc.ok / plan.duration
    if acc.arrivals:
        report.shed_rate = acc.shed / acc.arrivals
        report.timeout_rate = acc.timeouts / acc.arrivals
    stats = front.resilient.stats()
    before = acc.boundary
    stale_before = before.stale_hits if before is not None else 0
    report.stale_serves = stats.stale_hits - stale_before
    if acc.ok:
        report.stale_fraction = report.stale_serves / acc.ok
    if stats.gets:
        report.hit_ratio = stats.hits / stats.gets
    if acc.sketch.count:
        report.mean_ms = acc.sketch.mean * 1000.0
        p50, p99, p999 = acc.sketch.quantiles(QUANTILES)
        report.p50_ms = p50 * 1000.0
        report.p99_ms = p99 * 1000.0
        report.p999_ms = p999 * 1000.0
        report.exact_p50_ms = exact_quantile(acc.latencies, 0.5) * 1000.0
        report.exact_p99_ms = exact_quantile(acc.latencies, 0.99) * 1000.0
        report.exact_p999_ms = (
            exact_quantile(acc.latencies, 0.999) * 1000.0
        )
    report.breaker_trips = sum(
        b.trips for b in front.resilient.breakers
    )
    report.retries_denied = budget.denied if budget is not None else 0
    return report


@dataclass
class ServeReport:
    """All regimes of one harness run, plus provenance."""

    seed: int
    quick: bool
    regimes: Dict[str, RegimeReport]

    def to_dict(self) -> dict:
        """The full report as a JSON-ready dict (schema-versioned)."""
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "quick": self.quick,
            "regimes": {
                name: report.to_dict()
                for name, report in self.regimes.items()
            },
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys — byte-identical per seed)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def render(self) -> str:
        """Human-readable regime table."""
        from repro.analysis.tables import render_table

        rows = []
        for report in self.regimes.values():
            rows.append([
                report.name,
                report.offered_rps,
                report.goodput_rps,
                report.p50_ms,
                report.p99_ms,
                report.p999_ms,
                100.0 * report.shed_rate,
                100.0 * report.timeout_rate,
                100.0 * report.stale_fraction,
                report.wrong_values,
            ])
        return render_table(
            ["regime", "offered rps", "goodput rps", "p50 ms", "p99 ms",
             "p999 ms", "shed %", "timeout %", "stale %", "wrong"],
            rows,
            float_digits=2,
            title="open-loop serving SLOs (virtual time, deterministic)",
        )


def run_serve(quick: bool = False, seed: int = 0) -> ServeReport:
    """Run all five regimes; the engine behind ``repro-experiments
    serve`` and ``BENCH_serve.json``."""
    regimes = {}
    for plan in default_plans(quick=quick, seed=seed):
        regimes[plan.name] = run_regime(plan)
    return ServeReport(seed=seed, quick=quick, regimes=regimes)


def check_floors(report: dict, floors: dict) -> List[str]:
    """SLO floors for a :meth:`ServeReport.to_dict` report.

    ``floors`` is the ``"serve"`` section of
    ``benchmarks/baselines.json``: per-regime bounds named
    ``min_<metric>`` / ``max_<metric>``, plus the derived
    ``min_goodput_fraction`` (goodput over offered). Returns the list
    of violations (empty = gate passes).
    """
    problems = []
    for regime, bounds in floors.items():
        if regime.startswith("_"):
            continue
        cell = report.get("regimes", {}).get(regime)
        if cell is None:
            problems.append(f"{regime}: missing from report")
            continue
        for bound, limit in bounds.items():
            if bound.startswith("_"):
                continue
            if bound == "min_goodput_fraction":
                offered = cell.get("offered_rps", 0.0)
                actual = (
                    cell.get("goodput_rps", 0.0) / offered if offered else 0.0
                )
                metric = "goodput_fraction"
                low = True
            elif bound.startswith("min_"):
                metric = bound[4:]
                actual = cell.get(metric, 0.0)
                low = True
            elif bound.startswith("max_"):
                metric = bound[4:]
                actual = cell.get(metric, 0.0)
                low = False
            else:
                problems.append(f"{regime}: unknown bound {bound!r}")
                continue
            if low and actual < limit:
                problems.append(
                    f"{regime}: {metric} {actual:.4f} below floor {limit}"
                )
            elif not low and actual > limit:
                problems.append(
                    f"{regime}: {metric} {actual:.4f} above ceiling {limit}"
                )
    return problems
