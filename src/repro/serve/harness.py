"""The open-loop SLO harness: steady, overload and degraded regimes.

This is the measurement the ROADMAP's "open-loop service benchmark"
item asks for. A seeded request stream (:mod:`repro.workloads.keystreams`)
arrives on its own schedule at an :class:`~repro.serve.front.AsyncServingFront`
over a :class:`~repro.online.resilience.ResilientKVCache`, all on a
virtual-time event loop (:mod:`repro.serve.vloop`) — so a multi-second
traffic simulation replays in milliseconds and a fixed seed reproduces
a byte-identical report.

Three regimes tell the serving story:

* **steady** — offered load well under capacity: the baseline SLO
  (p50/p99/p999, goodput ~= offered, nothing shed);
* **overload** — bursty MMPP arrivals beyond service capacity with a
  bounded queue: the load-shedding knob holds tail latency while
  goodput saturates at capacity and excess arrivals are shed;
* **degraded** — a flaky backend (seeded failure bursts) plus shards
  quarantined mid-run and rebuilt later: the resilient ladder serves
  stale-but-true values (stale fraction > 0) and **never** a wrong one.

Per-request latency lands in a streaming
:class:`~repro.serve.sketch.LatencySketch` *and* an exact-quantile
reference list; both are reported, so sketch drift would be visible in
the report itself. ``repro-experiments serve`` writes the committed
``BENCH_serve.json``; :func:`check_floors` gates it (and CI re-runs)
against ``benchmarks/baselines.json``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.online import AsyncFlakyLoader
from repro.online.engine import AdaptiveKVCache
from repro.online.resilience import (
    CircuitBreaker,
    LoaderUnavailable,
    ResilientKVCache,
    RetryBudget,
    RetryPolicy,
)
from repro.serve.front import AsyncServingFront, RequestShed, RequestTimeout
from repro.serve.sketch import LatencySketch, exact_quantile
from repro.serve.vloop import VirtualTimeEventLoop
from repro.workloads.keystreams import StreamSpec

#: Report schema version for BENCH_serve.json.
SCHEMA = 1

#: The quantiles every regime reports.
QUANTILES = (0.5, 0.99, 0.999)


def backend_value(key):
    """The deterministic backend: ground truth per key.

    Stale serves return an *old* value of the same key; with a
    deterministic backend old values equal current ones, so any
    mismatch a regime observes is a genuine wrong value (a lie), never
    mere staleness — the invariant ``wrong_values == 0`` rests on this.
    """
    return ("v", key)


@dataclass(frozen=True)
class RegimePlan:
    """One serving regime, as inert data.

    Attributes:
        name: regime label (report key).
        spec: the open-loop request stream.
        warmup: seconds of traffic before measurement starts (cache
            fill; excluded from every reported number).
        duration: measured seconds.
        concurrency: parallel service slots.
        max_pending: in-flight bound (arrivals beyond it are shed).
        deadline: per-request sojourn deadline, seconds.
        service_time: in-slot cost paid by every request (hit or miss).
        miss_latency: backend service time awaited per loader call.
        spike_latency / spike_rate: extra seeded latency spikes.
        failure_rate / burst: seeded loader failures (brown-outs).
        capacity_entries / num_shards / components: engine geometry.
        ttl: entry TTL, seconds (None = no expiry; the degraded regime
            needs one so stale serving is reachable).
        retry_attempts / retry_backoff / retry_budget_tokens: the
            retry schedule and the shared retry-token pool.
        breaker_threshold / breaker_timeout: per-shard breaker tuning.
        quarantine_shards / quarantine_at / rebuild_at: the chaos
            schedule — shards taken out of service at ``quarantine_at``
            (virtual seconds from stream start) and rebuilt empty at
            ``rebuild_at``.
        seed: master seed (stream and loader fork from it).
    """

    name: str
    spec: StreamSpec
    warmup: float = 1.0
    duration: float = 3.0
    concurrency: int = 8
    max_pending: Optional[int] = 256
    deadline: Optional[float] = 0.1
    service_time: float = 0.001
    miss_latency: float = 0.005
    spike_latency: float = 0.0
    spike_rate: float = 0.0
    failure_rate: float = 0.0
    burst: int = 0
    capacity_entries: int = 256
    num_shards: int = 8
    components: Tuple[str, ...] = ("lru", "lfu")
    ttl: Optional[float] = None
    retry_attempts: int = 3
    retry_backoff: float = 0.005
    retry_budget_tokens: Optional[int] = 32
    breaker_threshold: int = 5
    breaker_timeout: float = 0.5
    quarantine_shards: Tuple[int, ...] = ()
    quarantine_at: Optional[float] = None
    rebuild_at: Optional[float] = None
    seed: int = 0


@dataclass
class RegimeReport:
    """What one regime measured (virtual time; fully deterministic)."""

    name: str
    requests: int = 0
    offered_rps: float = 0.0
    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    unavailable: int = 0
    wrong_values: int = 0
    stale_serves: int = 0
    goodput_rps: float = 0.0
    shed_rate: float = 0.0
    timeout_rate: float = 0.0
    stale_fraction: float = 0.0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    p999_ms: float = 0.0
    exact_p50_ms: float = 0.0
    exact_p99_ms: float = 0.0
    exact_p999_ms: float = 0.0
    breaker_trips: int = 0
    retries_denied: int = 0
    hit_ratio: float = 0.0

    def to_dict(self) -> dict:
        """JSON-stable dict (floats rounded deterministically)."""
        out = {}
        for key, value in vars(self).items():
            out[key] = round(value, 6) if isinstance(value, float) else value
        return out


@dataclass
class _Accumulator:
    """Measured-phase tallies collected by the driver (internal)."""

    arrivals: int = 0
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    unavailable: int = 0
    wrong: int = 0
    sketch: LatencySketch = field(
        default_factory=lambda: LatencySketch(relative_error=0.01)
    )
    latencies: List[float] = field(default_factory=list)
    boundary: Optional[object] = None


def default_plans(quick: bool = False, seed: int = 0) -> List[RegimePlan]:
    """The three standard regimes, at bench (full) or CI (quick) scale.

    Capacity with the default knobs is roughly
    ``concurrency / (service_time + miss_ratio * miss_latency)`` ~= a
    few thousand requests/second; steady offers well under half of it,
    overload several times it.
    """
    warmup = 1.0 if quick else 2.0
    duration = 1.5 if quick else 5.0
    steady = RegimePlan(
        name="steady",
        spec=StreamSpec(rate=1500.0, universe=512, alpha=1.0, mix="B",
                        clients=16, seed=seed),
        warmup=warmup,
        duration=duration,
        concurrency=8,
        max_pending=256,
        deadline=0.1,
        spike_latency=0.04,
        spike_rate=0.02,
        seed=seed,
    )
    overload = RegimePlan(
        name="overload",
        spec=StreamSpec(rate=2500.0, universe=512, alpha=1.0, mix="C",
                        clients=16, process="mmpp", burst_rate=8000.0,
                        mean_dwell=1.0, burst_dwell=0.5, seed=seed + 1),
        warmup=warmup,
        duration=duration,
        concurrency=4,
        max_pending=64,
        deadline=0.05,
        spike_latency=0.05,
        spike_rate=0.05,
        seed=seed + 1,
    )
    chaos_at = warmup + 0.2 * duration
    rebuild_at = warmup + 0.7 * duration
    degraded = RegimePlan(
        name="degraded",
        spec=StreamSpec(rate=1500.0, universe=512, alpha=1.0, mix="B",
                        clients=16, seed=seed + 2),
        warmup=warmup,
        duration=duration,
        concurrency=8,
        max_pending=256,
        deadline=0.1,
        failure_rate=0.15,
        burst=6,
        ttl=1.0,
        retry_budget_tokens=4,
        breaker_threshold=5,
        breaker_timeout=0.25,
        quarantine_shards=(1, 5),
        quarantine_at=chaos_at,
        rebuild_at=rebuild_at,
        seed=seed + 2,
    )
    return [steady, overload, degraded]


def build_stack(plan: RegimePlan, clock) -> Tuple[
        AsyncServingFront, AsyncFlakyLoader, Optional[RetryBudget]]:
    """The serving stack (front, loader, budget) for one plan."""
    engine = AdaptiveKVCache(
        capacity_entries=plan.capacity_entries,
        num_shards=plan.num_shards,
        components=plan.components,
        default_ttl=plan.ttl,
        seed=plan.seed,
        clock=clock,
    )
    resilient = ResilientKVCache(
        engine,
        retry=RetryPolicy(
            attempts=plan.retry_attempts,
            backoff=plan.retry_backoff,
            budget=plan.deadline,
        ),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=plan.breaker_threshold,
            recovery_timeout=plan.breaker_timeout,
            clock=clock,
        ),
        clock=clock,
    )
    loader = AsyncFlakyLoader(
        backend_value,
        base_latency=plan.miss_latency,
        failure_rate=plan.failure_rate,
        burst=plan.burst,
        latency=plan.spike_latency,
        latency_rate=plan.spike_rate,
        seed=plan.seed + 13,
    )
    budget = (
        RetryBudget(plan.retry_budget_tokens)
        if plan.retry_budget_tokens is not None else None
    )
    front = AsyncServingFront(
        resilient,
        concurrency=plan.concurrency,
        max_pending=plan.max_pending,
        deadline=plan.deadline,
        retry_budget=budget,
        service_time=plan.service_time,
    )
    return front, loader, budget


async def _chaos_schedule(resilient: ResilientKVCache,
                          plan: RegimePlan) -> None:
    """Quarantine the plan's shards, then rebuild them empty."""
    await asyncio.sleep(plan.quarantine_at)
    for shard in plan.quarantine_shards:
        resilient.quarantine(shard)
    if plan.rebuild_at is not None:
        await asyncio.sleep(plan.rebuild_at - plan.quarantine_at)
        for shard in plan.quarantine_shards:
            resilient.rebuild(shard)


async def _one_request(front: AsyncServingFront, loader, request,
                       measured: bool, acc: _Accumulator, loop) -> None:
    """Serve one arrival; classify and (if measured) record it."""
    arrived = loop.time()
    outcome = "ok"
    value = None
    try:
        if request.op == "read":
            value = await front.handle(request.key, loader)
        else:
            await front.write(request.key, backend_value(request.key))
    except RequestShed:
        outcome = "shed"
    except RequestTimeout:
        outcome = "timeout"
    except LoaderUnavailable:
        outcome = "unavailable"
    if not measured:
        return
    latency = loop.time() - arrived
    if outcome == "ok":
        acc.ok += 1
        if request.op == "read" and value != backend_value(request.key):
            acc.wrong += 1
    elif outcome == "shed":
        acc.shed += 1
        return  # refused instantly; no latency to record
    elif outcome == "timeout":
        acc.timeouts += 1
    else:
        acc.unavailable += 1
    acc.sketch.add(latency)
    acc.latencies.append(latency)


async def _drive(plan: RegimePlan, front: AsyncServingFront,
                 loader) -> _Accumulator:
    """Replay the plan's stream open-loop; return the measured tallies."""
    loop = asyncio.get_running_loop()
    acc = _Accumulator()
    start = loop.time()
    horizon = plan.warmup + plan.duration
    chaos = None
    if plan.quarantine_at is not None:
        chaos = loop.create_task(_chaos_schedule(front.resilient, plan))
    tasks = []
    for request in plan.spec.requests():
        if request.at >= horizon:
            break
        delay = (start + request.at) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        measured = request.at >= plan.warmup
        if measured:
            if acc.boundary is None:
                acc.boundary = front.resilient.stats()
            acc.arrivals += 1
        tasks.append(loop.create_task(
            _one_request(front, loader, request, measured, acc, loop)
        ))
    if tasks:
        await asyncio.gather(*tasks)
    if chaos is not None:
        await chaos
    return acc


def run_regime(plan: RegimePlan) -> RegimeReport:
    """Run one regime on a fresh virtual-time loop; return its report."""
    loop = VirtualTimeEventLoop()
    front, loader, budget = build_stack(plan, loop.time)

    async def main():
        return await _drive(plan, front, loader)

    acc = loop.run_until_complete(main())
    loop.close()

    report = RegimeReport(name=plan.name)
    report.requests = acc.arrivals
    report.offered_rps = acc.arrivals / plan.duration
    report.completed = acc.ok
    report.shed = acc.shed
    report.timeouts = acc.timeouts
    report.unavailable = acc.unavailable
    report.wrong_values = acc.wrong
    report.goodput_rps = acc.ok / plan.duration
    if acc.arrivals:
        report.shed_rate = acc.shed / acc.arrivals
        report.timeout_rate = acc.timeouts / acc.arrivals
    stats = front.resilient.stats()
    before = acc.boundary
    stale_before = before.stale_hits if before is not None else 0
    report.stale_serves = stats.stale_hits - stale_before
    if acc.ok:
        report.stale_fraction = report.stale_serves / acc.ok
    if stats.gets:
        report.hit_ratio = stats.hits / stats.gets
    if acc.sketch.count:
        report.mean_ms = acc.sketch.mean * 1000.0
        p50, p99, p999 = acc.sketch.quantiles(QUANTILES)
        report.p50_ms = p50 * 1000.0
        report.p99_ms = p99 * 1000.0
        report.p999_ms = p999 * 1000.0
        report.exact_p50_ms = exact_quantile(acc.latencies, 0.5) * 1000.0
        report.exact_p99_ms = exact_quantile(acc.latencies, 0.99) * 1000.0
        report.exact_p999_ms = (
            exact_quantile(acc.latencies, 0.999) * 1000.0
        )
    report.breaker_trips = sum(
        b.trips for b in front.resilient.breakers
    )
    report.retries_denied = budget.denied if budget is not None else 0
    return report


@dataclass
class ServeReport:
    """All regimes of one harness run, plus provenance."""

    seed: int
    quick: bool
    regimes: Dict[str, RegimeReport]

    def to_dict(self) -> dict:
        """The full report as a JSON-ready dict (schema-versioned)."""
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "quick": self.quick,
            "regimes": {
                name: report.to_dict()
                for name, report in self.regimes.items()
            },
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys — byte-identical per seed)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def render(self) -> str:
        """Human-readable regime table."""
        from repro.analysis.tables import render_table

        rows = []
        for report in self.regimes.values():
            rows.append([
                report.name,
                report.offered_rps,
                report.goodput_rps,
                report.p50_ms,
                report.p99_ms,
                report.p999_ms,
                100.0 * report.shed_rate,
                100.0 * report.timeout_rate,
                100.0 * report.stale_fraction,
                report.wrong_values,
            ])
        return render_table(
            ["regime", "offered rps", "goodput rps", "p50 ms", "p99 ms",
             "p999 ms", "shed %", "timeout %", "stale %", "wrong"],
            rows,
            float_digits=2,
            title="open-loop serving SLOs (virtual time, deterministic)",
        )


def run_serve(quick: bool = False, seed: int = 0) -> ServeReport:
    """Run all three regimes; the engine behind ``repro-experiments
    serve`` and ``BENCH_serve.json``."""
    regimes = {}
    for plan in default_plans(quick=quick, seed=seed):
        regimes[plan.name] = run_regime(plan)
    return ServeReport(seed=seed, quick=quick, regimes=regimes)


def check_floors(report: dict, floors: dict) -> List[str]:
    """SLO floors for a :meth:`ServeReport.to_dict` report.

    ``floors`` is the ``"serve"`` section of
    ``benchmarks/baselines.json``: per-regime bounds named
    ``min_<metric>`` / ``max_<metric>``, plus the derived
    ``min_goodput_fraction`` (goodput over offered). Returns the list
    of violations (empty = gate passes).
    """
    problems = []
    for regime, bounds in floors.items():
        if regime.startswith("_"):
            continue
        cell = report.get("regimes", {}).get(regime)
        if cell is None:
            problems.append(f"{regime}: missing from report")
            continue
        for bound, limit in bounds.items():
            if bound.startswith("_"):
                continue
            if bound == "min_goodput_fraction":
                offered = cell.get("offered_rps", 0.0)
                actual = (
                    cell.get("goodput_rps", 0.0) / offered if offered else 0.0
                )
                metric = "goodput_fraction"
                low = True
            elif bound.startswith("min_"):
                metric = bound[4:]
                actual = cell.get(metric, 0.0)
                low = True
            elif bound.startswith("max_"):
                metric = bound[4:]
                actual = cell.get(metric, 0.0)
                low = False
            else:
                problems.append(f"{regime}: unknown bound {bound!r}")
                continue
            if low and actual < limit:
                problems.append(
                    f"{regime}: {metric} {actual:.4f} below floor {limit}"
                )
            elif not low and actual > limit:
                problems.append(
                    f"{regime}: {metric} {actual:.4f} above ceiling {limit}"
                )
    return problems
