"""Processor timing model.

The paper evaluates with MASE (SimpleScalar) cycle-level simulation of
the out-of-order processor in Table 1. We substitute an event-driven
timing model that reproduces the mechanisms coupling L2 replacement to
performance — ROB-limited run-ahead past load misses (memory-level
parallelism), a finite store buffer that stalls the core when write
traffic backs up, branch misprediction penalties, and the bus/memory
latency — while abstracting the per-instruction pipeline (see DESIGN.md
Section 2 for the substitution rationale).

The model runs in two phases:

* :func:`compile_workload` walks a trace once through the L1 data cache
  and the branch predictors. Everything it computes is *independent of
  the L2 replacement policy*, so the expensive part is done once per
  workload.
* :func:`simulate` replays the compiled L2-visible stream against one
  L2 cache configuration, producing cycles and CPI. Sweeping policies
  or tag widths only repeats this cheap phase.
"""

from repro.cpu.config import ProcessorConfig
from repro.cpu.branch import (
    BimodalPredictor,
    GsharePredictor,
    MetaPredictor,
    BranchTargetBuffer,
)
from repro.cpu.store_buffer import StoreBuffer
from repro.cpu.scoreboard import ScoreboardResult, scoreboard_simulate
from repro.cpu.timing import (
    CompiledWorkload,
    TimingResult,
    compile_workload,
    simulate,
)

__all__ = [
    "ProcessorConfig",
    "BimodalPredictor",
    "GsharePredictor",
    "MetaPredictor",
    "BranchTargetBuffer",
    "StoreBuffer",
    "ScoreboardResult",
    "scoreboard_simulate",
    "CompiledWorkload",
    "TimingResult",
    "compile_workload",
    "simulate",
]
