"""Finite store buffer with write combining.

Out-of-order processors retire stores into a store buffer that drains
into the L2; when it fills, retirement — and soon the whole core —
stalls. The paper modified MASE precisely because the original
"effectively assumed an infinite number of store buffers", and Figure
10 shows the adaptive benefit as a function of buffer capacity, so this
component matters for reproducing the CPI results.
"""

from __future__ import annotations

import heapq
from typing import Optional


class StoreBuffer:
    """Tracks occupancy of a ``capacity``-entry store buffer over time.

    Each entry holds one outstanding write (a store miss being filled or
    a writeback) until its L2/memory transaction completes. Writes to a
    line that already has an in-flight entry are combined and consume no
    new entry.

    Args:
        capacity: number of entries.
        serialize_drains: when True, entries drain one after another —
            a single shared write channel, useful for bandwidth
            studies. The default (False) lets drains complete
            independently, modelling a banked memory system; the
            synthetic suite's miss intensities are high enough that a
            fully serialized channel saturates and masks replacement
            effects (see docs/timing-model.md).
    """

    def __init__(self, capacity: int, serialize_drains: bool = False):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.serialize_drains = serialize_drains
        self._completions = []  # heap of (completion_time, line)
        self._inflight_lines = {}  # line -> count of heap entries
        self._last_drain_end = 0.0
        self.pushes = 0
        self.combines = 0
        self.stalls = 0
        self.stall_cycles = 0.0

    def _drain(self, now: float) -> None:
        while self._completions and self._completions[0][0] <= now:
            _, line = heapq.heappop(self._completions)
            count = self._inflight_lines[line] - 1
            if count:
                self._inflight_lines[line] = count
            else:
                del self._inflight_lines[line]

    def occupancy(self, now: float) -> int:
        """Entries still in flight at time ``now``."""
        self._drain(now)
        return len(self._completions)

    def push(self, now: float, latency: float, line: Optional[int] = None) -> float:
        """Enter a write at time ``now`` that completes after ``latency``.

        Returns the (possibly later) time at which the core proceeds:
        ``now`` if an entry was free or the write combined, otherwise
        the completion time of the oldest in-flight entry.
        """
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.pushes += 1
        self._drain(now)
        if line is not None and line in self._inflight_lines:
            self.combines += 1
            return now
        if len(self._completions) >= self.capacity:
            wait_until, _ = self._completions[0]
            self.stalls += 1
            self.stall_cycles += wait_until - now
            now = wait_until
            self._drain(now)
        key = line if line is not None else -self.pushes
        if self.serialize_drains:
            completion = max(now, self._last_drain_end) + latency
            self._last_drain_end = completion
        else:
            completion = now + latency
        heapq.heappush(self._completions, (completion, key))
        self._inflight_lines[key] = self._inflight_lines.get(key, 0) + 1
        return now
