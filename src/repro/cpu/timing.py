"""The two-phase event-driven timing model.

Phase 1 (:func:`compile_workload`) is L2-policy independent: it walks
the full trace once through the L1 data cache, the branch predictors
and the BTB, and emits the L2-visible stream (demand misses, store
fills, L1 writebacks) annotated with the instruction distance between
consecutive L2 events.

Phase 2 (:func:`simulate`) replays that stream against one L2 cache and
models the mechanisms that translate L2 misses into cycles:

* issue-limited execution at ``base_ipc``;
* ROB-limited run-ahead — the core keeps executing up to
  ``rob_entries`` instructions past the oldest outstanding load miss,
  so clustered misses overlap (MLP) and isolated ones stall;
* an MSHR cap on the number of overlapped misses;
* a finite store buffer that back-pressures the core when write
  traffic (store fills and writebacks) outpaces the L2/memory;
* a lump-sum charge for branch mispredictions and BTB misses
  (policy-independent, computed in phase 1).

Absolute CPI is approximate; what the model preserves is how CPI
*responds* to L2 miss-count changes, which is what the paper's Figures
4, 6, 9 and 10 measure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cpu.branch import BranchTargetBuffer, MetaPredictor
from repro.cpu.config import ProcessorConfig
from repro.cpu.store_buffer import StoreBuffer
from repro.policies.lru import LRUPolicy
from repro.workloads.trace import (
    KIND_BRANCH_TAKEN,
    KIND_STORE,
    Trace,
)

# Kinds of L2-visible events.
L2_LOAD = 0
L2_STORE = 1
L2_WRITEBACK = 2

# The columnar batch kernel is bound lazily: repro.perf imports the
# experiment layer, which imports this module, so a top-level import
# would cycle.
_kernel_mod = None


def _kernel():
    global _kernel_mod
    if _kernel_mod is None:
        from repro.perf import kernel

        _kernel_mod = kernel
    return _kernel_mod


@dataclass
class CompiledWorkload:
    """Policy-independent digest of one workload.

    Attributes:
        name: workload name.
        instructions: total instruction count of the trace.
        l2_records: ``(gap, kind, address)`` tuples; ``gap`` counts the
            instructions since the previous L2 event (the event's own
            instruction excluded; writebacks are not instructions).
        tail_instructions: instructions after the last L2 event.
        branch_mispredicts / btb_misses / branches: predictor outcomes.
        l1_hits / l1_misses: L1D filter statistics.
    """

    name: str
    instructions: int
    l2_records: List[Tuple[int, int, int]] = field(default_factory=list)
    tail_instructions: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    branches: int = 0
    l1_hits: int = 0
    l1_misses: int = 0


@dataclass(frozen=True)
class TimingResult:
    """Cycles and CPI of one (workload, L2 configuration) pair.

    ``breakdown`` maps component names (``base``, ``load_stall``,
    ``store_stall``, ``branch``) to cycle counts.
    """

    name: str
    instructions: int
    cycles: float
    l2_accesses: int
    l2_misses: int
    breakdown: Dict[str, float]

    @property
    def cpi(self) -> float:
        """Cycles per instruction (the paper's Figure 4 metric)."""
        return self.cycles / self.instructions

    @property
    def mpki(self) -> float:
        """L2 misses per thousand instructions (Figure 3 metric)."""
        return 1000.0 * self.l2_misses / self.instructions


def compile_workload(trace: Trace, config: ProcessorConfig) -> CompiledWorkload:
    """Filter ``trace`` through the L1D, predictors and BTB once."""
    l1_config = config.l1d
    l1 = SetAssociativeCache(
        l1_config, LRUPolicy(l1_config.num_sets, l1_config.ways)
    )
    predictor = MetaPredictor(config.predictor_entries)
    btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)

    compiled = CompiledWorkload(name=trace.name, instructions=trace.instruction_count)
    # The compile pass walks every record of the full trace; bind the
    # per-record calls and counters to locals (the counters are written
    # back once at the end).
    records_append = compiled.l2_records.append
    l1_access = l1.access
    predictor_update = predictor.update
    btb_lookup = btb.lookup_update
    rebuild_address = l1_config.rebuild_address
    branch_mispredicts = 0
    btb_misses = 0
    branches = 0
    l1_hits = 0
    l1_misses = 0
    pending_insts = 0
    for kind, address, gap in trace.records:
        pending_insts += gap
        if kind >= KIND_BRANCH_TAKEN:
            taken = kind == KIND_BRANCH_TAKEN
            if not predictor_update(address, taken):
                branch_mispredicts += 1
            if taken and not btb_lookup(address):
                btb_misses += 1
            branches += 1
            pending_insts += 1
            continue
        result = l1_access(address, is_write=(kind == KIND_STORE))
        if result.hit:
            l1_hits += 1
            pending_insts += 1
            continue
        l1_misses += 1
        l2_kind = L2_STORE if kind == KIND_STORE else L2_LOAD
        records_append((pending_insts, l2_kind, address))
        pending_insts = 0
        if result.writeback:
            wb_address = rebuild_address(result.evicted_tag, result.set_index)
            records_append((0, L2_WRITEBACK, wb_address))
    compiled.branch_mispredicts = branch_mispredicts
    compiled.btb_misses = btb_misses
    compiled.branches = branches
    compiled.l1_hits = l1_hits
    compiled.l1_misses = l1_misses
    compiled.tail_instructions = pending_insts
    return compiled


def simulate(
    compiled: CompiledWorkload,
    l2: SetAssociativeCache,
    config: ProcessorConfig,
) -> TimingResult:
    """Replay the compiled L2 stream against ``l2`` and count cycles."""
    ipc = config.base_ipc
    rob = config.rob_entries
    l2_hit_latency = l2.config.hit_latency
    miss_latency = l2_hit_latency + config.miss_penalty
    hit_stall = l2_hit_latency * config.l2_hit_stall_factor
    offset_bits = l2.config.offset_bits
    # Decompose L2 addresses here and call the pre-decomposed entry
    # point: the replay loop is the experiments' inner loop.
    l2_offset_bits, l2_index_mask, l2_tag_shift = l2.config.decomposition()
    l2_access = l2.access_decomposed

    # The cycle accounting below only consumes the hit/miss outcome of
    # each L2 reference, so when the columnar kernel supports this cache
    # it advances the whole batch up front and the loop reads the
    # precomputed hit stream instead of calling into the cache.
    records = compiled.l2_records
    hit_stream = None
    kernel = _kernel()
    if kernel.kernel_name(l2, len(records)) == "columnar":
        hit_stream = kernel.columnar_hit_stream(
            l2,
            [record[2] for record in records],
            [record[1] != L2_LOAD for record in records],
        )

    now = 0.0
    run_ahead = 0
    pending = deque()  # completion times of outstanding load misses
    store_buffer = StoreBuffer(config.store_buffer_entries)
    load_stall = 0.0
    accesses = 0
    misses = 0

    def retire_oldest() -> None:
        nonlocal now, load_stall
        completion = pending.popleft()
        if completion > now:
            load_stall += completion - now
            now = completion

    def advance(instructions: int) -> None:
        nonlocal now, run_ahead
        remaining = instructions
        while pending and run_ahead + remaining >= rob:
            executable = max(0, rob - run_ahead)
            now += executable / ipc
            remaining -= executable
            retire_oldest()
            run_ahead = 0
        now += remaining / ipc
        if pending:
            run_ahead += remaining

    for index, (gap, kind, address) in enumerate(records):
        if kind == L2_WRITEBACK:
            advance(gap)
        else:
            advance(gap + 1)
        if hit_stream is None:
            hit = l2_access(
                (address >> l2_offset_bits) & l2_index_mask,
                address >> l2_tag_shift,
                kind != L2_LOAD,
            ).hit
        else:
            hit = hit_stream[index]
        accesses += 1
        latency = l2_hit_latency if hit else miss_latency
        if not hit:
            misses += 1
        if kind == L2_LOAD:
            if hit:
                load_stall += hit_stall
                now += hit_stall
            else:
                while pending and pending[0] <= now:
                    pending.popleft()
                if len(pending) >= config.mshr_entries:
                    retire_oldest()
                if not pending:
                    run_ahead = 0
                pending.append(now + latency)
        else:
            now = store_buffer.push(now, latency, line=address >> offset_bits)

    advance(compiled.tail_instructions)
    if pending:
        # All remaining misses overlap; the run ends when the last one
        # (the largest completion time) returns.
        last = max(pending)
        if last > now:
            load_stall += last - now
            now = last

    branch_cycles = (
        compiled.branch_mispredicts * config.mispredict_penalty
        + compiled.btb_misses * config.btb_miss_penalty
    )
    cycles = now + branch_cycles
    return TimingResult(
        name=compiled.name,
        instructions=compiled.instructions,
        cycles=cycles,
        l2_accesses=accesses,
        l2_misses=misses,
        breakdown={
            "base": compiled.instructions / ipc,
            "load_stall": load_stall,
            "store_stall": store_buffer.stall_cycles,
            "branch": branch_cycles,
        },
    )
