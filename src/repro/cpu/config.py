"""The simulated processor configuration (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CacheConfig


def _table1_l1() -> CacheConfig:
    return CacheConfig(size_bytes=16 * 1024, ways=4, line_bytes=64, hit_latency=2)


def _table1_l2() -> CacheConfig:
    return CacheConfig(size_bytes=512 * 1024, ways=8, line_bytes=64, hit_latency=15)


@dataclass(frozen=True)
class ProcessorConfig:
    """Parameters of the modeled out-of-order processor.

    Defaults follow Table 1 of the paper: 8-wide decode/issue, 32 RS and
    64 ROB entries, 16 KB 4-way 2-cycle L1s, a 512 KB 8-way 15-cycle
    unified L2 with a 4-entry store buffer, 120-cycle memory behind an
    8-byte split-transaction bus at a 8:1 frequency ratio, and a
    16 KB gshare / 16 KB bimodal / 16 KB meta branch predictor with a
    4K-entry 4-way BTB.

    Attributes:
        base_ipc: sustained non-memory IPC of the core. Table 1's 8-wide
            machine with 4 ALUs of each class sustains roughly 3 on
            typical code; this is where the abstracted pipeline's ILP
            lives.
        l2_hit_stall_factor: fraction of the L2 hit latency the
            out-of-order engine fails to hide on an L1 miss / L2 hit.
        mshr_entries: maximum overlapped outstanding L2 misses (MLP cap).
    """

    issue_width: int = 8
    rs_entries: int = 32
    rob_entries: int = 64
    base_ipc: float = 3.0
    l1d: CacheConfig = field(default_factory=_table1_l1)
    l1i: CacheConfig = field(default_factory=_table1_l1)
    l2: CacheConfig = field(default_factory=_table1_l2)
    store_buffer_entries: int = 4
    memory_latency: int = 120
    bus_bytes: int = 8
    bus_ratio: int = 8
    mispredict_penalty: int = 10
    btb_miss_penalty: int = 2
    mshr_entries: int = 8
    l2_hit_stall_factor: float = 0.3
    # Branch predictor sizing (16KB gshare/16KB bimodal/16KB meta =
    # 64K 2-bit counters each; 4K-entry 4-way BTB).
    predictor_entries: int = 64 * 1024
    btb_entries: int = 4096
    btb_ways: int = 4

    def __post_init__(self):
        if self.issue_width <= 0 or self.rob_entries <= 0:
            raise ValueError("issue_width and rob_entries must be positive")
        if self.base_ipc <= 0:
            raise ValueError(f"base_ipc must be positive, got {self.base_ipc}")
        if self.store_buffer_entries <= 0:
            raise ValueError("store_buffer_entries must be positive")
        if self.memory_latency <= 0 or self.bus_bytes <= 0 or self.bus_ratio <= 0:
            raise ValueError("memory and bus parameters must be positive")
        if self.mshr_entries <= 0:
            raise ValueError("mshr_entries must be positive")
        if not 0.0 <= self.l2_hit_stall_factor <= 1.0:
            raise ValueError("l2_hit_stall_factor must be in [0, 1]")

    @property
    def bus_transfer_cycles(self) -> int:
        """CPU cycles to move one L2 line across the bus."""
        transfers = -(-self.l2.line_bytes // self.bus_bytes)
        return transfers * self.bus_ratio

    @property
    def miss_penalty(self) -> int:
        """Total CPU cycles for an L2 miss serviced by memory."""
        return self.memory_latency + self.bus_transfer_cycles

    def scaled(self, **overrides) -> "ProcessorConfig":
        """Copy with some fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)
