"""A per-instruction scoreboard reference model.

The main timing model (:mod:`repro.cpu.timing`) accounts cycles in
aggregate: compiled gaps, a run-ahead budget, lump-sum branch penalties.
This module is a second, structurally different implementation — every
instruction is dispatched, executed and retired individually against a
scoreboard of machine resources:

* fetch/dispatch bandwidth (``issue_width`` per cycle), stalled while a
  mispredicted branch resolves;
* a ROB of ``rob_entries``: instruction i cannot dispatch before
  instruction ``i - rob_entries`` retires;
* two memory ports rate-limiting loads/stores;
* MSHRs capping concurrent L2 misses;
* in-order retirement at ``issue_width`` per cycle;
* stores retiring through the shared :class:`StoreBuffer`.

Because the two models share only the configuration (not the
accounting structure), agreement between them on *policy comparisons*
is meaningful evidence that conclusions do not hinge on either model's
simplifications — see ``repro-experiments ext-validate``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cache.cache import SetAssociativeCache
from repro.cpu.branch import BranchTargetBuffer, MetaPredictor
from repro.cpu.config import ProcessorConfig
from repro.cpu.store_buffer import StoreBuffer
from repro.policies.lru import LRUPolicy
from repro.workloads.trace import (
    KIND_BRANCH_TAKEN,
    KIND_LOAD,
    Trace,
)


@dataclass(frozen=True)
class ScoreboardResult:
    """Cycles and CPI from the scoreboard reference model."""

    name: str
    instructions: int
    cycles: float
    l2_accesses: int
    l2_misses: int

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions

    @property
    def mpki(self) -> float:
        """L2 misses per thousand instructions."""
        return 1000.0 * self.l2_misses / self.instructions


class _Scoreboard:
    """Mutable machine state for one simulation run."""

    def __init__(self, config: ProcessorConfig, l2: SetAssociativeCache):
        self.config = config
        self.l2 = l2
        l1_config = config.l1d
        self.l1 = SetAssociativeCache(
            l1_config, LRUPolicy(l1_config.num_sets, l1_config.ways)
        )
        self.predictor = MetaPredictor(config.predictor_entries)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.store_buffer = StoreBuffer(config.store_buffer_entries)
        self.dispatch_slot = 1.0 / config.issue_width
        self.fetch_ready = 0.0
        self.last_dispatch = 0.0
        # Retirement times of in-flight instructions (ROB occupancy).
        self.rob = deque()
        self.last_retire = 0.0
        # Memory ports: next-free times (pipelined: busy 1 issue slot).
        self.ports = [0.0, 0.0]
        # Completion times of outstanding L2 misses (MSHR occupancy).
        self.mshrs = deque()
        self.l2_accesses = 0
        self.l2_misses = 0

    def _memory_latency(self, address: int, is_write: bool) -> float:
        """Walk L1/L2 and return the load-to-use latency."""
        config = self.config
        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return config.l1d.hit_latency
        if l1_result.writeback:
            evicted = self.config.l1d.rebuild_address(
                l1_result.evicted_tag, l1_result.set_index
            )
            self.l2_accesses += 1
            if not self.l2.access(evicted, is_write=True).hit:
                self.l2_misses += 1
        self.l2_accesses += 1
        l2_result = self.l2.access(address, is_write)
        if l2_result.hit:
            return config.l1d.hit_latency + config.l2.hit_latency
        self.l2_misses += 1
        return (
            config.l1d.hit_latency
            + config.l2.hit_latency
            + config.miss_penalty
        )

    def dispatch(self, now_floor: float) -> float:
        """Claim the next dispatch slot; returns the dispatch time."""
        dispatch = max(
            self.last_dispatch + self.dispatch_slot,
            self.fetch_ready,
            now_floor,
        )
        if len(self.rob) >= self.config.rob_entries:
            dispatch = max(dispatch, self.rob.popleft())
        self.last_dispatch = dispatch
        return dispatch

    def retire(self, completion: float) -> float:
        """In-order retirement; returns the retire time."""
        retire = max(
            completion, self.last_retire + self.dispatch_slot
        )
        self.last_retire = retire
        self.rob.append(retire)
        return retire

    def memory_port(self, dispatch: float) -> float:
        """Claim a memory port; returns when the access may start."""
        port = min(range(len(self.ports)), key=self.ports.__getitem__)
        start = max(dispatch, self.ports[port])
        self.ports[port] = start + self.dispatch_slot
        return start

    def mshr_admit(self, start: float) -> float:
        """Cap concurrent misses; returns the admitted start time."""
        while self.mshrs and self.mshrs[0] <= start:
            self.mshrs.popleft()
        if len(self.mshrs) >= self.config.mshr_entries:
            start = max(start, self.mshrs.popleft())
        return start


def scoreboard_simulate(
    trace: Trace, l2: SetAssociativeCache, config: ProcessorConfig
) -> ScoreboardResult:
    """Run ``trace`` through the scoreboard reference model."""
    board = _Scoreboard(config, l2)

    for kind, address, gap in trace.records:
        # The plain instructions preceding this record: single-cycle
        # ALU ops, constrained only by dispatch bandwidth and the ROB.
        for _ in range(gap):
            dispatch = board.dispatch(0.0)
            board.retire(dispatch + 1.0)

        dispatch = board.dispatch(0.0)
        if kind >= KIND_BRANCH_TAKEN:
            taken = kind == KIND_BRANCH_TAKEN
            resolve = dispatch + 1.0
            correct = board.predictor.update(address, taken)
            if not correct:
                board.fetch_ready = max(
                    board.fetch_ready,
                    resolve + config.mispredict_penalty,
                )
            elif taken and not board.btb.lookup_update(address):
                board.fetch_ready = max(
                    board.fetch_ready,
                    dispatch + config.btb_miss_penalty,
                )
            board.retire(resolve)
        elif kind == KIND_LOAD:
            start = board.memory_port(dispatch)
            latency = board._memory_latency(address, is_write=False)
            if latency > config.l1d.hit_latency + config.l2.hit_latency:
                start = board.mshr_admit(start)
                board.mshrs.append(start + latency)
            board.retire(start + latency)
        else:  # store: completes into the store buffer at retire
            start = board.memory_port(dispatch)
            latency = board._memory_latency(address, is_write=True)
            drain = latency - config.l1d.hit_latency
            retire = board.retire(start + 1.0)
            resumed = board.store_buffer.push(
                retire, max(0.0, drain),
                line=address >> 6,
            )
            if resumed > retire:
                # Store-buffer back-pressure stalls retirement.
                board.last_retire = resumed

    cycles = max(board.last_retire, board.last_dispatch)
    return ScoreboardResult(
        name=trace.name,
        instructions=trace.instruction_count,
        cycles=cycles,
        l2_accesses=board.l2_accesses,
        l2_misses=board.l2_misses,
    )
