"""Branch predictors: bimodal, gshare, meta (tournament), and a BTB.

Table 1 specifies a 16 KB gshare / 16 KB bimodal / 16 KB meta
combination with a 4K-entry 4-way BTB. Mispredictions are a
policy-independent component of CPI that the compile phase of the
timing model accounts once per workload.
"""

from __future__ import annotations

from repro.utils.bitops import is_power_of_two


class _CounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, entries: int, init: int = 1):
        if not is_power_of_two(entries):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self._mask = entries - 1
        self._table = [init] * entries

    def index(self, value: int) -> int:
        return value & self._mask

    def predict(self, idx: int) -> bool:
        return self._table[idx] >= 2

    def update(self, idx: int, taken: bool) -> None:
        counter = self._table[idx]
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1


class BimodalPredictor:
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 64 * 1024):
        self._counters = _CounterTable(entries)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._counters.predict(self._counters.index(pc >> 2))

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome of the branch at ``pc``."""
        self._counters.update(self._counters.index(pc >> 2), taken)


class GsharePredictor:
    """Global-history predictor: PC XOR history indexes the counters."""

    def __init__(self, entries: int = 64 * 1024, history_bits: int = 12):
        if history_bits <= 0:
            raise ValueError(f"history_bits must be positive, got {history_bits}")
        self._counters = _CounterTable(entries)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return self._counters.index((pc >> 2) ^ self._history)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._counters.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        """Train counters and shift the outcome into global history."""
        self._counters.update(self._index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class MetaPredictor:
    """Tournament predictor choosing between bimodal and gshare per PC.

    The meta table counts which component has been more accurate for
    each PC; prediction follows the currently favoured component.
    """

    def __init__(
        self,
        entries: int = 64 * 1024,
        history_bits: int = 12,
    ):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GsharePredictor(entries, history_bits)
        self._meta = _CounterTable(entries, init=2)  # slight gshare bias
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Predicted direction, following the favoured component."""
        use_gshare = self._meta.predict(self._meta.index(pc >> 2))
        if use_gshare:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if the prediction was correct."""
        bim = self.bimodal.predict(pc)
        gsh = self.gshare.predict(pc)
        idx = self._meta.index(pc >> 2)
        predicted = gsh if self._meta.predict(idx) else bim
        if bim != gsh:
            self._meta.update(idx, taken == gsh)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)
        self.predictions += 1
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def mispredict_rate(self) -> float:
        """Fraction of predictions that were wrong."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement.

    A taken branch whose target is absent from the BTB costs a small
    fetch-redirect penalty even when its direction was predicted
    correctly.
    """

    def __init__(self, entries: int = 4096, ways: int = 4):
        if ways <= 0 or entries % ways != 0:
            raise ValueError("entries must be a positive multiple of ways")
        self._num_sets = entries // ways
        if not is_power_of_two(self._num_sets):
            raise ValueError("entries/ways must be a power of two")
        self._ways = ways
        self._sets = [dict() for _ in range(self._num_sets)]
        self._clock = 0
        self.lookups = 0
        self.misses = 0

    def lookup_update(self, pc: int) -> bool:
        """Probe for ``pc``; insert on miss. Returns hit/miss."""
        self.lookups += 1
        word = pc >> 2
        btb_set = self._sets[word & (self._num_sets - 1)]
        tag = word >> (self._num_sets.bit_length() - 1)
        self._clock += 1
        if tag in btb_set:
            btb_set[tag] = self._clock
            return True
        self.misses += 1
        if len(btb_set) >= self._ways:
            del btb_set[min(btb_set, key=btb_set.__getitem__)]
        btb_set[tag] = self._clock
        return False
