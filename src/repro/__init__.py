"""repro — Adaptive Caches: Effective Shaping of Cache Behavior to Workloads.

A from-scratch Python reproduction of Subramanian, Smaragdakis & Loh
(MICRO 2006): adaptive cache replacement via parallel (shadow) tag
arrays and per-set miss histories, with partial tags and an SBAR-style
set-sampling variant, evaluated on a synthetic workload suite through a
cycle-approximate out-of-order timing model.

Quickstart::

    from repro import CacheConfig, SetAssociativeCache, make_adaptive

    config = CacheConfig(size_bytes=64 * 1024, ways=8, line_bytes=64)
    policy = make_adaptive(config.num_sets, config.ways, ("lru", "lfu"))
    cache = SetAssociativeCache(config, policy)
    for address in addresses:
        cache.access(address)
    print(cache.stats.miss_ratio)
"""

from repro.cache import (
    AccessResult,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    SetAssociativeCache,
    StorageModel,
    TagArray,
)
from repro.core import (
    AdaptivePolicy,
    BitVectorHistory,
    CounterHistory,
    PartialTagScheme,
    SaturatingCounterHistory,
    SbarPolicy,
    check_miss_bound,
    five_policy_adaptive,
    make_adaptive,
)
from repro.policies import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    available_policies,
    belady_misses,
    make_policy,
)

__version__ = "1.0.0"

__all__ = [
    "AccessResult",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "SetAssociativeCache",
    "StorageModel",
    "TagArray",
    "AdaptivePolicy",
    "BitVectorHistory",
    "CounterHistory",
    "PartialTagScheme",
    "SaturatingCounterHistory",
    "SbarPolicy",
    "check_miss_bound",
    "five_policy_adaptive",
    "make_adaptive",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "available_policies",
    "belady_misses",
    "make_policy",
    "__version__",
]
