"""Design-space exploration: policy pairs, partial tags, SBAR.

Uses the suite's named workloads to answer three practical questions a
cache architect would ask of this library:

1. Which pair of component policies is worth adapting over?
   (The paper found LRU+LFU best; FIFO+MRU interesting but weaker.)
2. How narrow can the partial tags get before adaptivity degrades?
3. How close does cheap set sampling (SBAR) get to full adaptivity?

Run:  python examples/design_space.py
"""

from repro import CacheConfig, SetAssociativeCache
from repro.analysis import arithmetic_mean, render_table
from repro.core import PartialTagScheme, make_adaptive
from repro.experiments.base import build_l2_policy
from repro.workloads import build_workload

WORKLOADS = ["lucas", "art-1", "tiff2rgba", "bzip2", "mcf", "ammp"]


def miss_ratio(config, policy, traces):
    """Average miss ratio of ``policy`` over the prepared traces."""
    ratios = []
    for trace in traces:
        cache = SetAssociativeCache(config, policy())
        for kind, address, _gap in trace.memory_records():
            cache.access(address, is_write=(kind == 1))
        ratios.append(cache.stats.miss_ratio)
    return arithmetic_mean(ratios)


def main():
    config = CacheConfig(size_bytes=32 * 1024, ways=8, line_bytes=64)
    traces = [
        build_workload(name, config, accesses=25_000) for name in WORKLOADS
    ]

    # 1. Component-pair shoot-out.
    pairs = [("lru", "lfu"), ("fifo", "mru"), ("lru", "fifo"),
             ("lfu", "mru"), ("lru", "random")]
    rows = []
    for pair in pairs:
        avg = miss_ratio(
            config,
            lambda pair=pair: make_adaptive(config.num_sets, config.ways, pair),
            traces,
        )
        rows.append(["+".join(pair), avg])
    rows.sort(key=lambda r: r[1])
    print(render_table(["component pair", "avg miss ratio"], rows,
                       title="1. Which policies to adapt over?"))

    # 2. Partial-tag width sweep.
    rows = []
    for bits in (None, 12, 8, 6, 4, 2):
        label = "full" if bits is None else f"{bits}-bit"
        transform = {} if bits is None else {
            "tag_transform": PartialTagScheme(bits)
        }
        avg = miss_ratio(
            config,
            lambda transform=transform: make_adaptive(
                config.num_sets, config.ways, ("lru", "lfu"), **transform
            ),
            traces,
        )
        rows.append([label, avg])
    print()
    print(render_table(["tag width", "avg miss ratio"], rows,
                       title="2. How narrow can partial tags get?"))

    # 3. Full adaptivity vs SBAR set sampling.
    rows = []
    for label, kind, kwargs in [
        ("adaptive (full)", "adaptive", {}),
        ("SBAR, 16 leaders", "sbar", {"num_leaders": 16}),
        ("SBAR, 4 leaders", "sbar", {"num_leaders": 4}),
        ("plain LRU", "lru", {}),
    ]:
        avg = miss_ratio(
            config,
            lambda kind=kind, kwargs=kwargs: build_l2_policy(
                config, kind, ("lru", "lfu"), **kwargs
            ),
            traces,
        )
        rows.append([label, avg])
    print()
    print(render_table(["configuration", "avg miss ratio"], rows,
                       title="3. How close does set sampling get?"))


if __name__ == "__main__":
    main()
