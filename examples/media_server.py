"""Domain scenario: a media-processing phase inside a larger program.

The paper motivates LFU with media-management applications: large
regions of blocks used exactly once (frames streaming through) mixed
with commonly accessed data (tables, code-adjacent structures). This
example models a video-processing pipeline that alternates between a
streaming phase and a lookup-heavy phase, and measures full end-to-end
performance (CPI) through the timing model — L1, branch predictors,
store buffer and all.

Run:  python examples/media_server.py
"""

from repro import CacheConfig, SetAssociativeCache, make_adaptive, make_policy
from repro.cpu import ProcessorConfig, compile_workload, simulate
from repro.workloads import (
    BranchProfile,
    WorkloadBuilder,
    concat_phases,
    scan_with_hot,
    working_set,
)


def build_pipeline_trace(l2_config, frames=6, refs_per_frame=8_000):
    """Alternate streaming-decode and table-lookup phases."""
    phases = []
    for frame in range(frames):
        # Decode: stream the frame through while consulting hot tables.
        phases.append(
            scan_with_hot(
                hot_lines=int(0.3 * l2_config.num_lines),
                scan_lines=4 * l2_config.num_lines,
                accesses=refs_per_frame,
                hot_fraction=0.45,
                seed=100 + frame,
            )
        )
        # Post-process: temporal reuse over the working buffers.
        phases.append(
            working_set(
                hot_lines=int(0.7 * l2_config.num_lines),
                accesses=refs_per_frame // 2,
                seed=200 + frame,
                locality=0.4,
            )
        )
    stream = concat_phases(*phases)
    builder = WorkloadBuilder(
        seed=7,
        mean_gap=3.0,
        write_fraction=0.3,
        branches=BranchProfile(density=0.6, random_fraction=0.1),
        line_bytes=l2_config.line_bytes,
    )
    return builder.build("media-pipeline", stream)


def main():
    l2 = CacheConfig(size_bytes=64 * 1024, ways=8, line_bytes=64, hit_latency=15)
    l1 = CacheConfig(size_bytes=4 * 1024, ways=4, line_bytes=64, hit_latency=2)
    processor = ProcessorConfig(l1d=l1, l1i=l1, l2=l2)

    trace = build_pipeline_trace(l2)
    print(
        f"pipeline trace: {trace.instruction_count} instructions, "
        f"{trace.memory_access_count()} memory references, "
        f"{trace.footprint_lines()} distinct lines"
    )

    compiled = compile_workload(trace, processor)
    print("\n  L2 policy     MPKI     CPI")
    results = {}
    for label, policy in [
        ("LRU", make_policy("lru", l2.num_sets, l2.ways)),
        ("LFU", make_policy("lfu", l2.num_sets, l2.ways)),
        ("Adaptive", make_adaptive(l2.num_sets, l2.ways, ("lru", "lfu"))),
    ]:
        result = simulate(compiled, SetAssociativeCache(l2, policy), processor)
        results[label] = result
        print(f"  {label:10s} {result.mpki:7.2f}  {result.cpi:.3f}")

    best_fixed = min(results["LRU"].cpi, results["LFU"].cpi)
    delta = 100.0 * (best_fixed - results["Adaptive"].cpi) / best_fixed
    print(
        f"\nAdaptive vs best fixed policy: {delta:+.2f}% CPI "
        "(positive = adaptive wins by exploiting the phase changes)"
    )


if __name__ == "__main__":
    main()
